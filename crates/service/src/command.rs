//! The service command vocabulary — [`Request`] / [`Response`] values and a
//! line-based text format, so traffic can be driven programmatically, logged
//! and replayed, or piped in from other tools (the same role the trace
//! format of `fourcycle-workloads` plays one layer down).
//!
//! # Text format
//!
//! One command per line; blank lines and `#` comments are skipped.
//!
//! ```text
//! create g1 layered threshold      # create session (mode, engine)
//! create g2                        # create with the service default spec
//! layered g1 A+1:2                 # one layered update (rel, op, left:right)
//! layered g1 A+1:2 B+2:3 C+3:4     # atomic batch
//! general g3 +1:2 -2:3             # general updates (op, u:v)
//! count g1
//! snapshot g1
//! list
//! drop g1
//! ```
//!
//! Graph ids are `u64`, written with an optional `g` prefix. A one-update
//! batch renders as a single-update command (the two are semantically
//! identical), so `parse(render(r))` is identity up to that normalization.
//!
//! ```
//! use fourcycle_service::{parse_script, CycleCountService, Response};
//!
//! let script = "
//!     create g1 layered simple
//!     layered g1 A+1:2 B+2:3 C+3:4 D+4:1
//!     count g1
//! ";
//! let mut service = CycleCountService::new();
//! let responses = service.execute_all(&parse_script(script).unwrap()).unwrap();
//! assert!(matches!(responses[2], Response::Count { count: 1, .. }));
//! ```

use crate::{GraphId, SessionSpec, WorkloadMode};
use fourcycle_core::{EngineConfig, EngineKind, Snapshot};
use fourcycle_graph::{GraphUpdate, LayeredUpdate, Rel, UpdateOp, VertexId};
use std::fmt;

/// One service command. Every operation of the underlying counters and
/// views is representable, so a `Vec<Request>` is a complete, replayable
/// description of a traffic trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a session; `None` uses the service's default spec.
    CreateGraph {
        /// New session id.
        id: GraphId,
        /// Spec override, or `None` for the service default.
        spec: Option<SessionSpec>,
    },
    /// Drop a session.
    DropGraph {
        /// Session to drop.
        id: GraphId,
    },
    /// One layered (or join-tuple) update.
    ApplyLayered {
        /// Target session (layered or join mode).
        id: GraphId,
        /// The update.
        update: LayeredUpdate,
    },
    /// An atomic batch of layered updates.
    ApplyLayeredBatch {
        /// Target session (layered or join mode).
        id: GraphId,
        /// The updates, in order.
        updates: Vec<LayeredUpdate>,
    },
    /// One general-graph update.
    ApplyGeneral {
        /// Target session (general mode).
        id: GraphId,
        /// The update.
        update: GraphUpdate,
    },
    /// An atomic batch of general-graph updates.
    ApplyGeneralBatch {
        /// Target session (general mode).
        id: GraphId,
        /// The updates, in order.
        updates: Vec<GraphUpdate>,
    },
    /// Read a session's current count.
    Count {
        /// Session to read.
        id: GraphId,
    },
    /// Read a session's consistent snapshot.
    GetSnapshot {
        /// Session to read.
        id: GraphId,
    },
    /// List all live session ids.
    ListGraphs,
}

impl Request {
    /// The session a command addresses, or `None` for service-wide commands
    /// ([`Request::ListGraphs`]). This is the routing key of the sharded
    /// runtime: every command with a `graph_id` is served by exactly one
    /// shard, the rest fan out to all of them.
    pub fn graph_id(&self) -> Option<GraphId> {
        match self {
            Request::CreateGraph { id, .. }
            | Request::DropGraph { id }
            | Request::ApplyLayered { id, .. }
            | Request::ApplyLayeredBatch { id, .. }
            | Request::ApplyGeneral { id, .. }
            | Request::ApplyGeneralBatch { id, .. }
            | Request::Count { id }
            | Request::GetSnapshot { id } => Some(*id),
            Request::ListGraphs => None,
        }
    }

    /// `true` if executing this command successfully changes service state
    /// (session creation/drop, updates) — exactly the commands a
    /// [`JournalSink`](crate::JournalSink) must persist for replay to
    /// reconstruct the service. Reads (`count`, `snapshot`, `list`) are
    /// never journaled, and neither is an **empty** batch: it is an
    /// accepted no-op (atomic validation of zero updates succeeds and the
    /// epoch does not move), and it has no text-format rendering — a
    /// journaled `layered g1 ` line would poison recovery of the whole
    /// shard at parse time.
    pub fn is_mutation(&self) -> bool {
        match self {
            Request::CreateGraph { .. }
            | Request::DropGraph { .. }
            | Request::ApplyLayered { .. }
            | Request::ApplyGeneral { .. } => true,
            Request::ApplyLayeredBatch { updates, .. } => !updates.is_empty(),
            Request::ApplyGeneralBatch { updates, .. } => !updates.is_empty(),
            Request::Count { .. } | Request::GetSnapshot { .. } | Request::ListGraphs => false,
        }
    }

    /// How many updates this command would apply if it succeeds (0 for
    /// reads and session management) — the unit the runtime's
    /// `updates_applied` statistic counts in.
    pub fn update_count(&self) -> usize {
        match self {
            Request::ApplyLayered { .. } | Request::ApplyGeneral { .. } => 1,
            Request::ApplyLayeredBatch { updates, .. } => updates.len(),
            Request::ApplyGeneralBatch { updates, .. } => updates.len(),
            _ => 0,
        }
    }
}

/// The successful result of one [`Request`] (failures are
/// [`ServiceError`](crate::ServiceError)s).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session was created.
    Created {
        /// Its id.
        id: GraphId,
    },
    /// The session was dropped.
    Dropped {
        /// Its id.
        id: GraphId,
    },
    /// Updates were applied; the session's new count and epoch.
    Applied {
        /// The updated session.
        id: GraphId,
        /// Count after the update(s).
        count: i64,
        /// Epoch after the update(s) — total successfully applied updates.
        epoch: u64,
    },
    /// A count read.
    Count {
        /// The session read.
        id: GraphId,
        /// Its current count.
        count: i64,
    },
    /// A snapshot read.
    Snapshot {
        /// The session read.
        id: GraphId,
        /// Its consistent point-in-time view.
        snapshot: Snapshot,
    },
    /// The live session ids.
    Graphs {
        /// Ascending session ids.
        ids: Vec<GraphId>,
    },
}

/// A command line that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the script (0 for single-line parses).
    pub line: usize,
    /// What was wrong.
    pub message: String,
    /// The offending line as it appeared in the script (comments stripped,
    /// trimmed); empty for single-line parses, where the caller already
    /// holds the input.
    pub text: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)?;
        } else {
            write!(f, "parse error on line {}: {}", self.line, self.message)?;
        }
        if !self.text.is_empty() {
            write!(f, " in {:?}", self.text)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        message: message.into(),
        text: String::new(),
    }
}

fn parse_graph_id(token: &str) -> Result<GraphId, ParseError> {
    let digits = token.strip_prefix('g').unwrap_or(token);
    digits
        .parse::<u64>()
        .map(GraphId)
        .map_err(|_| err(format!("invalid graph id {token:?}")))
}

fn parse_mode(token: &str) -> Result<WorkloadMode, ParseError> {
    WorkloadMode::ALL
        .into_iter()
        .find(|m| m.token() == token)
        .ok_or_else(|| err(format!("unknown mode {token:?} (layered|general|join)")))
}

/// Short engine token for the text format (`EngineKind::name` is also
/// accepted on parse).
fn engine_token(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Naive => "naive",
        EngineKind::Simple => "simple",
        EngineKind::Threshold => "threshold",
        EngineKind::Fmm => "fmm",
        EngineKind::FmmDense => "fmm-dense",
    }
}

fn parse_engine(token: &str) -> Result<EngineKind, ParseError> {
    EngineKind::ALL
        .into_iter()
        .find(|&k| engine_token(k) == token || k.name() == token)
        .ok_or_else(|| err(format!("unknown engine {token:?}")))
}

fn rel_token(rel: Rel) -> char {
    match rel {
        Rel::A => 'A',
        Rel::B => 'B',
        Rel::C => 'C',
        Rel::D => 'D',
    }
}

fn op_token(op: UpdateOp) -> char {
    match op {
        UpdateOp::Insert => '+',
        UpdateOp::Delete => '-',
    }
}

fn parse_op(c: char) -> Result<UpdateOp, ParseError> {
    match c {
        '+' => Ok(UpdateOp::Insert),
        '-' => Ok(UpdateOp::Delete),
        _ => Err(err(format!("expected + or -, got {c:?}"))),
    }
}

fn parse_endpoints(token: &str) -> Result<(VertexId, VertexId), ParseError> {
    let (l, r) = token
        .split_once(':')
        .ok_or_else(|| err(format!("expected <left>:<right>, got {token:?}")))?;
    let parse = |t: &str| {
        t.parse::<VertexId>()
            .map_err(|_| err(format!("invalid vertex id {t:?}")))
    };
    Ok((parse(l)?, parse(r)?))
}

/// Parses one layered-update token, e.g. `A+1:2`.
fn parse_layered_token(token: &str) -> Result<LayeredUpdate, ParseError> {
    let mut chars = token.chars();
    let rel = match chars.next() {
        Some('A') => Rel::A,
        Some('B') => Rel::B,
        Some('C') => Rel::C,
        Some('D') => Rel::D,
        other => return Err(err(format!("expected relation A|B|C|D, got {other:?}"))),
    };
    let op = parse_op(chars.next().ok_or_else(|| err("truncated update token"))?)?;
    let (left, right) = parse_endpoints(chars.as_str())?;
    Ok(LayeredUpdate {
        op,
        rel,
        left,
        right,
    })
}

/// Parses one general-update token, e.g. `+1:2`.
fn parse_general_token(token: &str) -> Result<GraphUpdate, ParseError> {
    let mut chars = token.chars();
    let op = parse_op(chars.next().ok_or_else(|| err("truncated update token"))?)?;
    let (u, v) = parse_endpoints(chars.as_str())?;
    Ok(GraphUpdate { op, u, v })
}

/// Parses one command line (see the module docs for the grammar).
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or_else(|| err("empty command"))?;
    let rest: Vec<&str> = tokens.collect();
    let want_id = |rest: &[&str]| -> Result<GraphId, ParseError> {
        match rest {
            [id] => parse_graph_id(id),
            _ => Err(err(format!("{verb} takes exactly one graph id"))),
        }
    };
    match verb {
        "create" => match rest.as_slice() {
            [id] => Ok(Request::CreateGraph {
                id: parse_graph_id(id)?,
                spec: None,
            }),
            [id, mode, engine] => Ok(Request::CreateGraph {
                id: parse_graph_id(id)?,
                spec: Some(SessionSpec {
                    kind: parse_engine(engine)?,
                    config: EngineConfig::default(),
                    mode: parse_mode(mode)?,
                }),
            }),
            _ => Err(err("create takes <id> or <id> <mode> <engine>")),
        },
        "drop" => Ok(Request::DropGraph {
            id: want_id(&rest)?,
        }),
        "count" => Ok(Request::Count {
            id: want_id(&rest)?,
        }),
        "snapshot" => Ok(Request::GetSnapshot {
            id: want_id(&rest)?,
        }),
        "list" => {
            if rest.is_empty() {
                Ok(Request::ListGraphs)
            } else {
                Err(err("list takes no arguments"))
            }
        }
        "layered" => {
            let (id, updates) = rest
                .split_first()
                .ok_or_else(|| err("layered takes <id> <update>..."))?;
            let id = parse_graph_id(id)?;
            let updates: Vec<LayeredUpdate> = updates
                .iter()
                .map(|t| parse_layered_token(t))
                .collect::<Result<_, _>>()?;
            match updates.as_slice() {
                [] => Err(err("layered takes at least one update token")),
                [single] => Ok(Request::ApplyLayered {
                    id,
                    update: *single,
                }),
                _ => Ok(Request::ApplyLayeredBatch { id, updates }),
            }
        }
        "general" => {
            let (id, updates) = rest
                .split_first()
                .ok_or_else(|| err("general takes <id> <update>..."))?;
            let id = parse_graph_id(id)?;
            let updates: Vec<GraphUpdate> = updates
                .iter()
                .map(|t| parse_general_token(t))
                .collect::<Result<_, _>>()?;
            match updates.as_slice() {
                [] => Err(err("general takes at least one update token")),
                [single] => Ok(Request::ApplyGeneral {
                    id,
                    update: *single,
                }),
                _ => Ok(Request::ApplyGeneralBatch { id, updates }),
            }
        }
        _ => Err(err(format!("unknown command {verb:?}"))),
    }
}

/// Parses a whole script: one command per line, blank lines and `#`
/// comments skipped; errors carry 1-based line numbers and the offending
/// line text.
pub fn parse_script(script: &str) -> Result<Vec<Request>, ParseError> {
    let mut requests = Vec::new();
    for (i, raw) in script.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        requests.push(parse_request(line).map_err(|mut e| {
            e.line = i + 1;
            e.text = line.to_string();
            e
        })?);
    }
    Ok(requests)
}

fn render_layered_token(u: &LayeredUpdate) -> String {
    format!(
        "{}{}{}:{}",
        rel_token(u.rel),
        op_token(u.op),
        u.left,
        u.right
    )
}

fn render_general_token(u: &GraphUpdate) -> String {
    format!("{}{}:{}", op_token(u.op), u.u, u.v)
}

/// Renders a command in the text format (inverse of [`parse_request`], up
/// to single-update-batch normalization). Specs render only when the
/// request carries one; custom `EngineConfig`s are not representable in the
/// text format and render as their mode + engine.
pub fn render_request(request: &Request) -> String {
    match request {
        Request::CreateGraph { id, spec: None } => format!("create {id}"),
        Request::CreateGraph { id, spec: Some(s) } => {
            format!("create {id} {} {}", s.mode.token(), engine_token(s.kind))
        }
        Request::DropGraph { id } => format!("drop {id}"),
        Request::ApplyLayered { id, update } => {
            format!("layered {id} {}", render_layered_token(update))
        }
        Request::ApplyLayeredBatch { id, updates } => {
            let tokens: Vec<String> = updates.iter().map(render_layered_token).collect();
            format!("layered {id} {}", tokens.join(" "))
        }
        Request::ApplyGeneral { id, update } => {
            format!("general {id} {}", render_general_token(update))
        }
        Request::ApplyGeneralBatch { id, updates } => {
            let tokens: Vec<String> = updates.iter().map(render_general_token).collect();
            format!("general {id} {}", tokens.join(" "))
        }
        Request::Count { id } => format!("count {id}"),
        Request::GetSnapshot { id } => format!("snapshot {id}"),
        Request::ListGraphs => "list".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_the_text_format() {
        let requests = vec![
            Request::CreateGraph {
                id: GraphId(1),
                spec: None,
            },
            Request::CreateGraph {
                id: GraphId(2),
                spec: Some(SessionSpec {
                    kind: EngineKind::FmmDense,
                    config: EngineConfig::default(),
                    mode: WorkloadMode::Join,
                }),
            },
            Request::ApplyLayered {
                id: GraphId(2),
                update: LayeredUpdate::insert(Rel::B, 5, 9),
            },
            Request::ApplyLayeredBatch {
                id: GraphId(2),
                updates: vec![
                    LayeredUpdate::insert(Rel::A, 1, 2),
                    LayeredUpdate::delete(Rel::D, 3, 4),
                ],
            },
            Request::ApplyGeneral {
                id: GraphId(1),
                update: GraphUpdate::delete(7, 8),
            },
            Request::ApplyGeneralBatch {
                id: GraphId(1),
                updates: vec![GraphUpdate::insert(1, 2), GraphUpdate::insert(2, 3)],
            },
            Request::Count { id: GraphId(1) },
            Request::GetSnapshot { id: GraphId(2) },
            Request::ListGraphs,
        ];
        for request in &requests {
            let line = render_request(request);
            assert_eq!(&parse_request(&line).unwrap(), request, "{line}");
        }
        // And the whole thing as one script with comments and blanks.
        let script: String = requests
            .iter()
            .map(|r| format!("  {}   # inline comment\n\n", render_request(r)))
            .collect();
        assert_eq!(parse_script(&script).unwrap(), requests);
    }

    #[test]
    fn parse_errors_name_the_line_and_problem() {
        let e = parse_script("create g1\nfrobnicate g2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        assert!(e.to_string().contains("line 2"));
        // The offending line text rides along (comments stripped, trimmed),
        // so a rejected multi-thousand-line replay names the exact input.
        assert_eq!(e.text, "frobnicate g2");
        assert!(e.to_string().contains("\"frobnicate g2\""));
        let e = parse_script("count g1\n\n  layered g9 Q+1:2  # bad rel\n").unwrap_err();
        assert_eq!((e.line, e.text.as_str()), (3, "layered g9 Q+1:2"));
        // Single-line parses leave the text empty (the caller holds the
        // input) and keep the line at 0.
        let e = parse_request("frobnicate g1").unwrap_err();
        assert_eq!((e.line, e.text.as_str()), (0, ""));
        assert!(!e.to_string().contains("line"));

        assert!(parse_request("layered g1").is_err());
        assert!(parse_request("layered g1 E+1:2").is_err());
        assert!(parse_request("layered g1 A*1:2").is_err());
        assert!(parse_request("general g1 +1-2").is_err());
        assert!(parse_request("create g1 sideways simple").is_err());
        assert!(parse_request("create g1 layered quantum").is_err());
        assert!(parse_request("count one").is_err());
        assert!(parse_request("list extra").is_err());
    }

    #[test]
    fn mutation_classification_matches_the_journal_contract() {
        let id = GraphId(1);
        let mutating = [
            Request::CreateGraph { id, spec: None },
            Request::DropGraph { id },
            Request::ApplyLayered {
                id,
                update: LayeredUpdate::insert(Rel::A, 1, 2),
            },
            Request::ApplyLayeredBatch {
                id,
                updates: vec![LayeredUpdate::insert(Rel::A, 1, 2)],
            },
            Request::ApplyGeneral {
                id,
                update: GraphUpdate::insert(1, 2),
            },
            Request::ApplyGeneralBatch {
                id,
                updates: vec![GraphUpdate::insert(1, 2)],
            },
        ];
        assert!(mutating.iter().all(Request::is_mutation));
        let reads = [
            Request::Count { id },
            Request::GetSnapshot { id },
            Request::ListGraphs,
        ];
        assert!(reads.iter().all(|r| !r.is_mutation()));
        // Empty batches are accepted no-ops with no text rendering; they
        // must not be classified as mutations or the journal would record
        // an unparseable line and poison recovery.
        assert!(!Request::ApplyLayeredBatch {
            id,
            updates: vec![]
        }
        .is_mutation());
        assert!(!Request::ApplyGeneralBatch {
            id,
            updates: vec![]
        }
        .is_mutation());
    }

    #[test]
    fn engine_tokens_cover_every_kind_and_accept_long_names() {
        for kind in EngineKind::ALL {
            assert_eq!(parse_engine(engine_token(kind)).unwrap(), kind);
            assert_eq!(parse_engine(kind.name()).unwrap(), kind);
        }
    }
}
