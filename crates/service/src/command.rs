//! The service command vocabulary — [`Request`] / [`Response`] values and a
//! line-based text format, so traffic can be driven programmatically, logged
//! and replayed, or piped in from other tools (the same role the trace
//! format of `fourcycle-workloads` plays one layer down).
//!
//! # Text format
//!
//! One command per line; blank lines and `#` comments are skipped.
//!
//! ```text
//! create g1 layered threshold      # create session (mode, engine)
//! create g2                        # create with the service default spec
//! layered g1 A+1:2                 # one layered update (rel, op, left:right)
//! layered g1 A+1:2 B+2:3 C+3:4     # atomic batch
//! general g3 +1:2 -2:3             # general updates (op, u:v)
//! count g1
//! snapshot g1
//! list
//! drop g1
//! ```
//!
//! Graph ids are `u64`, written with an optional `g` prefix. A one-update
//! batch renders as a single-update command (the two are semantically
//! identical), so `parse(render(r))` is identity up to that normalization.
//!
//! # Response framing
//!
//! Responses are framed so a wire client can read **exactly one** response
//! without heuristics: the first line declares how many continuation lines
//! follow (length-declared framing, not a terminator scan).
//!
//! ```text
//! ok <tag> ...                 # single-line response, nothing follows
//! ok+<n> <tag> ...             # header + exactly n continuation lines
//! err <code> [detail...]       # single-line failure (see fourcycle-server)
//! ```
//!
//! The success renderings ([`render_response`] / [`parse_response`]):
//!
//! ```text
//! ok created g1
//! ok dropped g1
//! ok applied g1 <count> <epoch>
//! ok count g1 <count>
//! ok+7 snapshot g1             # then 7 lines: `<field> <value>` in fixed
//!                              # order: count, total_edges, work,
//!                              # era_rebuilds, phase_rollovers,
//!                              # class_transitions, epoch
//! ok+<n> graphs                # then n lines, one graph id each
//! ```
//!
//! A reader consumes the header line, asks [`response_extra_lines`] how
//! many more lines belong to this response, reads exactly that many, and
//! is done — `err` lines and plain `ok` lines always stand alone, and an
//! empty listing frames as `ok+0 graphs` (zero continuation lines), never
//! as an absent payload.
//!
//! ```
//! use fourcycle_service::{parse_script, CycleCountService, Response};
//!
//! let script = "
//!     create g1 layered simple
//!     layered g1 A+1:2 B+2:3 C+3:4 D+4:1
//!     count g1
//! ";
//! let mut service = CycleCountService::new();
//! let responses = service.execute_all(&parse_script(script).unwrap()).unwrap();
//! assert!(matches!(responses[2], Response::Count { count: 1, .. }));
//! ```

use crate::{GraphId, SessionSpec, WorkloadMode};
use fourcycle_core::{EngineConfig, EngineKind, Snapshot};
use fourcycle_graph::{GraphUpdate, LayeredUpdate, Rel, UpdateOp, VertexId};
use std::fmt;

/// One service command. Every operation of the underlying counters and
/// views is representable, so a `Vec<Request>` is a complete, replayable
/// description of a traffic trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a session; `None` uses the service's default spec.
    CreateGraph {
        /// New session id.
        id: GraphId,
        /// Spec override, or `None` for the service default.
        spec: Option<SessionSpec>,
    },
    /// Drop a session.
    DropGraph {
        /// Session to drop.
        id: GraphId,
    },
    /// One layered (or join-tuple) update.
    ApplyLayered {
        /// Target session (layered or join mode).
        id: GraphId,
        /// The update.
        update: LayeredUpdate,
    },
    /// An atomic batch of layered updates.
    ApplyLayeredBatch {
        /// Target session (layered or join mode).
        id: GraphId,
        /// The updates, in order.
        updates: Vec<LayeredUpdate>,
    },
    /// One general-graph update.
    ApplyGeneral {
        /// Target session (general mode).
        id: GraphId,
        /// The update.
        update: GraphUpdate,
    },
    /// An atomic batch of general-graph updates.
    ApplyGeneralBatch {
        /// Target session (general mode).
        id: GraphId,
        /// The updates, in order.
        updates: Vec<GraphUpdate>,
    },
    /// Read a session's current count.
    Count {
        /// Session to read.
        id: GraphId,
    },
    /// Read a session's consistent snapshot.
    GetSnapshot {
        /// Session to read.
        id: GraphId,
    },
    /// List all live session ids.
    ListGraphs,
}

impl Request {
    /// The session a command addresses, or `None` for service-wide commands
    /// ([`Request::ListGraphs`]). This is the routing key of the sharded
    /// runtime: every command with a `graph_id` is served by exactly one
    /// shard, the rest fan out to all of them.
    pub fn graph_id(&self) -> Option<GraphId> {
        match self {
            Request::CreateGraph { id, .. }
            | Request::DropGraph { id }
            | Request::ApplyLayered { id, .. }
            | Request::ApplyLayeredBatch { id, .. }
            | Request::ApplyGeneral { id, .. }
            | Request::ApplyGeneralBatch { id, .. }
            | Request::Count { id }
            | Request::GetSnapshot { id } => Some(*id),
            Request::ListGraphs => None,
        }
    }

    /// `true` if executing this command successfully changes service state
    /// (session creation/drop, updates) — exactly the commands a
    /// [`JournalSink`](crate::JournalSink) must persist for replay to
    /// reconstruct the service. Reads (`count`, `snapshot`, `list`) are
    /// never journaled, and neither is an **empty** batch: it is an
    /// accepted no-op (atomic validation of zero updates succeeds and the
    /// epoch does not move), and it has no text-format rendering — a
    /// journaled `layered g1 ` line would poison recovery of the whole
    /// shard at parse time.
    pub fn is_mutation(&self) -> bool {
        match self {
            Request::CreateGraph { .. }
            | Request::DropGraph { .. }
            | Request::ApplyLayered { .. }
            | Request::ApplyGeneral { .. } => true,
            Request::ApplyLayeredBatch { updates, .. } => !updates.is_empty(),
            Request::ApplyGeneralBatch { updates, .. } => !updates.is_empty(),
            Request::Count { .. } | Request::GetSnapshot { .. } | Request::ListGraphs => false,
        }
    }

    /// How many updates this command would apply if it succeeds (0 for
    /// reads and session management) — the unit the runtime's
    /// `updates_applied` statistic counts in.
    pub fn update_count(&self) -> usize {
        match self {
            Request::ApplyLayered { .. } | Request::ApplyGeneral { .. } => 1,
            Request::ApplyLayeredBatch { updates, .. } => updates.len(),
            Request::ApplyGeneralBatch { updates, .. } => updates.len(),
            _ => 0,
        }
    }
}

/// The successful result of one [`Request`] (failures are
/// [`ServiceError`](crate::ServiceError)s).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session was created.
    Created {
        /// Its id.
        id: GraphId,
    },
    /// The session was dropped.
    Dropped {
        /// Its id.
        id: GraphId,
    },
    /// Updates were applied; the session's new count and epoch.
    Applied {
        /// The updated session.
        id: GraphId,
        /// Count after the update(s).
        count: i64,
        /// Epoch after the update(s) — total successfully applied updates.
        epoch: u64,
    },
    /// A count read.
    Count {
        /// The session read.
        id: GraphId,
        /// Its current count.
        count: i64,
    },
    /// A snapshot read.
    Snapshot {
        /// The session read.
        id: GraphId,
        /// Its consistent point-in-time view.
        snapshot: Snapshot,
    },
    /// The live session ids.
    Graphs {
        /// Ascending session ids.
        ids: Vec<GraphId>,
    },
}

/// A command line that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the script (0 for single-line parses).
    pub line: usize,
    /// What was wrong.
    pub message: String,
    /// The offending line as it appeared in the script (comments stripped,
    /// trimmed); empty for single-line parses, where the caller already
    /// holds the input.
    pub text: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)?;
        } else {
            write!(f, "parse error on line {}: {}", self.line, self.message)?;
        }
        if !self.text.is_empty() {
            write!(f, " in {:?}", self.text)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        message: message.into(),
        text: String::new(),
    }
}

fn parse_graph_id(token: &str) -> Result<GraphId, ParseError> {
    let digits = token.strip_prefix('g').unwrap_or(token);
    digits
        .parse::<u64>()
        .map(GraphId)
        .map_err(|_| err(format!("invalid graph id {token:?}")))
}

fn parse_mode(token: &str) -> Result<WorkloadMode, ParseError> {
    WorkloadMode::ALL
        .into_iter()
        .find(|m| m.token() == token)
        .ok_or_else(|| err(format!("unknown mode {token:?} (layered|general|join)")))
}

/// Short engine token for the text format (`EngineKind::name` is also
/// accepted on parse).
fn engine_token(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Naive => "naive",
        EngineKind::Simple => "simple",
        EngineKind::Threshold => "threshold",
        EngineKind::Fmm => "fmm",
        EngineKind::FmmDense => "fmm-dense",
    }
}

fn parse_engine(token: &str) -> Result<EngineKind, ParseError> {
    EngineKind::ALL
        .into_iter()
        .find(|&k| engine_token(k) == token || k.name() == token)
        .ok_or_else(|| err(format!("unknown engine {token:?}")))
}

fn rel_token(rel: Rel) -> char {
    match rel {
        Rel::A => 'A',
        Rel::B => 'B',
        Rel::C => 'C',
        Rel::D => 'D',
    }
}

fn op_token(op: UpdateOp) -> char {
    match op {
        UpdateOp::Insert => '+',
        UpdateOp::Delete => '-',
    }
}

fn parse_op(c: char) -> Result<UpdateOp, ParseError> {
    match c {
        '+' => Ok(UpdateOp::Insert),
        '-' => Ok(UpdateOp::Delete),
        _ => Err(err(format!("expected + or -, got {c:?}"))),
    }
}

fn parse_endpoints(token: &str) -> Result<(VertexId, VertexId), ParseError> {
    let (l, r) = token
        .split_once(':')
        .ok_or_else(|| err(format!("expected <left>:<right>, got {token:?}")))?;
    let parse = |t: &str| {
        t.parse::<VertexId>()
            .map_err(|_| err(format!("invalid vertex id {t:?}")))
    };
    Ok((parse(l)?, parse(r)?))
}

/// Parses one layered-update token, e.g. `A+1:2`.
fn parse_layered_token(token: &str) -> Result<LayeredUpdate, ParseError> {
    let mut chars = token.chars();
    let rel = match chars.next() {
        Some('A') => Rel::A,
        Some('B') => Rel::B,
        Some('C') => Rel::C,
        Some('D') => Rel::D,
        other => return Err(err(format!("expected relation A|B|C|D, got {other:?}"))),
    };
    let op = parse_op(chars.next().ok_or_else(|| err("truncated update token"))?)?;
    let (left, right) = parse_endpoints(chars.as_str())?;
    Ok(LayeredUpdate {
        op,
        rel,
        left,
        right,
    })
}

/// Parses one general-update token, e.g. `+1:2`.
fn parse_general_token(token: &str) -> Result<GraphUpdate, ParseError> {
    let mut chars = token.chars();
    let op = parse_op(chars.next().ok_or_else(|| err("truncated update token"))?)?;
    let (u, v) = parse_endpoints(chars.as_str())?;
    Ok(GraphUpdate { op, u, v })
}

/// Parses one command line (see the module docs for the grammar).
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or_else(|| err("empty command"))?;
    let rest: Vec<&str> = tokens.collect();
    let want_id = |rest: &[&str]| -> Result<GraphId, ParseError> {
        match rest {
            [id] => parse_graph_id(id),
            _ => Err(err(format!("{verb} takes exactly one graph id"))),
        }
    };
    match verb {
        "create" => match rest.as_slice() {
            [id] => Ok(Request::CreateGraph {
                id: parse_graph_id(id)?,
                spec: None,
            }),
            [id, mode, engine] => Ok(Request::CreateGraph {
                id: parse_graph_id(id)?,
                spec: Some(SessionSpec {
                    kind: parse_engine(engine)?,
                    config: EngineConfig::default(),
                    mode: parse_mode(mode)?,
                }),
            }),
            _ => Err(err("create takes <id> or <id> <mode> <engine>")),
        },
        "drop" => Ok(Request::DropGraph {
            id: want_id(&rest)?,
        }),
        "count" => Ok(Request::Count {
            id: want_id(&rest)?,
        }),
        "snapshot" => Ok(Request::GetSnapshot {
            id: want_id(&rest)?,
        }),
        "list" => {
            if rest.is_empty() {
                Ok(Request::ListGraphs)
            } else {
                Err(err("list takes no arguments"))
            }
        }
        "layered" => {
            let (id, updates) = rest
                .split_first()
                .ok_or_else(|| err("layered takes <id> <update>..."))?;
            let id = parse_graph_id(id)?;
            let updates: Vec<LayeredUpdate> = updates
                .iter()
                .map(|t| parse_layered_token(t))
                .collect::<Result<_, _>>()?;
            match updates.as_slice() {
                [] => Err(err("layered takes at least one update token")),
                [single] => Ok(Request::ApplyLayered {
                    id,
                    update: *single,
                }),
                _ => Ok(Request::ApplyLayeredBatch { id, updates }),
            }
        }
        "general" => {
            let (id, updates) = rest
                .split_first()
                .ok_or_else(|| err("general takes <id> <update>..."))?;
            let id = parse_graph_id(id)?;
            let updates: Vec<GraphUpdate> = updates
                .iter()
                .map(|t| parse_general_token(t))
                .collect::<Result<_, _>>()?;
            match updates.as_slice() {
                [] => Err(err("general takes at least one update token")),
                [single] => Ok(Request::ApplyGeneral {
                    id,
                    update: *single,
                }),
                _ => Ok(Request::ApplyGeneralBatch { id, updates }),
            }
        }
        _ => Err(err(format!("unknown command {verb:?}"))),
    }
}

/// Parses a whole script: one command per line, blank lines and `#`
/// comments skipped; errors carry 1-based line numbers and the offending
/// line text.
pub fn parse_script(script: &str) -> Result<Vec<Request>, ParseError> {
    let mut requests = Vec::new();
    for (i, raw) in script.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        requests.push(parse_request(line).map_err(|mut e| {
            e.line = i + 1;
            e.text = line.to_string();
            e
        })?);
    }
    Ok(requests)
}

fn render_layered_token(u: &LayeredUpdate) -> String {
    format!(
        "{}{}{}:{}",
        rel_token(u.rel),
        op_token(u.op),
        u.left,
        u.right
    )
}

fn render_general_token(u: &GraphUpdate) -> String {
    format!("{}{}:{}", op_token(u.op), u.u, u.v)
}

/// Renders a command in the text format (inverse of [`parse_request`], up
/// to single-update-batch normalization). Specs render only when the
/// request carries one; custom `EngineConfig`s are not representable in the
/// text format and render as their mode + engine.
pub fn render_request(request: &Request) -> String {
    match request {
        Request::CreateGraph { id, spec: None } => format!("create {id}"),
        Request::CreateGraph { id, spec: Some(s) } => {
            format!("create {id} {} {}", s.mode.token(), engine_token(s.kind))
        }
        Request::DropGraph { id } => format!("drop {id}"),
        Request::ApplyLayered { id, update } => {
            format!("layered {id} {}", render_layered_token(update))
        }
        Request::ApplyLayeredBatch { id, updates } => {
            let tokens: Vec<String> = updates.iter().map(render_layered_token).collect();
            format!("layered {id} {}", tokens.join(" "))
        }
        Request::ApplyGeneral { id, update } => {
            format!("general {id} {}", render_general_token(update))
        }
        Request::ApplyGeneralBatch { id, updates } => {
            let tokens: Vec<String> = updates.iter().map(render_general_token).collect();
            format!("general {id} {}", tokens.join(" "))
        }
        Request::Count { id } => format!("count {id}"),
        Request::GetSnapshot { id } => format!("snapshot {id}"),
        Request::ListGraphs => "list".to_string(),
    }
}

/// The snapshot continuation fields, in their fixed wire order (see the
/// module docs' framing section). The array length is the declared
/// continuation count of every `snapshot` response.
const SNAPSHOT_FIELDS: [&str; 7] = [
    "count",
    "total_edges",
    "work",
    "era_rebuilds",
    "phase_rollovers",
    "class_transitions",
    "epoch",
];

/// Renders a successful response in the framed text format (inverse of
/// [`parse_response`]). Multi-line responses embed `\n` between their
/// header and continuation lines; no rendering carries a trailing newline
/// (the wire writer appends the line terminator).
pub fn render_response(response: &Response) -> String {
    match response {
        Response::Created { id } => format!("ok created {id}"),
        Response::Dropped { id } => format!("ok dropped {id}"),
        Response::Applied { id, count, epoch } => format!("ok applied {id} {count} {epoch}"),
        Response::Count { id, count } => format!("ok count {id} {count}"),
        Response::Snapshot { id, snapshot: s } => {
            let values: [String; 7] = [
                s.count.to_string(),
                s.total_edges.to_string(),
                s.work.to_string(),
                s.slow_path.era_rebuilds.to_string(),
                s.slow_path.phase_rollovers.to_string(),
                s.slow_path.class_transitions.to_string(),
                s.epoch.to_string(),
            ];
            let mut out = format!("ok+{} snapshot {id}", SNAPSHOT_FIELDS.len());
            for (field, value) in SNAPSHOT_FIELDS.iter().zip(values) {
                out.push('\n');
                out.push_str(field);
                out.push(' ');
                out.push_str(&value);
            }
            out
        }
        Response::Graphs { ids } => {
            let mut out = format!("ok+{} graphs", ids.len());
            for id in ids {
                out.push('\n');
                out.push_str(&id.to_string());
            }
            out
        }
    }
}

/// How many continuation lines follow a response header line: 0 for plain
/// `ok ...` and for `err ...` lines, `n` for `ok+<n> ...` headers. This is
/// the whole framing rule — a wire client reads one header line, then
/// exactly this many more lines, and holds one complete response.
pub fn response_extra_lines(header: &str) -> Result<usize, ParseError> {
    let status = header
        .split_whitespace()
        .next()
        .ok_or_else(|| err("empty response header"))?;
    if status == "ok" || status == "err" {
        return Ok(0);
    }
    match status.strip_prefix("ok+") {
        Some(digits) => digits
            .parse::<usize>()
            .map_err(|_| err(format!("invalid continuation count in {status:?}"))),
        None => Err(err(format!("expected ok, ok+<n> or err, got {status:?}"))),
    }
}

/// Parses one framed successful response (see the module docs for the
/// grammar): the header's declared continuation count must match the lines
/// actually present. `err` lines are *not* successful responses and are
/// rejected here — wire clients route them to the error parser of
/// `fourcycle-server` instead.
pub fn parse_response(text: &str) -> Result<Response, ParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| err("empty response"))?;
    let declared = response_extra_lines(header)?;
    if header.split_whitespace().next() == Some("err") {
        return Err(err(format!("not a successful response: {header:?}")));
    }
    let body: Vec<&str> = lines.collect();
    if body.len() != declared {
        return Err(err(format!(
            "header declares {declared} continuation lines, found {}",
            body.len()
        )));
    }
    let mut tokens = header.split_whitespace().skip(1);
    let tag = tokens.next().ok_or_else(|| err("missing response tag"))?;
    let rest: Vec<&str> = tokens.collect();
    let want_id = |rest: &[&str]| -> Result<GraphId, ParseError> {
        match rest {
            [id] => parse_graph_id(id),
            _ => Err(err(format!("{tag} takes exactly one graph id"))),
        }
    };
    let int = |token: &str, what: &str| -> Result<i64, ParseError> {
        token
            .parse::<i64>()
            .map_err(|_| err(format!("invalid {what} {token:?}")))
    };
    let uint = |token: &str, what: &str| -> Result<u64, ParseError> {
        token
            .parse::<u64>()
            .map_err(|_| err(format!("invalid {what} {token:?}")))
    };
    match tag {
        "created" => Ok(Response::Created {
            id: want_id(&rest)?,
        }),
        "dropped" => Ok(Response::Dropped {
            id: want_id(&rest)?,
        }),
        "applied" => match rest.as_slice() {
            [id, count, epoch] => Ok(Response::Applied {
                id: parse_graph_id(id)?,
                count: int(count, "count")?,
                epoch: uint(epoch, "epoch")?,
            }),
            _ => Err(err("applied takes <id> <count> <epoch>")),
        },
        "count" => match rest.as_slice() {
            [id, count] => Ok(Response::Count {
                id: parse_graph_id(id)?,
                count: int(count, "count")?,
            }),
            _ => Err(err("count takes <id> <count>")),
        },
        "snapshot" => {
            let id = want_id(&rest)?;
            if body.len() != SNAPSHOT_FIELDS.len() {
                return Err(err(format!(
                    "snapshot frames exactly {} fields, found {}",
                    SNAPSHOT_FIELDS.len(),
                    body.len()
                )));
            }
            let mut values = [0u64; 7];
            let mut count = 0i64;
            for (i, (line, field)) in body.iter().zip(SNAPSHOT_FIELDS).enumerate() {
                let (key, value) = line
                    .split_once(' ')
                    .ok_or_else(|| err(format!("expected `<field> <value>`, got {line:?}")))?;
                if key != field {
                    return Err(err(format!(
                        "snapshot field {}: expected {field:?}, got {key:?}",
                        i + 1
                    )));
                }
                if field == "count" {
                    count = int(value, "count")?;
                } else {
                    values[i] = uint(value, field)?;
                }
            }
            Ok(Response::Snapshot {
                id,
                snapshot: Snapshot {
                    count,
                    total_edges: usize::try_from(values[1])
                        .map_err(|_| err("total_edges exceeds this platform's usize"))?,
                    work: values[2],
                    slow_path: fourcycle_core::SlowPathStats {
                        era_rebuilds: values[3],
                        phase_rollovers: values[4],
                        class_transitions: values[5],
                    },
                    epoch: values[6],
                },
            })
        }
        "graphs" => {
            if !rest.is_empty() {
                return Err(err("graphs takes no header arguments"));
            }
            let ids: Vec<GraphId> = body
                .iter()
                .map(|line| parse_graph_id(line.trim()))
                .collect::<Result<_, _>>()?;
            Ok(Response::Graphs { ids })
        }
        _ => Err(err(format!("unknown response tag {tag:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_the_text_format() {
        let requests = vec![
            Request::CreateGraph {
                id: GraphId(1),
                spec: None,
            },
            Request::CreateGraph {
                id: GraphId(2),
                spec: Some(SessionSpec {
                    kind: EngineKind::FmmDense,
                    config: EngineConfig::default(),
                    mode: WorkloadMode::Join,
                }),
            },
            Request::ApplyLayered {
                id: GraphId(2),
                update: LayeredUpdate::insert(Rel::B, 5, 9),
            },
            Request::ApplyLayeredBatch {
                id: GraphId(2),
                updates: vec![
                    LayeredUpdate::insert(Rel::A, 1, 2),
                    LayeredUpdate::delete(Rel::D, 3, 4),
                ],
            },
            Request::ApplyGeneral {
                id: GraphId(1),
                update: GraphUpdate::delete(7, 8),
            },
            Request::ApplyGeneralBatch {
                id: GraphId(1),
                updates: vec![GraphUpdate::insert(1, 2), GraphUpdate::insert(2, 3)],
            },
            Request::Count { id: GraphId(1) },
            Request::GetSnapshot { id: GraphId(2) },
            Request::ListGraphs,
        ];
        for request in &requests {
            let line = render_request(request);
            assert_eq!(&parse_request(&line).unwrap(), request, "{line}");
        }
        // And the whole thing as one script with comments and blanks.
        let script: String = requests
            .iter()
            .map(|r| format!("  {}   # inline comment\n\n", render_request(r)))
            .collect();
        assert_eq!(parse_script(&script).unwrap(), requests);
    }

    #[test]
    fn parse_errors_name_the_line_and_problem() {
        let e = parse_script("create g1\nfrobnicate g2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        assert!(e.to_string().contains("line 2"));
        // The offending line text rides along (comments stripped, trimmed),
        // so a rejected multi-thousand-line replay names the exact input.
        assert_eq!(e.text, "frobnicate g2");
        assert!(e.to_string().contains("\"frobnicate g2\""));
        let e = parse_script("count g1\n\n  layered g9 Q+1:2  # bad rel\n").unwrap_err();
        assert_eq!((e.line, e.text.as_str()), (3, "layered g9 Q+1:2"));
        // Single-line parses leave the text empty (the caller holds the
        // input) and keep the line at 0.
        let e = parse_request("frobnicate g1").unwrap_err();
        assert_eq!((e.line, e.text.as_str()), (0, ""));
        assert!(!e.to_string().contains("line"));

        assert!(parse_request("layered g1").is_err());
        assert!(parse_request("layered g1 E+1:2").is_err());
        assert!(parse_request("layered g1 A*1:2").is_err());
        assert!(parse_request("general g1 +1-2").is_err());
        assert!(parse_request("create g1 sideways simple").is_err());
        assert!(parse_request("create g1 layered quantum").is_err());
        assert!(parse_request("count one").is_err());
        assert!(parse_request("list extra").is_err());
    }

    #[test]
    fn mutation_classification_matches_the_journal_contract() {
        let id = GraphId(1);
        let mutating = [
            Request::CreateGraph { id, spec: None },
            Request::DropGraph { id },
            Request::ApplyLayered {
                id,
                update: LayeredUpdate::insert(Rel::A, 1, 2),
            },
            Request::ApplyLayeredBatch {
                id,
                updates: vec![LayeredUpdate::insert(Rel::A, 1, 2)],
            },
            Request::ApplyGeneral {
                id,
                update: GraphUpdate::insert(1, 2),
            },
            Request::ApplyGeneralBatch {
                id,
                updates: vec![GraphUpdate::insert(1, 2)],
            },
        ];
        assert!(mutating.iter().all(Request::is_mutation));
        let reads = [
            Request::Count { id },
            Request::GetSnapshot { id },
            Request::ListGraphs,
        ];
        assert!(reads.iter().all(|r| !r.is_mutation()));
        // Empty batches are accepted no-ops with no text rendering; they
        // must not be classified as mutations or the journal would record
        // an unparseable line and poison recovery.
        assert!(!Request::ApplyLayeredBatch {
            id,
            updates: vec![]
        }
        .is_mutation());
        assert!(!Request::ApplyGeneralBatch {
            id,
            updates: vec![]
        }
        .is_mutation());
    }

    #[test]
    fn responses_roundtrip_through_the_framed_text_format() {
        use fourcycle_core::SlowPathStats;
        let responses = vec![
            Response::Created { id: GraphId(1) },
            Response::Dropped { id: GraphId(7) },
            Response::Applied {
                id: GraphId(2),
                count: -3, // deletes can drive the count delta negative
                epoch: 11,
            },
            Response::Count {
                id: GraphId(3),
                count: 42,
            },
            Response::Snapshot {
                id: GraphId(4),
                snapshot: Snapshot {
                    count: -1,
                    total_edges: 17,
                    work: 9001,
                    slow_path: SlowPathStats {
                        era_rebuilds: 2,
                        phase_rollovers: 1,
                        class_transitions: 33,
                    },
                    epoch: 64,
                },
            },
            Response::Graphs {
                ids: vec![GraphId(1), GraphId(5), GraphId(9)],
            },
            Response::Graphs { ids: vec![] },
        ];
        for response in &responses {
            let framed = render_response(response);
            // The framing invariant: header declares the continuation
            // count, and the rendering contains exactly that many.
            let header = framed.lines().next().unwrap();
            let declared = response_extra_lines(header).unwrap();
            assert_eq!(framed.lines().count(), declared + 1, "{framed}");
            assert!(!framed.ends_with('\n'));
            assert_eq!(&parse_response(&framed).unwrap(), response, "{framed}");
        }
        // Single-line responses and err lines both declare zero
        // continuation lines; the empty listing still frames explicitly.
        assert_eq!(response_extra_lines("ok created g1").unwrap(), 0);
        assert_eq!(response_extra_lines("err busy").unwrap(), 0);
        assert_eq!(response_extra_lines("ok+0 graphs").unwrap(), 0);
        assert_eq!(response_extra_lines("ok+7 snapshot g4").unwrap(), 7);
        assert_eq!(
            render_response(&Response::Graphs { ids: vec![] }),
            "ok+0 graphs"
        );
    }

    #[test]
    fn ill_framed_responses_are_rejected() {
        // Header/payload mismatch in both directions.
        assert!(parse_response("ok+2 graphs\ng1").is_err());
        assert!(parse_response("ok+1 graphs\ng1\ng2").is_err());
        assert!(parse_response("ok created g1\ng2").is_err());
        // Snapshot fields must appear in the fixed order with sane values.
        assert!(parse_response("ok+1 snapshot g1\ncount 0").is_err());
        let good = render_response(&Response::Snapshot {
            id: GraphId(1),
            snapshot: Snapshot::default(),
        });
        let swapped = good.replace("total_edges", "edges_total");
        assert!(parse_response(&swapped).is_err());
        let negative_epoch = good.replace("epoch 0", "epoch -1");
        assert!(parse_response(&negative_epoch).is_err());
        // Unknown status / tag, and err lines are not successes.
        assert!(parse_response("done created g1").is_err());
        assert!(parse_response("ok frobnicated g1").is_err());
        assert!(parse_response("err busy").is_err());
        assert!(parse_response("").is_err());
        assert!(response_extra_lines("ok+x graphs").is_err());
        assert!(response_extra_lines("gibberish").is_err());
        // Malformed numeric payloads.
        assert!(parse_response("ok applied g1 three 4").is_err());
        assert!(parse_response("ok count g1").is_err());
        assert!(parse_response("ok+1 graphs\nnot-an-id").is_err());
    }

    #[test]
    fn engine_tokens_cover_every_kind_and_accept_long_names() {
        for kind in EngineKind::ALL {
            assert_eq!(parse_engine(engine_token(kind)).unwrap(), kind);
            assert_eq!(parse_engine(kind.name()).unwrap(), kind);
        }
    }
}
