//! `fourcycle-service` — the typed, multi-tenant front door of the
//! workspace.
//!
//! The counters and views of `fourcycle-core` / `fourcycle-ivm` each serve
//! exactly one graph and are constructed ad hoc. A production deployment
//! (the ROADMAP's "heavy traffic from millions of users") instead wants one
//! *service* object owning many independent graphs, a single command
//! vocabulary for all of them, real errors instead of silently-ignored
//! updates, and reads that cannot race writers. [`CycleCountService`]
//! provides exactly that, in the same service framing IVM systems
//! (DBSP, differential dataflow) put in front of their incremental cores:
//!
//! * **Sessions** — a registry of independent graphs keyed by [`GraphId`].
//!   Each session owns one counter/view built from a [`SessionSpec`]
//!   (engine kind, [`EngineConfig`], [`WorkloadMode`]); sessions are fully
//!   isolated, so one tenant's updates never touch another's count.
//! * **Commands** — the [`Request`]/[`Response`] enum pair: every operation
//!   of the underlying structures (create/drop, single and batched updates,
//!   count and snapshot reads) is a value, so traffic can be driven
//!   programmatically, replayed from logs, or parsed from the line-based
//!   [`command`] text format.
//! * **Errors** — the update path is fallible end-to-end:
//!   [`UpdateError`] / [`BatchError`] from `fourcycle-core` surface through
//!   [`ServiceError`], and batch rejection names the offending batch index.
//!   Batches are *atomic*: a rejected batch changes nothing.
//! * **Epochs** — every session counts its successfully applied updates;
//!   [`CycleCountService::snapshot`] returns count, edge total, work,
//!   slow-path counters and the epoch they were all taken at, as one
//!   consistent value.
//!
//! # Quick start
//!
//! ```
//! use fourcycle_core::EngineKind;
//! use fourcycle_graph::{LayeredUpdate, Rel};
//! use fourcycle_service::{CycleCountService, GraphId, WorkloadMode};
//!
//! let mut service = CycleCountService::builder()
//!     .engine(EngineKind::Threshold)
//!     .mode(WorkloadMode::Layered)
//!     .build();
//!
//! // Two tenants, two independent graphs.
//! let (alice, bob) = (GraphId(1), GraphId(2));
//! service.create_session(alice).unwrap();
//! service.create_session(bob).unwrap();
//!
//! for rel in [Rel::A, Rel::B, Rel::C, Rel::D] {
//!     let (l, r) = match rel {
//!         Rel::A => (1, 2),
//!         Rel::B => (2, 3),
//!         Rel::C => (3, 4),
//!         Rel::D => (4, 1),
//!     };
//!     service.try_apply_layered(alice, LayeredUpdate::insert(rel, l, r)).unwrap();
//! }
//! let snap = service.snapshot(alice).unwrap();
//! assert_eq!((snap.count, snap.epoch), (1, 4));
//! assert_eq!(service.snapshot(bob).unwrap().epoch, 0); // isolated
//! ```

// Unit tests keep their unwrap/cast freedoms; the workspace clippy
// lints target only compiled production code (ADR-010).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod command;
pub mod journal;

pub use command::{
    parse_request, parse_response, parse_script, render_request, render_response,
    response_extra_lines, ParseError, Request, Response,
};
pub use fourcycle_core::{BatchError, EngineConfig, EngineKind, Snapshot, UpdateError};
pub use journal::{CheckpointImage, JournalSink, SessionImage};

use fourcycle_core::{FourCycleCounter, LayeredCycleCounter};
use fourcycle_graph::{GraphUpdate, LayeredUpdate, Rel};
use fourcycle_ivm::CyclicJoinCountView;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one graph session within a service. Plain `u64` newtype:
/// tenants mint them however they like (the service only requires
/// uniqueness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u64);

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Which problem a session solves — which underlying structure it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadMode {
    /// Layered 4-cycle counting (Theorem 2) via `LayeredCycleCounter`;
    /// accepts layered updates.
    Layered,
    /// General-graph 4-cycle counting (Theorem 1, §8 reduction) via
    /// `FourCycleCounter`; accepts general updates.
    General,
    /// Cyclic-join count maintenance (the §1 database framing) via
    /// `CyclicJoinCountView`; accepts layered (tuple) updates.
    Join,
}

impl WorkloadMode {
    /// All modes.
    pub const ALL: [WorkloadMode; 3] = [
        WorkloadMode::Layered,
        WorkloadMode::General,
        WorkloadMode::Join,
    ];

    /// Stable token used by the command text format.
    pub fn token(self) -> &'static str {
        match self {
            WorkloadMode::Layered => "layered",
            WorkloadMode::General => "general",
            WorkloadMode::Join => "join",
        }
    }
}

/// Everything needed to build one session's underlying structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// Engine driving the session's counter/view.
    pub kind: EngineKind,
    /// Shared construction options (capacity hints, `FmmConfig`).
    pub config: EngineConfig,
    /// Which structure the session owns.
    pub mode: WorkloadMode,
}

impl Default for SessionSpec {
    fn default() -> Self {
        Self {
            kind: EngineKind::Fmm,
            config: EngineConfig::default(),
            mode: WorkloadMode::Layered,
        }
    }
}

/// Builds a [`CycleCountService`] whose sessions default to a shared
/// [`SessionSpec`] (individual sessions can still override it via
/// [`CycleCountService::create_session_with`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceBuilder {
    spec: SessionSpec,
}

impl ServiceBuilder {
    /// A builder with the default spec (main algorithm, layered mode).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the default engine kind.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.spec.kind = kind;
        self
    }

    /// Sets the default engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// Sets the default workload mode.
    pub fn mode(mut self, mode: WorkloadMode) -> Self {
        self.spec.mode = mode;
        self
    }

    /// The spec new sessions will be built from.
    pub fn spec(&self) -> SessionSpec {
        self.spec
    }

    /// Builds the (empty) service.
    pub fn build(self) -> CycleCountService {
        CycleCountService {
            default_spec: self.spec,
            sessions: BTreeMap::new(),
            journal: None,
        }
    }
}

/// Why a service call failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceError {
    /// No session with this id exists.
    UnknownGraph(GraphId),
    /// A session with this id already exists.
    GraphAlreadyExists(GraphId),
    /// The command's update family does not match the session's mode (e.g.
    /// a general-graph update sent to a layered session) — the service-level
    /// face of [`UpdateError::RelationMismatch`].
    ModeMismatch {
        /// The addressed session.
        id: GraphId,
        /// The session's actual mode.
        mode: WorkloadMode,
    },
    /// A single update was rejected; nothing changed.
    Update(UpdateError),
    /// A batch was rejected (with the offending index); nothing changed.
    Batch(BatchError),
    /// The attached [`JournalSink`] failed to persist a successful mutating
    /// command. The command's effect *stands* (it was applied before the
    /// journal write), but the journal is now missing a suffix of the
    /// history — callers must treat it as no longer authoritative, and
    /// must **not** re-submit the command (its state change is live).
    /// Carries the I/O error kind (the full `std::io::Error` is not
    /// `Clone`/`PartialEq`; the sink is the place to log details).
    Journal(std::io::ErrorKind),
    /// The attached [`JournalSink`] failed to persist a *checkpoint*.
    /// Unlike [`ServiceError::Journal`], the triggering command — and the
    /// whole history — **is** durably journaled: full-replay recovery
    /// remains complete, only checkpoint-accelerated recovery is stale
    /// until a later checkpoint succeeds.
    JournalCheckpoint(std::io::ErrorKind),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph(id) => write!(f, "unknown graph {id}"),
            ServiceError::GraphAlreadyExists(id) => write!(f, "graph {id} already exists"),
            ServiceError::ModeMismatch { id, mode } => {
                write!(f, "graph {id} is a {} session", mode.token())
            }
            ServiceError::Update(e) => write!(f, "update rejected: {e}"),
            ServiceError::Batch(e) => write!(f, "batch rejected: {e}"),
            ServiceError::Journal(kind) => {
                write!(
                    f,
                    "journal write failed ({kind:?}); command applied but not journaled"
                )
            }
            ServiceError::JournalCheckpoint(kind) => {
                write!(
                    f,
                    "checkpoint write failed ({kind:?}); command applied and journaled, \
                     checkpoint stale"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {
    /// Chains to the underlying [`UpdateError`] / [`BatchError`] (which in
    /// turn chains to its own `UpdateError`), matching the convention of
    /// `fourcycle_core::error` — so generic error reporters can walk
    /// `source()` from a service rejection down to the exact update verdict.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Update(e) => Some(e),
            ServiceError::Batch(e) => Some(e),
            ServiceError::UnknownGraph(_)
            | ServiceError::GraphAlreadyExists(_)
            | ServiceError::ModeMismatch { .. }
            | ServiceError::Journal(_)
            | ServiceError::JournalCheckpoint(_) => None,
        }
    }
}

impl From<UpdateError> for ServiceError {
    fn from(e: UpdateError) -> Self {
        ServiceError::Update(e)
    }
}

impl From<BatchError> for ServiceError {
    fn from(e: BatchError) -> Self {
        ServiceError::Batch(e)
    }
}

/// One tenant's graph: the spec it was built from plus the owned structure.
struct Session {
    spec: SessionSpec,
    state: SessionState,
}

enum SessionState {
    Layered(LayeredCycleCounter),
    General(FourCycleCounter),
    Join(CyclicJoinCountView),
}

impl Session {
    fn build(spec: SessionSpec) -> Self {
        let state = match spec.mode {
            WorkloadMode::Layered => {
                SessionState::Layered(LayeredCycleCounter::with_config(spec.kind, &spec.config))
            }
            WorkloadMode::General => {
                SessionState::General(FourCycleCounter::with_config(spec.kind, &spec.config))
            }
            WorkloadMode::Join => {
                SessionState::Join(CyclicJoinCountView::with_config(spec.kind, &spec.config))
            }
        };
        Self { spec, state }
    }

    fn count(&self) -> i64 {
        match &self.state {
            SessionState::Layered(c) => c.count(),
            SessionState::General(c) => c.count(),
            SessionState::Join(v) => v.count(),
        }
    }

    fn epoch(&self) -> u64 {
        match &self.state {
            SessionState::Layered(c) => c.epoch(),
            SessionState::General(c) => c.epoch(),
            SessionState::Join(v) => v.epoch(),
        }
    }

    fn snapshot(&self) -> Snapshot {
        match &self.state {
            SessionState::Layered(c) => c.snapshot(),
            SessionState::General(c) => c.snapshot(),
            SessionState::Join(v) => v.snapshot(),
        }
    }

    fn restore_epoch(&mut self, epoch: u64) {
        match &mut self.state {
            SessionState::Layered(c) => c.restore_epoch(epoch),
            SessionState::General(c) => c.restore_epoch(epoch),
            SessionState::Join(v) => v.restore_epoch(epoch),
        }
    }

    fn mode_mismatch(&self, id: GraphId) -> ServiceError {
        ServiceError::ModeMismatch {
            id,
            mode: self.spec.mode,
        }
    }

    fn try_apply_layered(
        &mut self,
        id: GraphId,
        update: LayeredUpdate,
    ) -> Result<i64, ServiceError> {
        match &mut self.state {
            SessionState::Layered(c) => Ok(c.try_apply(update)?),
            SessionState::Join(v) => Ok(v.try_apply(update)?),
            SessionState::General(_) => Err(self.mode_mismatch(id)),
        }
    }

    fn try_apply_layered_batch(
        &mut self,
        id: GraphId,
        updates: &[LayeredUpdate],
    ) -> Result<i64, ServiceError> {
        match &mut self.state {
            SessionState::Layered(c) => Ok(c.try_apply_batch(updates)?),
            SessionState::Join(v) => Ok(v.try_apply_batch(updates)?),
            SessionState::General(_) => Err(self.mode_mismatch(id)),
        }
    }

    fn try_apply_general(&mut self, id: GraphId, update: GraphUpdate) -> Result<i64, ServiceError> {
        match &mut self.state {
            SessionState::General(c) => Ok(c.try_apply(update)?),
            SessionState::Layered(_) | SessionState::Join(_) => Err(self.mode_mismatch(id)),
        }
    }

    fn try_apply_general_batch(
        &mut self,
        id: GraphId,
        updates: &[GraphUpdate],
    ) -> Result<i64, ServiceError> {
        match &mut self.state {
            SessionState::General(c) => Ok(c.try_apply_batch(updates)?),
            SessionState::Layered(_) | SessionState::Join(_) => Err(self.mode_mismatch(id)),
        }
    }

    fn applied(&self, id: GraphId, count: i64) -> Response {
        Response::Applied {
            id,
            count,
            epoch: self.epoch(),
        }
    }

    /// Executes one *session-scoped* command (applies, count, snapshot)
    /// against this session alone — the shared body of the service's
    /// [`apply_request`](CycleCountService::apply_request) and of
    /// [`DetachedSession::execute`]. Registry commands (create/drop/list)
    /// address the service, not one session, and panic here; the callers
    /// route them before ever reaching a session.
    fn execute_scoped(&mut self, id: GraphId, request: &Request) -> Result<Response, ServiceError> {
        match request {
            Request::ApplyLayered { update, .. } => {
                let count = self.try_apply_layered(id, *update)?;
                Ok(self.applied(id, count))
            }
            Request::ApplyLayeredBatch { updates, .. } => {
                let count = self.try_apply_layered_batch(id, updates)?;
                Ok(self.applied(id, count))
            }
            Request::ApplyGeneral { update, .. } => {
                let count = self.try_apply_general(id, *update)?;
                Ok(self.applied(id, count))
            }
            Request::ApplyGeneralBatch { updates, .. } => {
                let count = self.try_apply_general_batch(id, updates)?;
                Ok(self.applied(id, count))
            }
            Request::Count { .. } => Ok(Response::Count {
                id,
                count: self.count(),
            }),
            Request::GetSnapshot { .. } => Ok(Response::Snapshot {
                id,
                snapshot: self.snapshot(),
            }),
            Request::CreateGraph { .. } | Request::DropGraph { .. } | Request::ListGraphs => {
                // lint: allow(no-panic) the runtime routes registry commands upstream
                panic!("registry commands cannot execute on a single session")
            }
        }
    }

    /// Commands that recreate this session's current edge set in an empty
    /// service: one spec-carrying create, then insert batches of at most
    /// [`STATE_BATCH_LEN`] updates (bounded batches keep atomic-validation
    /// buffers and replay memory proportional to the chunk, not the graph).
    fn state_requests(&self, id: GraphId) -> Vec<Request> {
        let mut requests = vec![Request::CreateGraph {
            id,
            spec: Some(self.spec),
        }];
        match &self.state {
            SessionState::Layered(c) => {
                layered_state_requests(id, c.graph(), &mut requests);
            }
            SessionState::Join(v) => {
                layered_state_requests(id, v.graph(), &mut requests);
            }
            SessionState::General(c) => {
                let mut updates: Vec<GraphUpdate> = Vec::new();
                for (u, v) in c.graph().edges() {
                    updates.push(GraphUpdate::insert(u, v));
                    if updates.len() == STATE_BATCH_LEN {
                        requests.push(Request::ApplyGeneralBatch {
                            id,
                            updates: std::mem::take(&mut updates),
                        });
                    }
                }
                if !updates.is_empty() {
                    requests.push(Request::ApplyGeneralBatch { id, updates });
                }
            }
        }
        requests
    }
}

/// One session temporarily removed from its service so another thread can
/// apply its commands — the unit of *intra-shard parallelism* in the
/// sharded runtime.
///
/// Sessions are independent by construction (no shared state between
/// tenants), so a dispatcher may [`detach`](CycleCountService::detach_session)
/// several sessions, hand each to a worker that executes that session's
/// commands **in order**, and [`reattach`](CycleCountService::reattach_session)
/// them afterwards. While detached, the session is invisible to the service
/// (commands addressing it fail with `UnknownGraph`), which is exactly the
/// mutual exclusion the scheme needs.
///
/// `execute` applies *session-scoped* commands only (applies, count,
/// snapshot) and never touches a journal — the dispatcher journals the
/// applied commands itself, in a per-session-order-preserving sequence, via
/// [`CycleCountService::journal_record_applied`]. Registry commands
/// (create/drop/list) panic: they address the whole service and must be
/// routed before detaching.
pub struct DetachedSession {
    id: GraphId,
    session: Session,
}

impl DetachedSession {
    /// The detached session's graph id.
    pub fn id(&self) -> GraphId {
        self.id
    }

    /// Executes one session-scoped command against this session, with the
    /// exact semantics (responses, epoch stamps, atomic batch rejection)
    /// of [`CycleCountService::execute`] minus journaling.
    ///
    /// # Panics
    ///
    /// If the request is a registry command or addresses another session.
    pub fn execute(&mut self, request: &Request) -> Result<Response, ServiceError> {
        assert_eq!(
            request.graph_id(),
            Some(self.id),
            "request addresses a different session than the detached one"
        );
        self.session.execute_scoped(self.id, request)
    }
}

/// Maximum updates per state-reconstruction batch in a checkpoint image.
const STATE_BATCH_LEN: usize = 1024;

fn layered_state_requests(
    id: GraphId,
    graph: &fourcycle_graph::LayeredGraph,
    requests: &mut Vec<Request>,
) {
    let mut updates: Vec<LayeredUpdate> = Vec::new();
    for rel in [Rel::A, Rel::B, Rel::C, Rel::D] {
        for (left, right, weight) in graph.rel(rel).iter() {
            debug_assert_eq!(weight, 1, "layered edges are set-like");
            updates.push(LayeredUpdate::insert(rel, left, right));
            if updates.len() == STATE_BATCH_LEN {
                requests.push(Request::ApplyLayeredBatch {
                    id,
                    updates: std::mem::take(&mut updates),
                });
            }
        }
    }
    if !updates.is_empty() {
        requests.push(Request::ApplyLayeredBatch { id, updates });
    }
}

/// A multi-tenant registry of independent cycle-counting sessions — the
/// canonical application API of the workspace (see the crate docs and
/// `docs/adr/ADR-003-service-api.md`).
pub struct CycleCountService {
    default_spec: SessionSpec,
    sessions: BTreeMap<GraphId, Session>,
    /// Where successful mutating commands are mirrored; `None` (the
    /// default) makes [`CycleCountService::execute`] journaling-free.
    journal: Option<Box<dyn JournalSink>>,
}

impl Default for CycleCountService {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleCountService {
    /// A service whose sessions default to [`SessionSpec::default`].
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// The spec sessions are built from when none is given.
    pub fn default_spec(&self) -> SessionSpec {
        self.default_spec
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` if no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// `true` if a session with this id exists.
    pub fn contains(&self, id: GraphId) -> bool {
        self.sessions.contains_key(&id)
    }

    /// All live session ids, in ascending order.
    ///
    /// The sorted order is a **guarantee**, not an artifact of the current
    /// `BTreeMap` registry: callers (the sharded runtime merges per-shard
    /// listings into one sorted `Response::Graphs`, tests diff listings
    /// against expected sets) rely on it, and the service tests pin it.
    pub fn ids(&self) -> Vec<GraphId> {
        let ids: Vec<GraphId> = self.sessions.keys().copied().collect();
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        ids
    }

    /// The spec a live session was built from.
    pub fn session_spec(&self, id: GraphId) -> Result<SessionSpec, ServiceError> {
        Ok(self.session(id)?.spec)
    }

    /// Creates a session from the service's default spec.
    pub fn create_session(&mut self, id: GraphId) -> Result<(), ServiceError> {
        self.create_session_with(id, self.default_spec)
    }

    /// Creates a session from an explicit spec.
    pub fn create_session_with(
        &mut self,
        id: GraphId,
        spec: SessionSpec,
    ) -> Result<(), ServiceError> {
        if self.sessions.contains_key(&id) {
            return Err(ServiceError::GraphAlreadyExists(id));
        }
        self.sessions.insert(id, Session::build(spec));
        Ok(())
    }

    /// Drops a session, releasing its graph.
    pub fn drop_session(&mut self, id: GraphId) -> Result<(), ServiceError> {
        self.sessions
            .remove(&id)
            .map(|_| ())
            .ok_or(ServiceError::UnknownGraph(id))
    }

    /// Current count of a session (layered 4-cycles, general 4-cycles or
    /// join size, depending on its mode).
    pub fn count(&self, id: GraphId) -> Result<i64, ServiceError> {
        Ok(self.session(id)?.count())
    }

    /// Number of updates a session has successfully applied.
    pub fn epoch(&self, id: GraphId) -> Result<u64, ServiceError> {
        Ok(self.session(id)?.epoch())
    }

    /// A consistent point-in-time view of one session: count, edge/tuple
    /// total, work, slow-path counters and the epoch they were all taken
    /// at. Because the service hands out no direct mutable access, no
    /// writer can slip between the fields of one snapshot.
    pub fn snapshot(&self, id: GraphId) -> Result<Snapshot, ServiceError> {
        Ok(self.session(id)?.snapshot())
    }

    /// Applies one layered (or join-tuple) update; returns the session's new
    /// count.
    pub fn try_apply_layered(
        &mut self,
        id: GraphId,
        update: LayeredUpdate,
    ) -> Result<i64, ServiceError> {
        self.session_mut(id)?.try_apply_layered(id, update)
    }

    /// Atomically applies a batch of layered (or join-tuple) updates;
    /// rejection attributes the first offending batch index and changes
    /// nothing.
    pub fn try_apply_layered_batch(
        &mut self,
        id: GraphId,
        updates: &[LayeredUpdate],
    ) -> Result<i64, ServiceError> {
        self.session_mut(id)?.try_apply_layered_batch(id, updates)
    }

    /// Applies one general-graph update; returns the session's new count.
    pub fn try_apply_general(
        &mut self,
        id: GraphId,
        update: GraphUpdate,
    ) -> Result<i64, ServiceError> {
        self.session_mut(id)?.try_apply_general(id, update)
    }

    /// Atomically applies a batch of general-graph updates.
    pub fn try_apply_general_batch(
        &mut self,
        id: GraphId,
        updates: &[GraphUpdate],
    ) -> Result<i64, ServiceError> {
        self.session_mut(id)?.try_apply_general_batch(id, updates)
    }

    /// Attaches a journal sink: from now on every successful mutating
    /// command executed through [`execute`](Self::execute) /
    /// [`execute_all`](Self::execute_all) is mirrored into it (see the
    /// [`journal`] module docs for the contract). Replaces any previous
    /// sink. The typed entry points (`try_apply_*`, `create_session`, …)
    /// are the *embedded* API and bypass the journal — durable deployments
    /// drive the service through commands.
    pub fn attach_journal(&mut self, sink: Box<dyn JournalSink>) {
        self.journal = Some(sink);
    }

    /// Detaches and returns the journal sink, if any (without syncing).
    pub fn detach_journal(&mut self) -> Option<Box<dyn JournalSink>> {
        self.journal.take()
    }

    /// `true` if a journal sink is attached.
    pub fn is_journaled(&self) -> bool {
        self.journal.is_some()
    }

    /// Durability barrier: asks the attached sink to flush and fsync
    /// everything recorded so far. A no-op without a sink.
    pub fn sync_journal(&mut self) -> Result<(), ServiceError> {
        match self.journal.as_mut() {
            Some(sink) => sink.sync().map_err(|e| ServiceError::Journal(e.kind())),
            None => Ok(()),
        }
    }

    /// Forces a checkpoint through the attached sink right now, regardless
    /// of [`JournalSink::checkpoint_due`]. Returns `Ok(false)` without a
    /// sink, `Ok(true)` after a persisted checkpoint.
    pub fn checkpoint(&mut self) -> Result<bool, ServiceError> {
        if self.journal.is_none() {
            return Ok(false);
        }
        self.write_checkpoint_now()?;
        Ok(true)
    }

    /// A consistent point-in-time image of every session: spec, snapshot,
    /// and the command sequence recreating its current edge set (see
    /// [`CheckpointImage`]).
    pub fn checkpoint_image(&self) -> CheckpointImage {
        Self::image_of(&self.sessions)
    }

    /// Overwrites a session's applied-update count. Crash-recovery hook
    /// (`fourcycle-store`): replaying a checkpoint's state commands leaves
    /// the epoch at the edge count, and this restores the recorded value.
    /// Not for general use — everywhere else the epoch is maintained solely
    /// by the apply paths.
    pub fn restore_epoch(&mut self, id: GraphId, epoch: u64) -> Result<(), ServiceError> {
        self.session_mut(id)?.restore_epoch(epoch);
        Ok(())
    }

    fn image_of(sessions: &BTreeMap<GraphId, Session>) -> CheckpointImage {
        CheckpointImage {
            sessions: sessions
                .iter()
                .map(|(&id, session)| SessionImage {
                    id,
                    spec: session.spec,
                    snapshot: session.snapshot(),
                    state: session.state_requests(id),
                })
                .collect(),
        }
    }

    /// Assembles the current [`CheckpointImage`] and hands it to the sink.
    /// The image is built before the sink is borrowed (the two live in
    /// different fields), which is what lets one body serve both the
    /// explicit [`checkpoint`](Self::checkpoint) and the cadence-driven
    /// path in [`execute`](Self::execute).
    fn write_checkpoint_now(&mut self) -> Result<(), ServiceError> {
        let image = Self::image_of(&self.sessions);
        match self.journal.as_mut() {
            Some(sink) => sink
                .write_checkpoint(&image)
                .map_err(|e| ServiceError::JournalCheckpoint(e.kind())),
            None => Ok(()),
        }
    }

    /// Removes a session from the registry and hands it out for
    /// out-of-band execution (see [`DetachedSession`]). While detached the
    /// id is unknown to the service; [`reattach_session`](Self::reattach_session)
    /// puts it back. The caller owns ordering: all of the session's
    /// commands must flow through the detached handle until reattach.
    pub fn detach_session(&mut self, id: GraphId) -> Result<DetachedSession, ServiceError> {
        let session = self
            .sessions
            .remove(&id)
            .ok_or(ServiceError::UnknownGraph(id))?;
        Ok(DetachedSession { id, session })
    }

    /// Returns a detached session to the registry.
    pub fn reattach_session(&mut self, detached: DetachedSession) {
        let prev = self.sessions.insert(detached.id, detached.session);
        debug_assert!(prev.is_none(), "reattach over a live session");
    }

    /// Journals one *already applied* mutating request — the companion of
    /// [`DetachedSession::execute`], which applies without journaling. The
    /// dispatcher calls this once per successfully applied mutating
    /// command, in an order that preserves each session's command order
    /// (sufficient for replay: sessions are independent). Non-mutating
    /// requests are a no-op. Serves a due checkpoint, like
    /// [`execute`](Self::execute) does; call it only with every detached
    /// session reattached, so the checkpoint image is complete.
    pub fn journal_record_applied(&mut self, request: &Request) -> Result<(), ServiceError> {
        if !request.is_mutation() {
            return Ok(());
        }
        self.journal_applied(request)
    }

    /// Group-commit barrier: makes everything recorded since the last fsync
    /// durable with one fsync (see [`JournalSink::commit_group`]). Returns
    /// the number of commands the fsync covered; `Ok(0)` without a sink or
    /// with nothing pending. Callers holding replies under
    /// `FsyncPolicy::GroupCommit` release them only after this returns
    /// `Ok` — on `Err`, every reply journaled into the failed group must be
    /// rewritten to `ServiceError::Journal` (the commands applied, but are
    /// not durable).
    pub fn journal_commit_group(&mut self) -> Result<u64, ServiceError> {
        match self.journal.as_mut() {
            Some(sink) => sink
                .commit_group()
                .map_err(|e| ServiceError::Journal(e.kind())),
            None => Ok(0),
        }
    }

    /// Fsyncs the attached sink has issued so far (0 without a sink).
    pub fn journal_fsyncs(&self) -> u64 {
        self.journal.as_ref().map_or(0, |sink| sink.fsyncs())
    }

    /// Mirrors a just-applied mutating request into the journal sink and
    /// serves a due checkpoint. Called by [`execute`](Self::execute) only
    /// after success.
    fn journal_applied(&mut self, request: &Request) -> Result<(), ServiceError> {
        let Some(sink) = self.journal.as_mut() else {
            return Ok(());
        };
        sink.record(request)
            .map_err(|e| ServiceError::Journal(e.kind()))?;
        if sink.checkpoint_due() {
            self.write_checkpoint_now()?;
        }
        Ok(())
    }

    /// Executes one command; the uniform entry point for programmatic and
    /// replayed traffic. Failed commands change nothing.
    ///
    /// With a [`JournalSink`] attached ([`Self::attach_journal`]), every
    /// successful mutating command is mirrored into the journal *before*
    /// the response is returned, so a caller that has seen a response
    /// holds a journaled (durable, per the sink's fsync policy) command.
    /// Reads and rejected commands are never journaled.
    pub fn execute(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let response = self.apply_request(request)?;
        if request.is_mutation() {
            self.journal_applied(request)?;
        }
        Ok(response)
    }

    /// Applies one command without touching the journal — the first half
    /// of the split execute path, with [`Self::journal_record_applied`] as
    /// the second. A driver that needs to observe or order the journal
    /// step separately (the runtime's telemetry-instrumented dispatcher)
    /// calls these two in sequence; the pair is equivalent to
    /// [`execute`](Self::execute), including the journal-error contract:
    /// if journaling fails after a successful apply, the effect stands and
    /// the caller must surface the journal error as the command's outcome.
    pub fn execute_unjournaled(&mut self, request: &Request) -> Result<Response, ServiceError> {
        self.apply_request(request)
    }

    /// Applies one command without touching the journal (the replay path of
    /// recovery, and the body of [`execute`](Self::execute)).
    fn apply_request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        match request {
            Request::CreateGraph { id, spec } => {
                self.create_session_with(*id, spec.unwrap_or(self.default_spec))?;
                Ok(Response::Created { id: *id })
            }
            Request::DropGraph { id } => {
                self.drop_session(*id)?;
                Ok(Response::Dropped { id: *id })
            }
            Request::ApplyLayered { id, .. }
            | Request::ApplyLayeredBatch { id, .. }
            | Request::ApplyGeneral { id, .. }
            | Request::ApplyGeneralBatch { id, .. }
            | Request::Count { id }
            | Request::GetSnapshot { id } => self.session_mut(*id)?.execute_scoped(*id, request),
            Request::ListGraphs => Ok(Response::Graphs { ids: self.ids() }),
        }
    }

    /// Executes commands in order, stopping at (and returning) the first
    /// error; responses of the commands before it are lost, but their
    /// effects stand — command streams with transactional needs should use
    /// the batch commands, which are atomic.
    pub fn execute_all(&mut self, requests: &[Request]) -> Result<Vec<Response>, ServiceError> {
        requests.iter().map(|r| self.execute(r)).collect()
    }

    fn session(&self, id: GraphId) -> Result<&Session, ServiceError> {
        self.sessions.get(&id).ok_or(ServiceError::UnknownGraph(id))
    }

    fn session_mut(&mut self, id: GraphId) -> Result<&mut Session, ServiceError> {
        self.sessions
            .get_mut(&id)
            .ok_or(ServiceError::UnknownGraph(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fourcycle_graph::Rel;

    fn square(id_base: u32) -> [LayeredUpdate; 4] {
        [
            LayeredUpdate::insert(Rel::A, id_base + 1, id_base + 2),
            LayeredUpdate::insert(Rel::B, id_base + 2, id_base + 3),
            LayeredUpdate::insert(Rel::C, id_base + 3, id_base + 4),
            LayeredUpdate::insert(Rel::D, id_base + 4, id_base + 1),
        ]
    }

    #[test]
    fn sessions_are_isolated_and_epoch_tracks_applied_updates() {
        let mut svc = CycleCountService::builder()
            .engine(EngineKind::Simple)
            .build();
        svc.create_session(GraphId(1)).unwrap();
        svc.create_session(GraphId(2)).unwrap();
        assert_eq!(
            svc.create_session(GraphId(1)),
            Err(ServiceError::GraphAlreadyExists(GraphId(1)))
        );

        for u in square(0) {
            svc.try_apply_layered(GraphId(1), u).unwrap();
        }
        let one = svc.snapshot(GraphId(1)).unwrap();
        let two = svc.snapshot(GraphId(2)).unwrap();
        assert_eq!((one.count, one.epoch, one.total_edges), (1, 4, 4));
        assert_eq!((two.count, two.epoch, two.total_edges), (0, 0, 0));

        // A rejected update advances nothing.
        assert_eq!(
            svc.try_apply_layered(GraphId(1), LayeredUpdate::insert(Rel::A, 1, 2)),
            Err(ServiceError::Update(UpdateError::DuplicateEdge))
        );
        assert_eq!(svc.epoch(GraphId(1)).unwrap(), 4);

        svc.drop_session(GraphId(2)).unwrap();
        assert_eq!(svc.ids(), vec![GraphId(1)]);
        assert_eq!(
            svc.count(GraphId(2)),
            Err(ServiceError::UnknownGraph(GraphId(2)))
        );
    }

    #[test]
    fn ids_are_sorted_regardless_of_creation_order() {
        let mut svc = CycleCountService::builder()
            .engine(EngineKind::Simple)
            .build();
        // Insert in a deliberately scrambled order (and with ids whose
        // hashes would interleave arbitrarily in a hash registry).
        for raw in [9, 2, 7, 1, 1 << 60, 4, 3] {
            svc.create_session(GraphId(raw)).unwrap();
        }
        let ids = svc.ids();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "ids() must return ascending ids");
        // The guarantee holds through drops too.
        svc.drop_session(GraphId(4)).unwrap();
        assert_eq!(svc.ids(), [1, 2, 3, 7, 9, 1 << 60].map(GraphId).to_vec());
    }

    #[test]
    fn service_error_sources_chain_to_the_core_verdict() {
        use std::error::Error;
        let update = ServiceError::Update(UpdateError::SelfLoop);
        let source = update.source().expect("update errors chain");
        assert_eq!(source.to_string(), UpdateError::SelfLoop.to_string());

        // Batch rejections chain two levels: service → batch → update.
        let batch = ServiceError::Batch(BatchError::at(3, UpdateError::MissingEdge));
        let mid = batch.source().expect("batch errors chain");
        assert!(mid.to_string().contains("#3"));
        let leaf = mid.source().expect("BatchError chains to UpdateError");
        assert_eq!(leaf.to_string(), UpdateError::MissingEdge.to_string());

        // Addressing errors have no underlying cause.
        assert!(ServiceError::UnknownGraph(GraphId(1)).source().is_none());
    }

    #[test]
    fn request_accessors_name_routing_key_and_update_count() {
        let id = GraphId(5);
        let batch = square(0).to_vec();
        assert_eq!(Request::ListGraphs.graph_id(), None);
        assert_eq!(Request::Count { id }.graph_id(), Some(id));
        assert_eq!(Request::Count { id }.update_count(), 0);
        assert_eq!(
            Request::ApplyLayered {
                id,
                update: batch[0]
            }
            .update_count(),
            1
        );
        assert_eq!(
            Request::ApplyLayeredBatch {
                id,
                updates: batch.clone()
            }
            .update_count(),
            4
        );
        assert_eq!(
            Request::ApplyGeneralBatch {
                id,
                updates: vec![GraphUpdate::insert(1, 2), GraphUpdate::insert(2, 3)],
            }
            .update_count(),
            2
        );
        for request in [
            Request::CreateGraph { id, spec: None },
            Request::DropGraph { id },
            Request::GetSnapshot { id },
        ] {
            assert_eq!(request.graph_id(), Some(id));
            assert_eq!(request.update_count(), 0);
        }
    }

    #[test]
    fn batches_are_atomic_with_index_attribution() {
        let mut svc = CycleCountService::builder()
            .engine(EngineKind::Threshold)
            .build();
        svc.create_session(GraphId(7)).unwrap();
        let mut batch = square(0).to_vec();
        batch.push(LayeredUpdate::insert(Rel::A, 1, 2)); // duplicate of #0
        let err = svc.try_apply_layered_batch(GraphId(7), &batch).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Batch(BatchError::at(4, UpdateError::DuplicateEdge))
        );
        // Atomic: nothing from the rejected batch landed.
        let snap = svc.snapshot(GraphId(7)).unwrap();
        assert_eq!((snap.count, snap.epoch, snap.total_edges), (0, 0, 0));

        batch.pop();
        assert_eq!(svc.try_apply_layered_batch(GraphId(7), &batch), Ok(1));
        assert_eq!(svc.epoch(GraphId(7)).unwrap(), 4);
    }

    #[test]
    fn modes_route_to_the_right_structure() {
        let mut svc = CycleCountService::new();
        let spec = |mode| SessionSpec {
            kind: EngineKind::Simple,
            config: EngineConfig::default(),
            mode,
        };
        svc.create_session_with(GraphId(1), spec(WorkloadMode::General))
            .unwrap();
        svc.create_session_with(GraphId(2), spec(WorkloadMode::Join))
            .unwrap();

        // General session: 4-cycle counting with self-loop rejection.
        for (u, v) in [(1, 2), (2, 3), (3, 4)] {
            svc.try_apply_general(GraphId(1), GraphUpdate::insert(u, v))
                .unwrap();
        }
        assert_eq!(
            svc.try_apply_general(GraphId(1), GraphUpdate::insert(4, 1)),
            Ok(1)
        );
        assert_eq!(
            svc.try_apply_general(GraphId(1), GraphUpdate::insert(5, 5)),
            Err(ServiceError::Update(UpdateError::SelfLoop))
        );

        // Join session accepts layered (tuple) updates.
        assert_eq!(
            svc.try_apply_layered(GraphId(2), LayeredUpdate::insert(Rel::A, 1, 2)),
            Ok(0)
        );

        // Cross-mode traffic is rejected with the session's mode.
        assert_eq!(
            svc.try_apply_layered(GraphId(1), LayeredUpdate::insert(Rel::A, 1, 2)),
            Err(ServiceError::ModeMismatch {
                id: GraphId(1),
                mode: WorkloadMode::General
            })
        );
        assert_eq!(
            svc.try_apply_general(GraphId(2), GraphUpdate::insert(1, 2)),
            Err(ServiceError::ModeMismatch {
                id: GraphId(2),
                mode: WorkloadMode::Join
            })
        );
    }

    #[test]
    fn execute_covers_the_whole_surface() {
        let mut svc = CycleCountService::builder()
            .engine(EngineKind::Simple)
            .build();
        let id = GraphId(3);
        let responses = svc
            .execute_all(&[
                Request::CreateGraph { id, spec: None },
                Request::ApplyLayeredBatch {
                    id,
                    updates: square(0).to_vec(),
                },
                Request::Count { id },
                Request::GetSnapshot { id },
                Request::ListGraphs,
                Request::DropGraph { id },
            ])
            .unwrap();
        assert_eq!(responses[0], Response::Created { id });
        assert_eq!(
            responses[1],
            Response::Applied {
                id,
                count: 1,
                epoch: 4
            }
        );
        assert_eq!(responses[2], Response::Count { id, count: 1 });
        match &responses[3] {
            Response::Snapshot { snapshot, .. } => assert_eq!(snapshot.epoch, 4),
            other => panic!("expected snapshot, got {other:?}"),
        }
        assert_eq!(responses[4], Response::Graphs { ids: vec![id] });
        assert_eq!(responses[5], Response::Dropped { id });
        assert!(svc.is_empty());
    }

    /// A detached session applies the same commands with the same
    /// responses (counts, epoch stamps, mode rejections) as in-registry
    /// execution, is invisible while out, and is whole again on reattach.
    #[test]
    fn detached_execution_matches_in_registry_execution() {
        let build = || {
            let mut svc = CycleCountService::builder()
                .engine(EngineKind::Simple)
                .build();
            svc.create_session(GraphId(1)).unwrap();
            svc.create_session(GraphId(2)).unwrap();
            svc
        };
        let commands = |id: GraphId| {
            vec![
                Request::ApplyLayeredBatch {
                    id,
                    updates: square(0).to_vec(),
                },
                Request::ApplyLayered {
                    id,
                    update: LayeredUpdate::insert(Rel::A, 9, 2),
                },
                Request::Count { id },
                Request::GetSnapshot { id },
                Request::ApplyGeneral {
                    id,
                    update: GraphUpdate::insert(1, 2),
                },
            ]
        };

        let mut reference = build();
        let expected: Vec<_> = commands(GraphId(1))
            .iter()
            .map(|r| reference.execute(r))
            .collect();

        let mut svc = build();
        let mut detached = svc.detach_session(GraphId(1)).unwrap();
        // Invisible while out: the id reads as unknown, double-detach fails.
        assert_eq!(
            svc.count(GraphId(1)),
            Err(ServiceError::UnknownGraph(GraphId(1)))
        );
        assert!(svc.detach_session(GraphId(1)).is_err());
        let got: Vec<_> = commands(GraphId(1))
            .iter()
            .map(|r| detached.execute(r))
            .collect();
        assert_eq!(got, expected);
        assert_eq!(detached.id(), GraphId(1));
        svc.reattach_session(detached);
        assert_eq!(
            svc.snapshot(GraphId(1)).unwrap(),
            reference.snapshot(GraphId(1)).unwrap()
        );
        // The untouched tenant never noticed.
        assert_eq!(svc.epoch(GraphId(2)).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "registry commands")]
    fn detached_sessions_reject_registry_commands() {
        let mut svc = CycleCountService::new();
        svc.create_session(GraphId(7)).unwrap();
        let mut detached = svc.detach_session(GraphId(7)).unwrap();
        let _ = detached.execute(&Request::DropGraph { id: GraphId(7) });
    }
}
