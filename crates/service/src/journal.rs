//! The journaling interface of the service layer.
//!
//! [`CycleCountService::execute`](crate::CycleCountService::execute) can
//! mirror every *successful mutating* [`Request`] into a [`JournalSink`]
//! before the response is handed back, so a command stream becomes durable
//! without the service knowing anything about files, fsync or recovery.
//! The service owns the *what* (which commands mutate state, what a
//! point-in-time state image looks like); the sink owns the *how*
//! (`fourcycle-store` appends rendered command lines to a per-shard
//! write-ahead journal and persists checkpoints).
//!
//! No sink is attached by default, and the journaling hook in `execute`
//! is a single `Option` check — single-threaded embedding and the benches
//! pay nothing unless they opt in.
//!
//! # Checkpoints
//!
//! A [`CheckpointImage`] is the service's own description of a consistent
//! point in time: for every session, the spec it was built from, its
//! epoch-stamped [`Snapshot`], and a command sequence
//! ([`SessionImage::state`]) that recreates the session's current edge
//! set from scratch. Replaying that sequence into an empty service and
//! then restoring each session's epoch (`CycleCountService::restore_epoch`)
//! reproduces `count`, `total_edges` and `epoch` exactly; the `work` and
//! `slow_path` fields of a snapshot are *path-dependent* costs and
//! legitimately differ after a checkpoint-based recovery (they are exact
//! again under full journal replay).

use crate::{GraphId, Request, SessionSpec};
use fourcycle_core::Snapshot;
use std::io;

/// Where the service mirrors successful mutating commands.
///
/// Implementations must be `Send`: the sharded runtime builds a journaled
/// service on the starting thread and moves it into a shard worker.
///
/// The contract, in call order per command:
/// 1. [`record`](Self::record) — called *after* the request was applied
///    successfully, exactly once per mutating command, in execution order.
///    An `Err` is surfaced to the caller as
///    [`ServiceError::Journal`](crate::ServiceError::Journal); the command's
///    effect stands (the response was already computed), so a failing sink
///    means the journal is missing suffix commands — callers that see a
///    journal error must treat the journal as no longer authoritative.
/// 2. [`checkpoint_due`](Self::checkpoint_due) — polled right after a
///    successful `record`; returning `true` makes the service assemble a
///    [`CheckpointImage`] and call [`write_checkpoint`](Self::write_checkpoint).
/// 3. [`sync`](Self::sync) — explicit durability barrier, called by
///    [`CycleCountService::sync_journal`](crate::CycleCountService::sync_journal)
///    (the shard workers invoke it on graceful shutdown).
pub trait JournalSink: Send {
    /// Appends one successful mutating request to the journal.
    fn record(&mut self, request: &Request) -> io::Result<()>;

    /// `true` if the sink wants a checkpoint now (e.g. N commands have been
    /// recorded since the last one). Default: never.
    fn checkpoint_due(&self) -> bool {
        false
    }

    /// Persists a point-in-time state image. Default: drop it (sinks that
    /// only journal need not checkpoint).
    fn write_checkpoint(&mut self, image: &CheckpointImage) -> io::Result<()> {
        let _ = image;
        Ok(())
    }

    /// Flushes and makes everything recorded so far durable.
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Group-commit durability barrier: makes every command recorded since
    /// the last fsync durable with **one** fsync and returns how many
    /// commands that covered. Drivers that batch concurrent commands (the
    /// sharded runtime's shard dispatcher) call this once per group, after
    /// the group's `record`s and *before* releasing any of the group's
    /// replies — preserving reply ⇒ journaled ⇒ durable at a fraction of
    /// the fsync count. Default: no-op (sinks whose `record` is already
    /// durable have nothing pending).
    fn commit_group(&mut self) -> io::Result<u64> {
        Ok(0)
    }

    /// Number of fsyncs the sink has issued so far (observability: the
    /// benches report commands-per-fsync). Default: 0 for sinks that do not
    /// track it.
    fn fsyncs(&self) -> u64 {
        0
    }
}

/// One session's exportable state at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionImage {
    /// The session's id.
    pub id: GraphId,
    /// The spec the session was built from. Note the text format renders
    /// only mode + engine; a non-default `EngineConfig` is restored from
    /// the recovering service's defaults, not from the journal.
    pub spec: SessionSpec,
    /// The session's consistent snapshot at image time.
    pub snapshot: Snapshot,
    /// Commands that recreate the session in an empty service: one
    /// `CreateGraph` carrying the spec, then batched re-inserts of the
    /// current edge set (relation by relation for layered/join sessions).
    /// Replaying them yields the snapshot's `count` and `total_edges`;
    /// pair with `restore_epoch` for the `epoch`.
    pub state: Vec<Request>,
}

/// A consistent point-in-time image of a whole service, session by session
/// (ascending id order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointImage {
    /// One image per live session, ascending by id.
    pub sessions: Vec<SessionImage>,
}
