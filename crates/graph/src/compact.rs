//! Vertex-id ↔ dense-index compaction.
//!
//! Vertex ids are caller-managed `u32`s with no density guarantee, but the
//! hot data structures of this workspace — adjacency rows, class-restricted
//! matrices — want dense `0..len` indices. The paper repeatedly notes that
//! restricting to non-zero-degree vertices "effectively reduces the
//! dimension for computational purposes" (§3.2); [`CompactIndex`] is that
//! reduction: a bijection between an arbitrary set of `u32` vertex ids and
//! the dense range `0..len`. It backs both the indexed adjacency rows of
//! [`crate::SignedAdjacency`] and the matrix extraction in
//! `fourcycle-matrix` (which re-exports this type).

use crate::VertexId;
use std::collections::HashMap;

/// A bijection between vertex ids and dense indices.
#[derive(Debug, Clone, Default)]
pub struct CompactIndex {
    to_index: HashMap<VertexId, usize>,
    to_vertex: Vec<VertexId>,
}

impl CompactIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index with room for `capacity` vertices.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            to_index: HashMap::with_capacity(capacity),
            to_vertex: Vec::with_capacity(capacity),
        }
    }

    /// Builds an index over the given vertices (duplicates are collapsed;
    /// insertion order determines indices).
    pub fn from_vertices(vertices: impl IntoIterator<Item = VertexId>) -> Self {
        let mut index = Self::new();
        for v in vertices {
            index.insert(v);
        }
        index
    }

    /// Inserts a vertex (no-op if already present) and returns its index.
    pub fn insert(&mut self, v: VertexId) -> usize {
        if let Some(&i) = self.to_index.get(&v) {
            return i;
        }
        let i = self.to_vertex.len();
        self.to_index.insert(v, i);
        self.to_vertex.push(v);
        i
    }

    /// Index of a vertex, if present.
    pub fn index_of(&self, v: VertexId) -> Option<usize> {
        self.to_index.get(&v).copied()
    }

    /// Vertex at a dense index.
    pub fn vertex_at(&self, i: usize) -> VertexId {
        self.to_vertex[i]
    }

    /// Number of vertices in the index.
    pub fn len(&self) -> usize {
        self.to_vertex.len()
    }

    /// `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.to_vertex.is_empty()
    }

    /// Iterates over `(index, vertex)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, VertexId)> + '_ {
        self.to_vertex.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut idx = CompactIndex::new();
        assert_eq!(idx.insert(42), 0);
        assert_eq!(idx.insert(7), 1);
        assert_eq!(idx.insert(42), 0, "reinsert returns existing index");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.index_of(7), Some(1));
        assert_eq!(idx.index_of(13), None);
        assert_eq!(idx.vertex_at(0), 42);
    }

    #[test]
    fn from_vertices_collapses_duplicates() {
        let idx = CompactIndex::from_vertices([5, 5, 9, 5, 1]);
        assert_eq!(idx.len(), 3);
        let pairs: Vec<_> = idx.iter().collect();
        assert_eq!(pairs, vec![(0, 5), (1, 9), (2, 1)]);
        assert!(!idx.is_empty());
        assert!(CompactIndex::new().is_empty());
    }

    #[test]
    fn with_capacity_starts_empty() {
        let idx = CompactIndex::with_capacity(32);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }
}
