//! 4-layered dynamic graphs (§2.1 of the paper).
//!
//! A 4-layered graph has vertex layers `L1, L2, L3, L4` and four edge
//! relations between consecutive layers:
//!
//! ```text
//!   A : L1 – L2      B : L2 – L3      C : L3 – L4      D : L4 – L1
//! ```
//!
//! A *layered 4-cycle* picks one vertex per layer and one edge per relation.
//! §2.2 reduces maintaining the number of layered 4-cycles to answering, for
//! each edge update, the number of layered 3-paths between the update's
//! endpoints through the other three relations; the engines in
//! `fourcycle-core` implement that query. This module provides the graph
//! itself together with brute-force counters used as oracles.

use crate::adjacency::BipartiteAdjacency;
use crate::update::{LayeredUpdate, UpdateOp};
use crate::VertexId;

/// One of the four vertex layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// First layer (left endpoint of `A`, right endpoint of `D`).
    L1,
    /// Second layer.
    L2,
    /// Third layer.
    L3,
    /// Fourth layer.
    L4,
}

impl Layer {
    /// All four layers in order.
    pub const ALL: [Layer; 4] = [Layer::L1, Layer::L2, Layer::L3, Layer::L4];

    /// The next layer in cyclic order (`L4 → L1`).
    pub fn next(self) -> Layer {
        match self {
            Layer::L1 => Layer::L2,
            Layer::L2 => Layer::L3,
            Layer::L3 => Layer::L4,
            Layer::L4 => Layer::L1,
        }
    }

    /// Index 0..=3 of the layer.
    pub fn index(self) -> usize {
        match self {
            Layer::L1 => 0,
            Layer::L2 => 1,
            Layer::L3 => 2,
            Layer::L4 => 3,
        }
    }
}

/// One of the four relation matrices of a layered graph.
///
/// `Rel::A` connects `L1–L2`, `Rel::B` connects `L2–L3`, `Rel::C` connects
/// `L3–L4` and `Rel::D` connects `L4–L1`. In the database reading (§1, Fig. 1)
/// these are the four binary relations of the cyclic join
/// `A(L1,L2) ⋈ B(L2,L3) ⋈ C(L3,L4) ⋈ D(L4,L1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rel {
    /// `L1 – L2`.
    A,
    /// `L2 – L3`.
    B,
    /// `L3 – L4`.
    C,
    /// `L4 – L1`.
    D,
}

impl Rel {
    /// All four relations in cyclic order.
    pub const ALL: [Rel; 4] = [Rel::A, Rel::B, Rel::C, Rel::D];

    /// Index 0..=3 of the relation.
    pub fn index(self) -> usize {
        match self {
            Rel::A => 0,
            Rel::B => 1,
            Rel::C => 2,
            Rel::D => 3,
        }
    }

    /// Relation with the given index modulo 4.
    pub fn from_index(i: usize) -> Rel {
        Rel::ALL[i % 4]
    }

    /// The layer holding the "left" endpoints of this relation.
    pub fn left_layer(self) -> Layer {
        match self {
            Rel::A => Layer::L1,
            Rel::B => Layer::L2,
            Rel::C => Layer::L3,
            Rel::D => Layer::L4,
        }
    }

    /// The layer holding the "right" endpoints of this relation.
    pub fn right_layer(self) -> Layer {
        self.left_layer().next()
    }

    /// The next relation in cyclic order (`D → A`).
    pub fn next(self) -> Rel {
        Rel::from_index(self.index() + 1)
    }
}

/// A fully dynamic 4-layered graph.
///
/// Edges carry no weight here: the graph is simple, and an edge either exists
/// or does not. Signed/phase-tagged views are built on top of this type by
/// the engines.
#[derive(Debug, Clone, Default)]
pub struct LayeredGraph {
    rels: [BipartiteAdjacency; 4],
}

impl LayeredGraph {
    /// Creates an empty layered graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The adjacency of one relation.
    pub fn rel(&self, rel: Rel) -> &BipartiteAdjacency {
        &self.rels[rel.index()]
    }

    /// Whether the edge `(left, right)` of `rel` currently exists.
    pub fn has_edge(&self, rel: Rel, left: VertexId, right: VertexId) -> bool {
        self.rel(rel).contains(left, right)
    }

    /// Number of edges in one relation.
    pub fn edge_count(&self, rel: Rel) -> usize {
        self.rel(rel).len()
    }

    /// Total number of edges over all four relations (the paper's `m`).
    pub fn total_edges(&self) -> usize {
        Rel::ALL.iter().map(|&r| self.edge_count(r)).sum()
    }

    /// Inserts an edge. Returns `false` (and changes nothing) if it already
    /// exists.
    pub fn insert(&mut self, rel: Rel, left: VertexId, right: VertexId) -> bool {
        if self.has_edge(rel, left, right) {
            return false;
        }
        self.rels[rel.index()].add(left, right, 1);
        true
    }

    /// Deletes an edge. Returns `false` (and changes nothing) if it does not
    /// exist.
    pub fn delete(&mut self, rel: Rel, left: VertexId, right: VertexId) -> bool {
        if !self.has_edge(rel, left, right) {
            return false;
        }
        self.rels[rel.index()].add(left, right, -1);
        true
    }

    /// Applies an update; returns `true` if the graph changed.
    pub fn apply(&mut self, update: &LayeredUpdate) -> bool {
        match update.op {
            UpdateOp::Insert => self.insert(update.rel, update.left, update.right),
            UpdateOp::Delete => self.delete(update.rel, update.left, update.right),
        }
    }

    /// Degree of a vertex of `L1` in `A` (its class-defining degree, §4).
    pub fn degree_l1(&self, v: VertexId) -> usize {
        self.rel(Rel::A).degree_left(v)
    }

    /// Degree of a vertex of `L4` in `C` (its class-defining degree, §4).
    pub fn degree_l4(&self, v: VertexId) -> usize {
        self.rel(Rel::C).degree_right(v)
    }

    /// Combined degree of a vertex of `L2` in `A` and `B` (§4).
    pub fn degree_l2(&self, v: VertexId) -> usize {
        self.rel(Rel::A).degree_right(v) + self.rel(Rel::B).degree_left(v)
    }

    /// Combined degree of a vertex of `L3` in `B` and `C` (§4).
    pub fn degree_l3(&self, v: VertexId) -> usize {
        self.rel(Rel::B).degree_right(v) + self.rel(Rel::C).degree_left(v)
    }

    /// Brute-force count of layered 4-cycles (one vertex per layer, one edge
    /// per relation). Test oracle; cost is the number of layered 3-paths.
    pub fn count_layered_4cycles_brute_force(&self) -> i64 {
        let a = self.rel(Rel::A);
        let b = self.rel(Rel::B);
        let c = self.rel(Rel::C);
        let d = self.rel(Rel::D);
        let mut total = 0i64;
        for (v1, v2, _) in a.iter() {
            for (v3, _) in b.neighbors_of_left(v2) {
                for (v4, _) in c.neighbors_of_left(v3) {
                    if d.contains(v4, v1) {
                        total += 1;
                    }
                }
            }
        }
        total
    }

    /// Brute-force count of layered 3-paths `u –A– x –B– y –C– v` with
    /// `u ∈ L1`, `v ∈ L4`. Test oracle for the engines' query.
    pub fn count_3paths_brute_force(&self, u: VertexId, v: VertexId) -> i64 {
        let a = self.rel(Rel::A);
        let b = self.rel(Rel::B);
        let c = self.rel(Rel::C);
        let mut total = 0i64;
        for (x, _) in a.neighbors_of_left(u) {
            for (y, _) in b.neighbors_of_left(x) {
                if c.contains(y, v) {
                    total += 1;
                }
            }
        }
        total
    }

    /// Brute-force count of layered 2-paths `u –A– x –B– y` between `u ∈ L1`
    /// and `y ∈ L3` (the "wedges" of §2.1 / Fig. 1).
    pub fn count_wedges_ab_brute_force(&self, u: VertexId, y: VertexId) -> i64 {
        let a = self.rel(Rel::A);
        let b = self.rel(Rel::B);
        let paths = a
            .neighbors_of_left(u)
            .filter(|&(x, _)| b.contains(x, y))
            .count();
        i64::try_from(paths).unwrap_or(i64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_cycle() -> LayeredGraph {
        // One layered 4-cycle: 1 ∈ L1, 2 ∈ L2, 3 ∈ L3, 4 ∈ L4.
        let mut g = LayeredGraph::new();
        assert!(g.insert(Rel::A, 1, 2));
        assert!(g.insert(Rel::B, 2, 3));
        assert!(g.insert(Rel::C, 3, 4));
        assert!(g.insert(Rel::D, 4, 1));
        g
    }

    #[test]
    fn rel_layer_geometry() {
        assert_eq!(Rel::A.left_layer(), Layer::L1);
        assert_eq!(Rel::A.right_layer(), Layer::L2);
        assert_eq!(Rel::D.left_layer(), Layer::L4);
        assert_eq!(Rel::D.right_layer(), Layer::L1);
        assert_eq!(Rel::D.next(), Rel::A);
        assert_eq!(Layer::L4.next(), Layer::L1);
    }

    #[test]
    fn single_cycle_is_counted() {
        let g = square_cycle();
        assert_eq!(g.count_layered_4cycles_brute_force(), 1);
        assert_eq!(g.count_3paths_brute_force(1, 4), 1);
        assert_eq!(g.total_edges(), 4);
    }

    #[test]
    fn insert_is_idempotent_and_delete_reverses() {
        let mut g = square_cycle();
        assert!(!g.insert(Rel::A, 1, 2));
        assert_eq!(g.total_edges(), 4);
        assert!(g.delete(Rel::B, 2, 3));
        assert!(!g.delete(Rel::B, 2, 3));
        assert_eq!(g.count_layered_4cycles_brute_force(), 0);
    }

    #[test]
    fn degrees_and_combined_degrees() {
        let mut g = square_cycle();
        g.insert(Rel::A, 1, 20);
        g.insert(Rel::B, 20, 3);
        assert_eq!(g.degree_l1(1), 2);
        assert_eq!(g.degree_l2(2), 2); // one A edge + one B edge
        assert_eq!(g.degree_l2(20), 2);
        assert_eq!(g.degree_l3(3), 3); // two B edges + one C edge
        assert_eq!(g.degree_l4(4), 1);
    }

    #[test]
    fn two_parallel_wedges_make_two_cycles() {
        // u ∈ L1 and v ∈ L4 joined by two A–B wedges and one C edge each:
        // cycles are (1,2,3,4) and (1,5,6,4).
        let mut g = LayeredGraph::new();
        g.insert(Rel::A, 1, 2);
        g.insert(Rel::B, 2, 3);
        g.insert(Rel::C, 3, 4);
        g.insert(Rel::A, 1, 5);
        g.insert(Rel::B, 5, 6);
        g.insert(Rel::C, 6, 4);
        g.insert(Rel::D, 4, 1);
        assert_eq!(g.count_3paths_brute_force(1, 4), 2);
        assert_eq!(g.count_layered_4cycles_brute_force(), 2);
        assert_eq!(g.count_wedges_ab_brute_force(1, 3), 1);
        assert_eq!(g.count_wedges_ab_brute_force(1, 6), 1);
    }
}
