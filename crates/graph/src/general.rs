//! General (simple, undirected) dynamic graphs and the §8 reduction.
//!
//! Theorem 1 is stated for general graphs; §8 shows the problem is
//! equivalent to the layered problem by placing a copy of the vertex set in
//! each layer and replicating every edge into all four relations. This module
//! provides the general graph itself, brute-force 4-cycle/3-path oracles, and
//! the replication helper used by `fourcycle-core::general`.

use crate::adjacency::SignedAdjacency;
use crate::layered::{LayeredGraph, Rel};
use crate::update::{GraphUpdate, UpdateOp};
use crate::VertexId;
use std::collections::HashMap;

/// A fully dynamic simple undirected graph (no self-loops, no multi-edges).
///
/// Backed by the same indexed adjacency rows as the layered structures
/// (each undirected edge is stored in both orientations with weight 1), so
/// neighbor iteration — the inner loop of the triangle counter and the
/// brute-force oracles — is a flat scan.
#[derive(Debug, Clone, Default)]
pub struct GeneralGraph {
    adj: SignedAdjacency,
    edges: usize,
}

impl GeneralGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of vertices with at least one incident edge.
    pub fn active_vertices(&self) -> usize {
        self.adj.left_vertices().count()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj.degree(v)
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj.contains(u, v)
    }

    /// Iterates over the neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj.neighbors(v).map(|(n, _)| n)
    }

    /// Iterates over all edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adj
            .iter()
            .filter(|&(u, v, _)| u < v)
            .map(|(u, v, _)| (u, v))
    }

    /// Inserts `{u, v}`. Returns `false` for self-loops or existing edges.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.adj.add(u, v, 1);
        self.adj.add(v, u, 1);
        self.edges += 1;
        true
    }

    /// Deletes `{u, v}`. Returns `false` if the edge is absent.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        self.adj.add(u, v, -1);
        self.adj.add(v, u, -1);
        self.edges -= 1;
        true
    }

    /// Applies an update; returns `true` if the graph changed.
    pub fn apply(&mut self, update: &GraphUpdate) -> bool {
        match update.op {
            UpdateOp::Insert => self.insert(update.u, update.v),
            UpdateOp::Delete => self.delete(update.u, update.v),
        }
    }

    /// Brute-force number of (unordered, simple) 4-cycles.
    ///
    /// Uses the classical codegree identity: every 4-cycle contributes
    /// exactly one pair of opposite corners twice, so
    /// `#C4 = ½ · Σ_{u<v} C(codeg(u,v), 2)`.
    pub fn count_4cycles_brute_force(&self) -> i64 {
        let mut codeg: HashMap<(VertexId, VertexId), i64> = HashMap::new();
        for x in self.adj.left_vertices() {
            // Rows iterate in neighbor-id order, so the pairs come out
            // canonically ordered already.
            let ns: Vec<VertexId> = self.neighbors(x).collect();
            for i in 0..ns.len() {
                for j in (i + 1)..ns.len() {
                    *codeg.entry((ns[i], ns[j])).or_insert(0) += 1;
                }
            }
        }
        let twice: i64 = codeg.values().map(|&w| w * (w - 1) / 2).sum();
        debug_assert_eq!(twice % 2, 0, "each 4-cycle must be counted twice");
        twice / 2
    }

    /// Brute-force number of simple 3-paths (paths with 3 edges) between `u`
    /// and `v` that avoid the edge `{u, v}` itself. This equals the number of
    /// 4-cycles through `{u, v}` once that edge is present (Appendix A).
    pub fn count_3paths_brute_force(&self, u: VertexId, v: VertexId) -> i64 {
        let mut total = 0i64;
        for x in self.neighbors(u) {
            if x == v {
                continue;
            }
            for y in self.neighbors(x) {
                if y == u || y == v {
                    continue;
                }
                if self.has_edge(y, v) {
                    total += 1;
                }
            }
        }
        total
    }

    /// Brute-force triangle count (used by the triangle-baseline module).
    pub fn count_triangles_brute_force(&self) -> i64 {
        let mut total = 0i64;
        for (u, v) in self.edges() {
            for w in self.neighbors(u) {
                if w > v && self.has_edge(v, w) {
                    total += 1;
                }
            }
        }
        total
    }

    /// Builds the 4-layered replication of §8: each layer holds a copy of the
    /// vertex set and every edge `{u, v}` appears in all four relations (in
    /// both orientations, since the relations are bipartite and the original
    /// edge is undirected).
    pub fn to_layered(&self) -> LayeredGraph {
        let mut layered = LayeredGraph::new();
        for (u, v) in self.edges() {
            for rel in Rel::ALL {
                layered.insert(rel, u, v);
                layered.insert(rel, v, u);
            }
        }
        layered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c4() -> GeneralGraph {
        let mut g = GeneralGraph::new();
        g.insert(1, 2);
        g.insert(2, 3);
        g.insert(3, 4);
        g.insert(4, 1);
        g
    }

    #[test]
    fn basic_mutation_rules() {
        let mut g = GeneralGraph::new();
        assert!(g.insert(1, 2));
        assert!(!g.insert(1, 2));
        assert!(!g.insert(2, 1), "undirected duplicate");
        assert!(!g.insert(3, 3), "no self loops");
        assert_eq!(g.edge_count(), 1);
        assert!(g.delete(2, 1));
        assert!(!g.delete(1, 2));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn four_cycle_counting_small_cases() {
        assert_eq!(c4().count_4cycles_brute_force(), 1);

        // K4 has 3 distinct 4-cycles.
        let mut k4 = GeneralGraph::new();
        for u in 1..=4u32 {
            for v in (u + 1)..=4 {
                k4.insert(u, v);
            }
        }
        assert_eq!(k4.count_4cycles_brute_force(), 3);

        // K_{2,3} has C(2,2)*C(3,2) = 3 distinct 4-cycles.
        let mut k23 = GeneralGraph::new();
        for u in [1u32, 2] {
            for v in [10u32, 11, 12] {
                k23.insert(u, v);
            }
        }
        assert_eq!(k23.count_4cycles_brute_force(), 3);

        // A triangle has none.
        let mut tri = GeneralGraph::new();
        tri.insert(1, 2);
        tri.insert(2, 3);
        tri.insert(3, 1);
        assert_eq!(tri.count_4cycles_brute_force(), 0);
        assert_eq!(tri.count_triangles_brute_force(), 1);
    }

    #[test]
    fn three_paths_exclude_endpoints_and_direct_edge() {
        let g = c4();
        // Between 1 and 2 (adjacent): the only 3-path is 1-4-3-2.
        assert_eq!(g.count_3paths_brute_force(1, 2), 1);
        // Between opposite corners 1 and 3 there is no 3-path in C4
        // (both paths have length 2).
        assert_eq!(g.count_3paths_brute_force(1, 3), 0);
    }

    #[test]
    fn layered_replication_counts_closed_walks() {
        // The layered replication of §8 turns *closed 4-walks* of the general
        // graph into layered 4-cycles (degenerate walks such as u→v→u→v are
        // legal layered cycles because the copies live in different layers).
        // The classical identity  #C4 = (walks − 2m − 2·Σ deg(deg−1)) / 8
        // therefore relates the two counts; the per-update algorithm of §8
        // instead relies on Claim 8.1, which needs the (u,v) edge to be
        // absent from A, B, C at query time.
        for g in [c4(), {
            let mut k4 = GeneralGraph::new();
            for u in 1..=4u32 {
                for v in (u + 1)..=4 {
                    k4.insert(u, v);
                }
            }
            k4
        }] {
            let layered = g.to_layered();
            let walks = layered.count_layered_4cycles_brute_force();
            let m = g.edge_count() as i64;
            let deg_term: i64 = (1..=4u32)
                .map(|v| {
                    let d = g.degree(v) as i64;
                    d * (d - 1)
                })
                .sum();
            assert_eq!(
                g.count_4cycles_brute_force(),
                (walks - 2 * m - 2 * deg_term) / 8
            );
        }
        assert_eq!(c4().to_layered().total_edges(), 4 * 2 * 4);
    }

    #[test]
    fn layered_replication_three_paths_match_claim_8_1() {
        // Claim 8.1: walks of length 3 in the layered graph from u ∈ L1 to
        // v ∈ L4 equal simple 3-paths in the general graph, provided the edge
        // (u,v) is absent from A, B, C.
        let mut g = GeneralGraph::new();
        g.insert(1, 2);
        g.insert(2, 3);
        g.insert(3, 4);
        // No (1,4) edge yet: counting 3-paths 1⇝4.
        let layered = g.to_layered();
        assert_eq!(
            layered.count_3paths_brute_force(1, 4),
            g.count_3paths_brute_force(1, 4)
        );
        assert_eq!(g.count_3paths_brute_force(1, 4), 1);
    }
}
