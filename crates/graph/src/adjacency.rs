//! Signed adjacency structures.
//!
//! Every data structure in the paper is a (multi)linear function of *signed*
//! edge multisets: the "negative edge" trick of §3.3 represents a deletion of
//! an edge that was inserted in an earlier chunk/phase as a `-1` entry in the
//! later one. [`SignedAdjacency`] and [`BipartiteAdjacency`] therefore store
//! an `i64` weight per vertex pair; for the *current* graph the weights are
//! always `0` or `1`, while phase-restricted edge sets in `fourcycle-core`
//! may legitimately hold negative weights.

use crate::VertexId;
use std::collections::HashMap;

/// A signed directed adjacency map from left vertices to right vertices.
///
/// Entries with weight `0` are removed eagerly so that `degree` and neighbor
/// iteration only ever see "real" entries.
#[derive(Debug, Clone, Default)]
pub struct SignedAdjacency {
    out: HashMap<VertexId, HashMap<VertexId, i64>>,
    /// Total number of (pair, weight != 0) entries.
    entries: usize,
    /// Sum of absolute weights (number of signed edge events still live).
    total_weight_abs: i64,
}

impl SignedAdjacency {
    /// Creates an empty adjacency.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the weight of the pair `(u, v)`.
    ///
    /// Returns the new weight.
    pub fn add(&mut self, u: VertexId, v: VertexId, delta: i64) -> i64 {
        if delta == 0 {
            return self.weight(u, v);
        }
        let row = self.out.entry(u).or_default();
        let entry = row.entry(v).or_insert(0);
        let old = *entry;
        *entry += delta;
        let new = *entry;
        self.total_weight_abs += new.abs() - old.abs();
        if new == 0 {
            row.remove(&v);
            if row.is_empty() {
                self.out.remove(&u);
            }
            self.entries -= 1;
        } else if old == 0 {
            self.entries += 1;
        }
        new
    }

    /// Current weight of the pair `(u, v)` (0 if absent).
    pub fn weight(&self, u: VertexId, v: VertexId) -> i64 {
        self.out
            .get(&u)
            .and_then(|row| row.get(&v).copied())
            .unwrap_or(0)
    }

    /// `true` if the pair has non-zero weight.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.weight(u, v) != 0
    }

    /// Number of non-zero pairs stored.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// `true` if no non-zero pair is stored.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of non-zero entries in the row of `u` (its out-degree).
    pub fn degree(&self, u: VertexId) -> usize {
        self.out.get(&u).map_or(0, |row| row.len())
    }

    /// Sum of absolute weights over all pairs.
    pub fn total_weight_abs(&self) -> i64 {
        self.total_weight_abs
    }

    /// Iterates over `(neighbor, weight)` pairs of `u`.
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = (VertexId, i64)> + '_ {
        self.out
            .get(&u)
            .into_iter()
            .flat_map(|row| row.iter().map(|(&v, &w)| (v, w)))
    }

    /// Iterates over all `(u, v, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, i64)> + '_ {
        self.out
            .iter()
            .flat_map(|(&u, row)| row.iter().map(move |(&v, &w)| (u, v, w)))
    }

    /// Iterates over the left vertices that currently have at least one
    /// non-zero entry.
    pub fn left_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.out.keys().copied()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.out.clear();
        self.entries = 0;
        self.total_weight_abs = 0;
    }
}

/// A signed bipartite adjacency indexed from both sides.
///
/// This is the representation of one relation matrix (`A`, `B`, `C` or `D`)
/// of a [`crate::LayeredGraph`]: `left → right` and `right → left` maps are
/// kept in sync so that both "iterate over the neighbors of a left vertex"
/// and "iterate over the neighbors of a right vertex" are cheap, which is
/// what the maintenance claims of §3.2/§5.2 rely on.
#[derive(Debug, Clone, Default)]
pub struct BipartiteAdjacency {
    forward: SignedAdjacency,
    backward: SignedAdjacency,
}

impl BipartiteAdjacency {
    /// Creates an empty bipartite adjacency.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the weight of `(left, right)`; returns the new weight.
    pub fn add(&mut self, left: VertexId, right: VertexId, delta: i64) -> i64 {
        self.backward.add(right, left, delta);
        self.forward.add(left, right, delta)
    }

    /// Weight of `(left, right)`.
    pub fn weight(&self, left: VertexId, right: VertexId) -> i64 {
        self.forward.weight(left, right)
    }

    /// `true` if `(left, right)` has non-zero weight.
    pub fn contains(&self, left: VertexId, right: VertexId) -> bool {
        self.forward.contains(left, right)
    }

    /// Number of non-zero pairs.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Out-degree of a left vertex (number of distinct right neighbors).
    pub fn degree_left(&self, left: VertexId) -> usize {
        self.forward.degree(left)
    }

    /// Out-degree of a right vertex (number of distinct left neighbors).
    pub fn degree_right(&self, right: VertexId) -> usize {
        self.backward.degree(right)
    }

    /// `(neighbor, weight)` pairs of a left vertex.
    pub fn neighbors_of_left(&self, left: VertexId) -> impl Iterator<Item = (VertexId, i64)> + '_ {
        self.forward.neighbors(left)
    }

    /// `(neighbor, weight)` pairs of a right vertex.
    pub fn neighbors_of_right(
        &self,
        right: VertexId,
    ) -> impl Iterator<Item = (VertexId, i64)> + '_ {
        self.backward.neighbors(right)
    }

    /// All `(left, right, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, i64)> + '_ {
        self.forward.iter()
    }

    /// Left vertices with at least one non-zero entry.
    pub fn left_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.forward.left_vertices()
    }

    /// Right vertices with at least one non-zero entry.
    pub fn right_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.backward.left_vertices()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.forward.clear();
        self.backward.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_adjacency_add_and_cancel() {
        let mut adj = SignedAdjacency::new();
        assert_eq!(adj.add(1, 2, 1), 1);
        assert_eq!(adj.add(1, 2, 1), 2);
        assert_eq!(adj.len(), 1);
        assert_eq!(adj.degree(1), 1);
        assert_eq!(adj.add(1, 2, -2), 0);
        assert_eq!(adj.len(), 0);
        assert_eq!(adj.degree(1), 0);
        assert!(adj.is_empty());
    }

    #[test]
    fn signed_adjacency_negative_weights() {
        let mut adj = SignedAdjacency::new();
        adj.add(3, 4, -1);
        assert_eq!(adj.weight(3, 4), -1);
        assert_eq!(adj.total_weight_abs(), 1);
        assert!(adj.contains(3, 4));
        adj.add(3, 4, 1);
        assert!(!adj.contains(3, 4));
        assert_eq!(adj.total_weight_abs(), 0);
    }

    #[test]
    fn signed_adjacency_iteration() {
        let mut adj = SignedAdjacency::new();
        adj.add(1, 2, 1);
        adj.add(1, 3, 1);
        adj.add(2, 3, -1);
        let mut triples: Vec<_> = adj.iter().collect();
        triples.sort_unstable();
        assert_eq!(triples, vec![(1, 2, 1), (1, 3, 1), (2, 3, -1)]);
        let mut nbrs: Vec<_> = adj.neighbors(1).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(2, 1), (3, 1)]);
        let mut lefts: Vec<_> = adj.left_vertices().collect();
        lefts.sort_unstable();
        assert_eq!(lefts, vec![1, 2]);
    }

    #[test]
    fn bipartite_adjacency_sides_stay_in_sync() {
        let mut adj = BipartiteAdjacency::new();
        adj.add(1, 10, 1);
        adj.add(2, 10, 1);
        adj.add(1, 11, 1);
        assert_eq!(adj.degree_left(1), 2);
        assert_eq!(adj.degree_right(10), 2);
        assert_eq!(adj.weight(2, 10), 1);
        let mut nbrs: Vec<_> = adj.neighbors_of_right(10).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(1, 1), (2, 1)]);
        adj.add(1, 10, -1);
        assert_eq!(adj.degree_left(1), 1);
        assert_eq!(adj.degree_right(10), 1);
    }

    #[test]
    fn bipartite_clear() {
        let mut adj = BipartiteAdjacency::new();
        adj.add(1, 1, 1);
        adj.add(2, 2, 1);
        adj.clear();
        assert!(adj.is_empty());
        assert_eq!(adj.degree_left(1), 0);
        assert_eq!(adj.degree_right(2), 0);
    }
}
