//! Signed adjacency structures.
//!
//! Every data structure in the paper is a (multi)linear function of *signed*
//! edge multisets: the "negative edge" trick of §3.3 represents a deletion of
//! an edge that was inserted in an earlier chunk/phase as a `-1` entry in the
//! later one. [`SignedAdjacency`] and [`BipartiteAdjacency`] therefore store
//! an `i64` weight per vertex pair; for the *current* graph the weights are
//! always `0` or `1`, while phase-restricted edge sets in `fourcycle-core`
//! may legitimately hold negative weights.
//!
//! # Representation
//!
//! Rows are *indexed*, not nested hash maps: left vertices are interned into
//! dense ids through a [`CompactIndex`] and each row is a flat `Vec` of
//! `(neighbor, weight)` entries kept sorted by neighbor id. Row iteration —
//! the inner loop of every maintenance rule and query — is therefore a
//! contiguous scan instead of a hash-bucket walk, and point lookups are a
//! binary search in a row that is typically short. The interner and the row
//! allocations survive [`SignedAdjacency::clear`], so the era rebuilds of the
//! engines re-populate warm buffers instead of re-hashing every vertex.

use crate::compact::CompactIndex;
use crate::VertexId;

/// A signed directed adjacency map from left vertices to right vertices.
///
/// Entries with weight `0` are removed eagerly so that `degree` and neighbor
/// iteration only ever see "real" entries.
#[derive(Debug, Clone, Default)]
pub struct SignedAdjacency {
    /// Left-vertex interner; a vertex keeps its slot for the structure's
    /// lifetime (rows may become empty but are never forgotten).
    index: CompactIndex,
    /// `rows[slot]` holds the `(neighbor, weight)` entries of the left
    /// vertex at `slot`, sorted by neighbor id, no zero weights.
    rows: Vec<Vec<(VertexId, i64)>>,
    /// Total number of (pair, weight != 0) entries.
    entries: usize,
    /// Sum of absolute weights (number of signed edge events still live).
    total_weight_abs: i64,
}

impl SignedAdjacency {
    /// Creates an empty adjacency.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty adjacency with interner/row capacity for roughly
    /// `rows` distinct left vertices.
    pub fn with_capacity(rows: usize) -> Self {
        Self {
            index: CompactIndex::with_capacity(rows),
            rows: Vec::with_capacity(rows),
            entries: 0,
            total_weight_abs: 0,
        }
    }

    /// Adds `delta` to the weight of the pair `(u, v)`.
    ///
    /// Returns the new weight.
    pub fn add(&mut self, u: VertexId, v: VertexId, delta: i64) -> i64 {
        if delta == 0 {
            return self.weight(u, v);
        }
        let slot = self.index.insert(u);
        if slot == self.rows.len() {
            self.rows.push(Vec::new());
        }
        let row = &mut self.rows[slot];
        match row.binary_search_by_key(&v, |&(n, _)| n) {
            Ok(pos) => {
                let old = row[pos].1;
                let new = old + delta;
                self.total_weight_abs += new.abs() - old.abs();
                if new == 0 {
                    row.remove(pos);
                    self.entries -= 1;
                } else {
                    row[pos].1 = new;
                }
                new
            }
            Err(pos) => {
                row.insert(pos, (v, delta));
                self.total_weight_abs += delta.abs();
                self.entries += 1;
                delta
            }
        }
    }

    fn row(&self, u: VertexId) -> Option<&[(VertexId, i64)]> {
        self.index
            .index_of(u)
            .map(|slot| self.rows[slot].as_slice())
    }

    /// Current weight of the pair `(u, v)` (0 if absent).
    pub fn weight(&self, u: VertexId, v: VertexId) -> i64 {
        self.row(u)
            .and_then(|row| {
                row.binary_search_by_key(&v, |&(n, _)| n)
                    .ok()
                    .map(|pos| row[pos].1)
            })
            .unwrap_or(0)
    }

    /// `true` if the pair has non-zero weight.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.weight(u, v) != 0
    }

    /// Number of non-zero pairs stored.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// `true` if no non-zero pair is stored.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of non-zero entries in the row of `u` (its out-degree).
    pub fn degree(&self, u: VertexId) -> usize {
        self.row(u).map_or(0, |row| row.len())
    }

    /// Sum of absolute weights over all pairs.
    pub fn total_weight_abs(&self) -> i64 {
        self.total_weight_abs
    }

    /// Iterates over `(neighbor, weight)` pairs of `u` in neighbor-id order.
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = (VertexId, i64)> + '_ {
        self.row(u).unwrap_or_default().iter().copied()
    }

    /// Iterates over all `(u, v, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, i64)> + '_ {
        self.rows.iter().enumerate().flat_map(move |(slot, row)| {
            let u = self.index.vertex_at(slot);
            row.iter().map(move |&(v, w)| (u, v, w))
        })
    }

    /// Iterates over the left vertices that currently have at least one
    /// non-zero entry.
    pub fn left_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| !row.is_empty())
            .map(|(slot, _)| self.index.vertex_at(slot))
    }

    /// Removes every entry. The vertex interner and row allocations are
    /// retained, so re-populating after a clear (the engines' era rebuilds)
    /// reuses warm buffers.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
        self.entries = 0;
        self.total_weight_abs = 0;
    }

    /// Drops the interner slots and row allocations of vertices whose rows
    /// are currently empty, re-interning only the live ones.
    ///
    /// Interner slots otherwise persist for the structure's lifetime, so on
    /// unbounded id streams (sliding windows, ever-fresh tuple ids) memory
    /// would grow with the vertices *ever seen* rather than the live graph.
    /// Callers with a natural amortization point — the engines' era
    /// rebuilds, a periodic maintenance tick — call this there; cost is
    /// `O(slots)`.
    pub fn compact(&mut self) {
        if self.rows.iter().all(|row| !row.is_empty()) {
            return;
        }
        let mut index = CompactIndex::with_capacity(self.rows.len());
        let mut rows = Vec::with_capacity(self.rows.len());
        for (slot, row) in self.rows.iter_mut().enumerate() {
            if !row.is_empty() {
                index.insert(self.index.vertex_at(slot));
                rows.push(std::mem::take(row));
            }
        }
        self.index = index;
        self.rows = rows;
    }
}

/// A signed bipartite adjacency indexed from both sides.
///
/// This is the representation of one relation matrix (`A`, `B`, `C` or `D`)
/// of a [`crate::LayeredGraph`]: `left → right` and `right → left` maps are
/// kept in sync so that both "iterate over the neighbors of a left vertex"
/// and "iterate over the neighbors of a right vertex" are cheap, which is
/// what the maintenance claims of §3.2/§5.2 rely on.
#[derive(Debug, Clone, Default)]
pub struct BipartiteAdjacency {
    forward: SignedAdjacency,
    backward: SignedAdjacency,
}

impl BipartiteAdjacency {
    /// Creates an empty bipartite adjacency.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bipartite adjacency sized for roughly `rows`
    /// distinct vertices per side.
    pub fn with_capacity(rows: usize) -> Self {
        Self {
            forward: SignedAdjacency::with_capacity(rows),
            backward: SignedAdjacency::with_capacity(rows),
        }
    }

    /// Adds `delta` to the weight of `(left, right)`; returns the new weight.
    pub fn add(&mut self, left: VertexId, right: VertexId, delta: i64) -> i64 {
        self.backward.add(right, left, delta);
        self.forward.add(left, right, delta)
    }

    /// Weight of `(left, right)`.
    pub fn weight(&self, left: VertexId, right: VertexId) -> i64 {
        self.forward.weight(left, right)
    }

    /// `true` if `(left, right)` has non-zero weight.
    pub fn contains(&self, left: VertexId, right: VertexId) -> bool {
        self.forward.contains(left, right)
    }

    /// Number of non-zero pairs.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Out-degree of a left vertex (number of distinct right neighbors).
    pub fn degree_left(&self, left: VertexId) -> usize {
        self.forward.degree(left)
    }

    /// Out-degree of a right vertex (number of distinct left neighbors).
    pub fn degree_right(&self, right: VertexId) -> usize {
        self.backward.degree(right)
    }

    /// `(neighbor, weight)` pairs of a left vertex.
    pub fn neighbors_of_left(&self, left: VertexId) -> impl Iterator<Item = (VertexId, i64)> + '_ {
        self.forward.neighbors(left)
    }

    /// `(neighbor, weight)` pairs of a right vertex.
    pub fn neighbors_of_right(
        &self,
        right: VertexId,
    ) -> impl Iterator<Item = (VertexId, i64)> + '_ {
        self.backward.neighbors(right)
    }

    /// All `(left, right, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, i64)> + '_ {
        self.forward.iter()
    }

    /// Left vertices with at least one non-zero entry.
    pub fn left_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.forward.left_vertices()
    }

    /// Right vertices with at least one non-zero entry.
    pub fn right_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.backward.left_vertices()
    }

    /// Removes every entry (retaining interners and row allocations).
    pub fn clear(&mut self) {
        self.forward.clear();
        self.backward.clear();
    }

    /// Reclaims interner slots of vertices with no live entries on either
    /// side (see [`SignedAdjacency::compact`]).
    pub fn compact(&mut self) {
        self.forward.compact();
        self.backward.compact();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_adjacency_add_and_cancel() {
        let mut adj = SignedAdjacency::new();
        assert_eq!(adj.add(1, 2, 1), 1);
        assert_eq!(adj.add(1, 2, 1), 2);
        assert_eq!(adj.len(), 1);
        assert_eq!(adj.degree(1), 1);
        assert_eq!(adj.add(1, 2, -2), 0);
        assert_eq!(adj.len(), 0);
        assert_eq!(adj.degree(1), 0);
        assert!(adj.is_empty());
    }

    #[test]
    fn signed_adjacency_negative_weights() {
        let mut adj = SignedAdjacency::new();
        adj.add(3, 4, -1);
        assert_eq!(adj.weight(3, 4), -1);
        assert_eq!(adj.total_weight_abs(), 1);
        assert!(adj.contains(3, 4));
        adj.add(3, 4, 1);
        assert!(!adj.contains(3, 4));
        assert_eq!(adj.total_weight_abs(), 0);
    }

    #[test]
    fn signed_adjacency_iteration() {
        let mut adj = SignedAdjacency::new();
        adj.add(1, 2, 1);
        adj.add(1, 3, 1);
        adj.add(2, 3, -1);
        let mut triples: Vec<_> = adj.iter().collect();
        triples.sort_unstable();
        assert_eq!(triples, vec![(1, 2, 1), (1, 3, 1), (2, 3, -1)]);
        let mut nbrs: Vec<_> = adj.neighbors(1).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(2, 1), (3, 1)]);
        let mut lefts: Vec<_> = adj.left_vertices().collect();
        lefts.sort_unstable();
        assert_eq!(lefts, vec![1, 2]);
    }

    #[test]
    fn rows_stay_sorted_by_neighbor_id() {
        let mut adj = SignedAdjacency::new();
        for v in [9u32, 2, 7, 4, 11, 1] {
            adj.add(5, v, 1);
        }
        let nbrs: Vec<u32> = adj.neighbors(5).map(|(v, _)| v).collect();
        let mut sorted = nbrs.clone();
        sorted.sort_unstable();
        assert_eq!(nbrs, sorted, "row iteration must be in neighbor-id order");
    }

    #[test]
    fn clear_retains_capacity_but_no_entries() {
        let mut adj = SignedAdjacency::with_capacity(4);
        adj.add(1, 2, 1);
        adj.add(3, 4, 2);
        adj.clear();
        assert!(adj.is_empty());
        assert_eq!(adj.weight(1, 2), 0);
        assert_eq!(adj.total_weight_abs(), 0);
        assert_eq!(adj.left_vertices().count(), 0);
        // Re-population after clear works on the retained slots.
        adj.add(1, 9, 1);
        assert_eq!(adj.degree(1), 1);
    }

    #[test]
    fn compact_reclaims_dead_slots_and_keeps_live_rows() {
        let mut adj = SignedAdjacency::new();
        for v in 0..50u32 {
            adj.add(v, v + 100, 1);
        }
        for v in 0..49u32 {
            adj.add(v, v + 100, -1);
        }
        adj.compact();
        assert_eq!(adj.len(), 1);
        assert_eq!(adj.weight(49, 149), 1);
        assert_eq!(adj.left_vertices().count(), 1);
        // New vertices intern into the reclaimed slot space.
        adj.add(7, 8, 1);
        assert_eq!(adj.weight(7, 8), 1);
        assert_eq!(adj.degree(7), 1);
        // Compacting a fully-live structure is a no-op.
        adj.compact();
        assert_eq!(adj.len(), 2);
        assert_eq!(adj.weight(49, 149), 1);
    }

    #[test]
    fn bipartite_adjacency_sides_stay_in_sync() {
        let mut adj = BipartiteAdjacency::new();
        adj.add(1, 10, 1);
        adj.add(2, 10, 1);
        adj.add(1, 11, 1);
        assert_eq!(adj.degree_left(1), 2);
        assert_eq!(adj.degree_right(10), 2);
        assert_eq!(adj.weight(2, 10), 1);
        let mut nbrs: Vec<_> = adj.neighbors_of_right(10).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(1, 1), (2, 1)]);
        adj.add(1, 10, -1);
        assert_eq!(adj.degree_left(1), 1);
        assert_eq!(adj.degree_right(10), 1);
    }

    #[test]
    fn bipartite_clear() {
        let mut adj = BipartiteAdjacency::with_capacity(8);
        adj.add(1, 1, 1);
        adj.add(2, 2, 1);
        adj.clear();
        assert!(adj.is_empty());
        assert_eq!(adj.degree_left(1), 0);
        assert_eq!(adj.degree_right(2), 0);
    }
}
