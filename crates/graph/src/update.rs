//! Edge-update and update-stream types.
//!
//! Both the general-graph problem (Theorem 1) and the layered problem
//! (Theorem 2) are *fully dynamic*: the graph starts empty and undergoes an
//! arbitrary interleaving of edge insertions and deletions. These types are
//! the common currency between the workload generators
//! (`fourcycle-workloads`), the counters (`fourcycle-core`) and the
//! IVM layer (`fourcycle-ivm`).

use crate::layered::Rel;
use crate::VertexId;

/// Insertion or deletion of a single edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// The edge is added to the graph.
    Insert,
    /// The edge is removed from the graph.
    Delete,
}

impl UpdateOp {
    /// `+1` for an insertion, `-1` for a deletion — the sign with which the
    /// update enters every (multi)linear data structure.
    pub fn sign(self) -> i64 {
        match self {
            UpdateOp::Insert => 1,
            UpdateOp::Delete => -1,
        }
    }

    /// The opposite operation.
    pub fn inverse(self) -> UpdateOp {
        match self {
            UpdateOp::Insert => UpdateOp::Delete,
            UpdateOp::Delete => UpdateOp::Insert,
        }
    }
}

/// An update to a general (simple, undirected) graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphUpdate {
    /// Insert or delete.
    pub op: UpdateOp,
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
}

impl GraphUpdate {
    /// Convenience constructor for an insertion.
    pub fn insert(u: VertexId, v: VertexId) -> Self {
        Self { op: UpdateOp::Insert, u, v }
    }

    /// Convenience constructor for a deletion.
    pub fn delete(u: VertexId, v: VertexId) -> Self {
        Self { op: UpdateOp::Delete, u, v }
    }

    /// The endpoints in canonical (sorted) order; useful for hashing the
    /// undirected edge.
    pub fn canonical(&self) -> (VertexId, VertexId) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

/// An update to one relation of a 4-layered graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayeredUpdate {
    /// Insert or delete.
    pub op: UpdateOp,
    /// Which relation (`A`, `B`, `C` or `D`) is updated.
    pub rel: Rel,
    /// Endpoint in the relation's left layer.
    pub left: VertexId,
    /// Endpoint in the relation's right layer.
    pub right: VertexId,
}

impl LayeredUpdate {
    /// Convenience constructor for an insertion.
    pub fn insert(rel: Rel, left: VertexId, right: VertexId) -> Self {
        Self { op: UpdateOp::Insert, rel, left, right }
    }

    /// Convenience constructor for a deletion.
    pub fn delete(rel: Rel, left: VertexId, right: VertexId) -> Self {
        Self { op: UpdateOp::Delete, rel, left, right }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_sign_and_inverse() {
        assert_eq!(UpdateOp::Insert.sign(), 1);
        assert_eq!(UpdateOp::Delete.sign(), -1);
        assert_eq!(UpdateOp::Insert.inverse(), UpdateOp::Delete);
        assert_eq!(UpdateOp::Delete.inverse(), UpdateOp::Insert);
    }

    #[test]
    fn canonical_orders_endpoints() {
        assert_eq!(GraphUpdate::insert(5, 2).canonical(), (2, 5));
        assert_eq!(GraphUpdate::delete(2, 5).canonical(), (2, 5));
    }

    #[test]
    fn layered_update_constructors() {
        let up = LayeredUpdate::insert(Rel::B, 1, 2);
        assert_eq!(up.op, UpdateOp::Insert);
        assert_eq!(up.rel, Rel::B);
        let down = LayeredUpdate::delete(Rel::B, 1, 2);
        assert_eq!(down.op, UpdateOp::Delete);
    }
}
