//! Edge-update and update-stream types.
//!
//! Both the general-graph problem (Theorem 1) and the layered problem
//! (Theorem 2) are *fully dynamic*: the graph starts empty and undergoes an
//! arbitrary interleaving of edge insertions and deletions. These types are
//! the common currency between the workload generators
//! (`fourcycle-workloads`), the counters (`fourcycle-core`) and the
//! IVM layer (`fourcycle-ivm`).

use crate::layered::Rel;
use crate::VertexId;

/// Insertion or deletion of a single edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// The edge is added to the graph.
    Insert,
    /// The edge is removed from the graph.
    Delete,
}

impl UpdateOp {
    /// `+1` for an insertion, `-1` for a deletion — the sign with which the
    /// update enters every (multi)linear data structure.
    pub fn sign(self) -> i64 {
        match self {
            UpdateOp::Insert => 1,
            UpdateOp::Delete => -1,
        }
    }

    /// The opposite operation.
    pub fn inverse(self) -> UpdateOp {
        match self {
            UpdateOp::Insert => UpdateOp::Delete,
            UpdateOp::Delete => UpdateOp::Insert,
        }
    }
}

/// An update to a general (simple, undirected) graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphUpdate {
    /// Insert or delete.
    pub op: UpdateOp,
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
}

impl GraphUpdate {
    /// Convenience constructor for an insertion.
    pub fn insert(u: VertexId, v: VertexId) -> Self {
        Self {
            op: UpdateOp::Insert,
            u,
            v,
        }
    }

    /// Convenience constructor for a deletion.
    pub fn delete(u: VertexId, v: VertexId) -> Self {
        Self {
            op: UpdateOp::Delete,
            u,
            v,
        }
    }

    /// The endpoints in canonical (sorted) order; useful for hashing the
    /// undirected edge.
    pub fn canonical(&self) -> (VertexId, VertexId) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

/// An update to one relation of a 4-layered graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayeredUpdate {
    /// Insert or delete.
    pub op: UpdateOp,
    /// Which relation (`A`, `B`, `C` or `D`) is updated.
    pub rel: Rel,
    /// Endpoint in the relation's left layer.
    pub left: VertexId,
    /// Endpoint in the relation's right layer.
    pub right: VertexId,
}

impl LayeredUpdate {
    /// Convenience constructor for an insertion.
    pub fn insert(rel: Rel, left: VertexId, right: VertexId) -> Self {
        Self {
            op: UpdateOp::Insert,
            rel,
            left,
            right,
        }
    }

    /// Convenience constructor for a deletion.
    pub fn delete(rel: Rel, left: VertexId, right: VertexId) -> Self {
        Self {
            op: UpdateOp::Delete,
            rel,
            left,
            right,
        }
    }
}

/// A batch of layered updates — the unit of work of the batch-update
/// pipeline.
///
/// The paper's engines are built around *phases* of `m^{1−δ}` updates
/// (§5.1): most maintenance work is naturally amortized over a window of
/// updates rather than paid per edge. `UpdateBatch` is the API-level
/// counterpart: callers group updates (a workload chunk, one trace file
/// block, one ingestion tick) and hand the whole group to
/// `LayeredCycleCounter::apply_batch` / `CyclicJoinCountView::apply_batch`,
/// which route per-relation sub-batches to the engines' `apply_batch`
/// entry points.
///
/// Batch application is *semantics-preserving*: applying a batch leaves
/// every counter and engine in a state equivalent to applying its updates
/// one at a time, in order. What changes is the cost profile — same-pair
/// updates coalesce, and class-transition / rebuild / rollover bookkeeping
/// is settled once per batch.
///
/// ```
/// use fourcycle_graph::{LayeredUpdate, Rel, UpdateBatch};
///
/// // Batches collect from any iterator of updates and preserve order.
/// let batch: UpdateBatch = vec![
///     LayeredUpdate::insert(Rel::A, 1, 2),
///     LayeredUpdate::delete(Rel::A, 1, 2),
///     LayeredUpdate::insert(Rel::C, 3, 4),
/// ]
/// .into();
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.updates()[2].rel, Rel::C);
/// // Same-pair churn inside a batch nets out on the engines' batch path:
/// // the A-edge above costs nothing when the batch is coalesced.
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    updates: Vec<LayeredUpdate>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `capacity` updates.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            updates: Vec::with_capacity(capacity),
        }
    }

    /// Appends one update.
    pub fn push(&mut self, update: LayeredUpdate) {
        self.updates.push(update);
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` if the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The updates, in application order.
    pub fn updates(&self) -> &[LayeredUpdate] {
        &self.updates
    }

    /// Iterates over the updates in application order.
    pub fn iter(&self) -> impl Iterator<Item = &LayeredUpdate> {
        self.updates.iter()
    }
}

impl From<Vec<LayeredUpdate>> for UpdateBatch {
    fn from(updates: Vec<LayeredUpdate>) -> Self {
        Self { updates }
    }
}

impl FromIterator<LayeredUpdate> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = LayeredUpdate>>(iter: I) -> Self {
        Self {
            updates: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a UpdateBatch {
    type Item = &'a LayeredUpdate;
    type IntoIter = std::slice::Iter<'a, LayeredUpdate>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

/// Coalesces a single-relation update slice into net signed deltas, one
/// entry per distinct pair, in first-occurrence order; pairs whose updates
/// cancel (insert + delete of the same edge within the batch) are dropped.
///
/// This is the shared front-end of every engine's `apply_batch`: because
/// all maintained structures are (multi)linear in the signed edge multiset,
/// applying the net delta of a pair once is equivalent to replaying its
/// updates individually.
pub fn coalesce_updates(
    updates: &[(VertexId, VertexId, UpdateOp)],
) -> Vec<(VertexId, VertexId, i64)> {
    use std::collections::HashMap;
    let mut slot: HashMap<(VertexId, VertexId), usize> = HashMap::with_capacity(updates.len());
    let mut out: Vec<(VertexId, VertexId, i64)> = Vec::with_capacity(updates.len());
    for &(l, r, op) in updates {
        match slot.entry((l, r)) {
            std::collections::hash_map::Entry::Occupied(e) => out[*e.get()].2 += op.sign(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(out.len());
                out.push((l, r, op.sign()));
            }
        }
    }
    out.retain(|&(_, _, s)| s != 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_sign_and_inverse() {
        assert_eq!(UpdateOp::Insert.sign(), 1);
        assert_eq!(UpdateOp::Delete.sign(), -1);
        assert_eq!(UpdateOp::Insert.inverse(), UpdateOp::Delete);
        assert_eq!(UpdateOp::Delete.inverse(), UpdateOp::Insert);
    }

    #[test]
    fn canonical_orders_endpoints() {
        assert_eq!(GraphUpdate::insert(5, 2).canonical(), (2, 5));
        assert_eq!(GraphUpdate::delete(2, 5).canonical(), (2, 5));
    }

    #[test]
    fn layered_update_constructors() {
        let up = LayeredUpdate::insert(Rel::B, 1, 2);
        assert_eq!(up.op, UpdateOp::Insert);
        assert_eq!(up.rel, Rel::B);
        let down = LayeredUpdate::delete(Rel::B, 1, 2);
        assert_eq!(down.op, UpdateOp::Delete);
    }

    #[test]
    fn batch_collects_and_iterates_in_order() {
        let mut batch = UpdateBatch::with_capacity(2);
        assert!(batch.is_empty());
        batch.push(LayeredUpdate::insert(Rel::A, 1, 2));
        batch.push(LayeredUpdate::delete(Rel::C, 3, 4));
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.updates()[1].rel, Rel::C);
        let from_vec: UpdateBatch = vec![
            LayeredUpdate::insert(Rel::A, 1, 2),
            LayeredUpdate::delete(Rel::C, 3, 4),
        ]
        .into();
        assert_eq!(batch, from_vec);
        let rels: Vec<Rel> = batch.iter().map(|u| u.rel).collect();
        assert_eq!(rels, vec![Rel::A, Rel::C]);
    }

    #[test]
    fn coalesce_nets_same_pair_deltas() {
        use UpdateOp::{Delete, Insert};
        let updates = [
            (1u32, 2u32, Insert),
            (3, 4, Insert),
            (1, 2, Delete), // cancels the first insert
            (3, 4, Delete),
            (3, 4, Insert), // net +1 for (3, 4)
            (5, 6, Delete), // net -1 (deleting an edge present before the batch)
        ];
        assert_eq!(coalesce_updates(&updates), vec![(3, 4, 1), (5, 6, -1)]);
        assert!(coalesce_updates(&[]).is_empty());
    }
}
