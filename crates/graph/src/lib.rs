//! Dynamic graph substrate for the `fourcycle` workspace.
//!
//! This crate provides the graph representations used by every counting
//! algorithm in the workspace:
//!
//! * [`LayeredGraph`] — the 4-layered graphs of Assadi & Shah (PODS 2025),
//!   §2.1: four vertex layers `L1..L4`, edges only between consecutive layers
//!   (`A: L1–L2`, `B: L2–L3`, `C: L3–L4`, `D: L4–L1`).
//! * [`GeneralGraph`] — ordinary simple undirected dynamic graphs, together
//!   with the general ↔ layered reduction of §8.
//! * Update/stream types ([`GraphUpdate`], [`LayeredUpdate`], [`UpdateOp`])
//!   shared by the engines, workload generators and the IVM layer.
//! * Degree-class machinery ([`ClassThresholds`], [`EndpointClass`],
//!   [`MiddleClass`]) implementing the High/Medium/Low/Tiny and
//!   Dense/Sparse/Tiny partitions of §4 and §6.
//! * Brute-force reference counters (`*_brute_force`) used as test oracles
//!   throughout the workspace.
//!
//! The representations here always describe the *current* graph. The
//! phase-tagged, signed edge multisets used internally by the main algorithm
//! (§5.1) live in `fourcycle-core`, layered on top of these types.

// Unit tests keep their unwrap/cast freedoms; the workspace clippy
// lints target only compiled production code (ADR-010).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod adjacency;
pub mod classes;
pub mod compact;
pub mod general;
pub mod layered;
pub mod update;

pub use adjacency::{BipartiteAdjacency, SignedAdjacency};
pub use classes::{ClassThresholds, EndpointClass, MiddleClass};
pub use compact::CompactIndex;
pub use general::GeneralGraph;
pub use layered::{Layer, LayeredGraph, Rel};
pub use update::{coalesce_updates, GraphUpdate, LayeredUpdate, UpdateBatch, UpdateOp};

/// Vertex identifier. Vertices are dense small integers managed by the
/// caller; layers of a [`LayeredGraph`] have independent id spaces.
pub type VertexId = u32;
