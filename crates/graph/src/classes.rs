//! Degree classes (§4 and §6 of the paper).
//!
//! The main algorithm partitions vertices by degree:
//!
//! * `L1`, `L4` (by degree in `A`, resp. `C`):
//!   **High** (`deg ≥ m^{2/3−ε}`), **Medium** (`m^{1/3+ε} ≤ deg < m^{2/3−ε}`),
//!   **Low** (`deg < m^{1/3+ε}`), and within Low the **Tiny** vertices
//!   (`deg ≤ m^{1/3−2ε}`, §6) that are handled separately.
//! * `L2`, `L3` (by *combined* degree in `A,B`, resp. `B,C`):
//!   **Dense** (`deg ≥ m^{2/3−ε}`), **Sparse** (below), and within Sparse the
//!   **Tiny** vertices (`deg ≤ m^{1/3−2ε}`).
//!
//! The paper gives each class a factor-2 overlap band so that a transitioning
//! vertex can belong to both classes while its new data structures are being
//! built (§7). Our implementation instead uses *sharp, disjoint* classes and
//! rebuilds a vertex's contributions immediately when it crosses a boundary
//! (see DESIGN.md §2.3); the thresholds themselves are identical.

/// Class of an endpoint vertex (layers `L1` and `L4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EndpointClass {
    /// Degree at most `m^{1/3−2ε}` (§6); handled by the tiny-vertex machinery.
    Tiny,
    /// Degree below `m^{1/3+ε}` (and above the tiny threshold).
    Low,
    /// Degree in `[m^{1/3+ε}, m^{2/3−ε})`.
    Medium,
    /// Degree at least `m^{2/3−ε}`.
    High,
}

/// Class of a middle vertex (layers `L2` and `L3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MiddleClass {
    /// Combined degree at most `m^{1/3−2ε}` (§6).
    Tiny,
    /// Combined degree below `m^{2/3−ε}` (and above the tiny threshold).
    Sparse,
    /// Combined degree at least `m^{2/3−ε}`.
    Dense,
}

/// Concrete degree thresholds for a fixed edge-count scale `m̂` and parameter
/// `ε` (plus the phase length `m̂^{1−δ}` of §5.1).
///
/// All thresholds are clamped from below so that the classes stay
/// well-ordered even for very small graphs (where fractional powers of `m`
/// collapse to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassThresholds {
    /// The edge-count scale `m̂` the thresholds were computed for.
    pub m_hat: usize,
    /// The update-exponent slack `ε` of Theorem 2.
    pub eps: f64,
    /// The phase-length exponent slack `δ` (the paper sets `δ = 3ε`).
    pub delta: f64,
    /// Tiny threshold: degree `≤ tiny` ⇒ Tiny (`⌈m^{1/3−2ε}⌉`).
    pub tiny: usize,
    /// Low/Medium boundary: degree `≥ medium_lo` ⇒ at least Medium
    /// (`⌈m^{1/3+ε}⌉`).
    pub medium_lo: usize,
    /// Medium/High boundary: degree `≥ high_lo` ⇒ High (`⌈m^{2/3−ε}⌉`);
    /// also the Sparse/Dense boundary for middle layers.
    pub high_lo: usize,
    /// Number of updates per phase (`⌈m^{1−δ}⌉`, §5.1).
    pub phase_len: usize,
}

impl ClassThresholds {
    /// Computes thresholds for edge scale `m_hat` using the paper's `ε` and
    /// `δ = 3ε` (Eq 10 tight).
    pub fn new(m_hat: usize, eps: f64) -> Self {
        Self::with_delta(m_hat, eps, 3.0 * eps)
    }

    /// Computes thresholds with an explicit `δ`.
    // lint: band cutoffs are ceil()ed f64 powers of m, clamped to sane floors
    #[allow(clippy::cast_possible_truncation)]
    pub fn with_delta(m_hat: usize, eps: f64, delta: f64) -> Self {
        assert!(
            (0.0..=1.0 / 6.0).contains(&eps),
            "ε must lie in [0, 1/6] (Eq 11)"
        );
        assert!((0.0..1.0).contains(&delta), "δ must lie in [0, 1)");
        // lint: allow(no-as-cast) class cutoffs are m^x f64 math (Eq 11)
        let m = (m_hat.max(1)) as f64;
        // lint: allow(no-as-cast) band floor from f64 math
        let tiny = m.powf(1.0 / 3.0 - 2.0 * eps).ceil() as usize;
        // lint: allow(no-as-cast) band floor, clamped below
        let medium_lo = (m.powf(1.0 / 3.0 + eps).ceil() as usize).max(tiny + 1);
        // lint: allow(no-as-cast) band floor, clamped below
        let high_lo = (m.powf(2.0 / 3.0 - eps).ceil() as usize).max(medium_lo + 1);
        // lint: allow(no-as-cast) phase length, clamped below
        let phase_len = (m.powf(1.0 - delta).ceil() as usize).max(4);
        Self {
            m_hat: m_hat.max(1),
            eps,
            delta,
            tiny,
            medium_lo,
            high_lo,
            phase_len,
        }
    }

    /// Classifies an endpoint vertex (`L1`/`L4`) by its defining degree.
    pub fn endpoint_class(&self, degree: usize) -> EndpointClass {
        if degree <= self.tiny {
            EndpointClass::Tiny
        } else if degree < self.medium_lo {
            EndpointClass::Low
        } else if degree < self.high_lo {
            EndpointClass::Medium
        } else {
            EndpointClass::High
        }
    }

    /// Classifies a middle vertex (`L2`/`L3`) by its combined degree.
    pub fn middle_class(&self, degree: usize) -> MiddleClass {
        if degree <= self.tiny {
            MiddleClass::Tiny
        } else if degree < self.high_lo {
            MiddleClass::Sparse
        } else {
            MiddleClass::Dense
        }
    }

    /// `true` if the current edge count `m` has drifted far enough from the
    /// scale `m̂` that the engine should rebuild with fresh thresholds
    /// (the era rule of DESIGN.md §2.3).
    pub fn needs_rebuild(&self, current_m: usize) -> bool {
        let current = current_m.max(1);
        current * 2 < self.m_hat || current > self.m_hat * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        for &m in &[1usize, 10, 100, 1_000, 10_000, 1_000_000] {
            for &eps in &[0.0, 0.009811, 1.0 / 24.0, 1.0 / 6.0] {
                let t = ClassThresholds::new(m, eps);
                assert!(t.tiny < t.medium_lo, "tiny < medium_lo for m={m} eps={eps}");
                assert!(
                    t.medium_lo < t.high_lo,
                    "medium_lo < high_lo for m={m} eps={eps}"
                );
                assert!(t.phase_len >= 4);
            }
        }
    }

    #[test]
    fn paper_scale_thresholds() {
        // m = 10^6, ε = 1/24: m^{1/3+ε} ≈ 10^{2.25} ≈ 178, m^{2/3−ε} ≈ 10^{5.75·...}
        let t = ClassThresholds::new(1_000_000, 1.0 / 24.0);
        assert_eq!(
            t.tiny,
            (1_000_000f64).powf(1.0 / 3.0 - 2.0 / 24.0).ceil() as usize
        );
        assert!(t.medium_lo >= 178 && t.medium_lo <= 179);
        assert!(t.high_lo >= 5_623 && t.high_lo <= 5_624); // 10^{6·0.625} = 10^{3.75}
    }

    #[test]
    fn endpoint_classification_boundaries() {
        let t = ClassThresholds::new(1_000_000, 1.0 / 24.0);
        assert_eq!(t.endpoint_class(0), EndpointClass::Tiny);
        assert_eq!(t.endpoint_class(t.tiny), EndpointClass::Tiny);
        assert_eq!(t.endpoint_class(t.tiny + 1), EndpointClass::Low);
        assert_eq!(t.endpoint_class(t.medium_lo - 1), EndpointClass::Low);
        assert_eq!(t.endpoint_class(t.medium_lo), EndpointClass::Medium);
        assert_eq!(t.endpoint_class(t.high_lo - 1), EndpointClass::Medium);
        assert_eq!(t.endpoint_class(t.high_lo), EndpointClass::High);
        assert_eq!(t.endpoint_class(usize::MAX), EndpointClass::High);
    }

    #[test]
    fn middle_classification_boundaries() {
        let t = ClassThresholds::new(1_000_000, 0.009811);
        assert_eq!(t.middle_class(t.tiny), MiddleClass::Tiny);
        assert_eq!(t.middle_class(t.tiny + 1), MiddleClass::Sparse);
        assert_eq!(t.middle_class(t.high_lo - 1), MiddleClass::Sparse);
        assert_eq!(t.middle_class(t.high_lo), MiddleClass::Dense);
    }

    #[test]
    fn era_rebuild_rule() {
        let t = ClassThresholds::new(1_000, 0.01);
        assert!(!t.needs_rebuild(1_000));
        assert!(!t.needs_rebuild(2_000));
        assert!(t.needs_rebuild(2_001));
        assert!(!t.needs_rebuild(500));
        assert!(t.needs_rebuild(499));
    }

    #[test]
    #[should_panic(expected = "ε must lie in")]
    fn rejects_eps_out_of_range() {
        let _ = ClassThresholds::new(100, 0.5);
    }
}
