//! The shard dispatcher: mailbox group draining, **intra-shard session
//! parallelism**, and the journal **group-commit** barrier.
//!
//! One dispatcher thread per shard replaces the old one-command-at-a-time
//! worker loop. Per iteration it drains its mailbox into a *group*, splits
//! the group into phases, and processes them in slot (= arrival) order:
//!
//! ```text
//!  mailbox ──drain──► group [ c1ᵍ¹ c2ᵍ² c3ᵍ¹ | create g9 | c4ᵍ² … ]
//!                             └── segment ──┘  └ barrier ┘ └ seg …
//!                                   │
//!             per-session run queues│(order within a session preserved)
//!                 ┌────────────┬────┴───────┐
//!                 ▼            ▼            ▼
//!            dispatcher    helper w1    helper w2      (SessionPool)
//!            runs g1       runs g2      runs g3
//!                 └──────── join ───────────┘
//!                            │
//!              journal in slot order, then (GroupCommit)
//!              one fsync ──► release the group's replies
//! ```
//!
//! * **Segments vs barriers.** Session-scoped commands (applies, count,
//!   snapshot) form *segments*; registry commands (create/drop/list) are
//!   *barriers* executed serially between them — they mutate the session
//!   registry itself, so nothing may be detached while they run.
//! * **Session runs.** Within a segment the commands are grouped by
//!   `GraphId` into per-session run queues. Sessions are independent by
//!   construction, so different sessions' runs execute concurrently on the
//!   [`SessionPool`] — each run *detaches* its session
//!   ([`CycleCountService::detach_session`]), applies its commands in
//!   order on a pool thread, and is reattached at the join. Per-session
//!   command order and epoch semantics are therefore exactly those of
//!   serial execution.
//! * **Journaling.** Parallel-applied mutations are journaled *after* the
//!   join, in slot order ([`CycleCountService::journal_record_applied`]):
//!   the WAL preserves each session's command order, which is all replay
//!   needs — sessions are independent. Under
//!   [`FsyncPolicy::GroupCommit`](fourcycle_store::FsyncPolicy) the
//!   dispatcher then acts as the group's *leader*: one
//!   [`journal_commit_group`](CycleCountService::journal_commit_group)
//!   fsync covers every command in the group, and only then are the
//!   group's replies released — reply ⇒ journaled ⇒ durable, at a fraction
//!   of the fsync count. A failed barrier poisons exactly the commands
//!   journaled into the failed group (`ServiceError::Journal`).
//!
//! With `RuntimeConfig::shard_parallelism(1)` (the default) no pool
//! threads exist and segments run inline on the dispatcher — the serial
//! fast path, byte-for-byte the old behavior.

use crate::stats::{self, ShardMetrics};
use crate::Job;
use fourcycle_service::{CycleCountService, GraphId, Request, Response, ServiceError};
use fourcycle_telemetry::{EventKind, Histogram, Stage, Telemetry};
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Upper bound on one drained group when no `GroupCommit` policy bounds
/// it. Replies are held for at most the life of one group, so the cap
/// bounds reply latency under a deep mailbox.
const GROUP_CAP: usize = 256;

/// The dispatcher-side knobs of [`FsyncPolicy::GroupCommit`]
/// (`fourcycle-store` owns the fsync itself; the dispatcher owns reply
/// release and the accumulation window).
pub(crate) struct GroupCommitKnobs {
    /// How long the dispatcher may hold its mailbox open to let a group
    /// grow beyond what is already queued (0: never wait).
    pub(crate) max_wait: Duration,
    /// Hard cap on one group (matches the journal's safety valve).
    pub(crate) max_batch: usize,
}

/// Shard-scoped telemetry view threaded through one group's processing.
///
/// Stage accounting invariant: every delivered slot contributes **exactly
/// one** sample to each of the six stage histograms (zero-valued where a
/// stage does not apply), so each stage's per-shard sample count equals
/// the shard's `commands` counter — a differential the tests pin. Exact
/// per-slot times are recorded where a boundary exists anyway (queue
/// wait, serial apply/journal); group-granular times are smeared as `n`
/// samples of `total/n` ([`Histogram::record_each`]).
struct GroupTelemetry<'a> {
    tel: &'a Telemetry,
    shard: usize,
}

impl GroupTelemetry<'_> {
    fn hist(&self, stage: Stage) -> &Histogram {
        self.tel.stage(self.shard, stage)
    }
}

/// Clamped nanoseconds between two `Instant`s (0 if out of order).
fn nanos_between(earlier: Instant, later: Instant) -> u64 {
    stats::clamped_nanos(later.saturating_duration_since(earlier))
}

/// The shard worker loop: owns one `CycleCountService` (pre-built — and,
/// when journaling, pre-recovered — by `try_start`), drains its mailbox in
/// groups until every runtime handle sender is gone, then syncs the
/// journal and exits.
pub(crate) fn shard_worker(
    rx: Receiver<Job>,
    metrics: Arc<ShardMetrics>,
    mut service: CycleCountService,
    shard: usize,
    parallelism: usize,
    group_commit: Option<GroupCommitKnobs>,
    telemetry: Option<Arc<Telemetry>>,
) {
    let mut pool = SessionPool::new(parallelism.saturating_sub(1), shard);
    let tel_scope = telemetry
        .as_deref()
        .map(|tel| GroupTelemetry { tel, shard });
    let mut idle_since = Instant::now();
    while let Ok(first) = rx.recv() {
        // Interval accounting is deliberately paranoid: durations come
        // from `saturating_duration_since` (never negative, zero-length
        // intervals are fine), nanoseconds are clamped into u64 without
        // `as` truncation, and the shared counters saturate rather than
        // wrap (see `stats::clamped_nanos` / `ShardMetrics::add_busy`).
        let busy_since = Instant::now();
        metrics.add_idle(stats::clamped_nanos(
            busy_since.saturating_duration_since(idle_since),
        ));
        let cap = group_commit
            .as_ref()
            .map_or(GROUP_CAP, |knobs| knobs.max_batch)
            .max(1);
        let mut group = vec![first];
        // Everything already queued joins the group for free.
        while group.len() < cap {
            match rx.try_recv() {
                Ok(job) => group.push(job),
                Err(_) => break,
            }
        }
        // Under group commit, optionally hold the mailbox open a little:
        // every extra command amortizes the group's single fsync further.
        if let Some(knobs) = &group_commit {
            if !knobs.max_wait.is_zero() {
                let deadline = busy_since + knobs.max_wait;
                while group.len() < cap {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    match rx.recv_timeout(left) {
                        Ok(job) => group.push(job),
                        Err(_) => break,
                    }
                }
            }
        }
        process_group(
            &mut service,
            &mut pool,
            group,
            &metrics,
            group_commit.is_some(),
            tel_scope.as_ref(),
        );
        metrics.groups.fetch_add(1, Ordering::Relaxed);
        metrics
            .journal_fsyncs
            .store(service.journal_fsyncs(), Ordering::Relaxed);
        idle_since = Instant::now();
        metrics.add_busy(stats::clamped_nanos(
            idle_since.saturating_duration_since(busy_since),
        ));
    }
    // Graceful exit: make everything journaled so far durable, whatever
    // the fsync policy (best effort — the worker has nowhere to report),
    // and fold that last fsync into the gauge so shutdown reports add up.
    let _ = service.sync_journal();
    metrics
        .journal_fsyncs
        .store(service.journal_fsyncs(), Ordering::Relaxed);
}

/// Registry commands mutate the session registry (or address every shard)
/// and act as serial barriers between parallel segments.
fn is_registry(request: &Request) -> bool {
    matches!(
        request,
        Request::CreateGraph { .. } | Request::DropGraph { .. } | Request::ListGraphs
    )
}

/// Executes one drained group: barriers serially, segments on the pool,
/// journal in slot order, then the group-commit barrier (if configured)
/// before any held reply is released.
fn process_group(
    service: &mut CycleCountService,
    pool: &mut SessionPool,
    group: Vec<Job>,
    metrics: &ShardMetrics,
    hold_for_commit: bool,
    tel: Option<&GroupTelemetry>,
) {
    let n = group.len();
    let mut replies = Vec::with_capacity(n);
    let mut requests = Vec::with_capacity(n);
    let mut enqueued = Vec::with_capacity(n);
    for job in group {
        replies.push(Some(job.reply));
        enqueued.push(job.enqueued_at);
        requests.push(job.request);
    }
    // Queue wait is exact per job (submit stamped it); the group-assembly
    // boundary doubles as the dispatch-stage start.
    let dispatch_started = tel.map(|t| {
        let now = Instant::now();
        let hist = t.hist(Stage::QueueWait);
        for at in &enqueued {
            hist.record(at.map_or(0, |at| nanos_between(at, now)));
        }
        now
    });
    let mut outcomes: Vec<Option<Result<Response, ServiceError>>> =
        std::iter::repeat_with(|| None).take(n).collect();
    // Slots journaled into the current group. If the group's fsync fails,
    // exactly these replies are rewritten to `ServiceError::Journal` —
    // their commands applied but are not durable.
    let mut journaled: Vec<usize> = Vec::new();
    if let (Some(t), Some(started)) = (tel, dispatch_started) {
        let n = u64::try_from(n).unwrap_or(u64::MAX);
        t.hist(Stage::Dispatch)
            .record_each(nanos_between(started, Instant::now()), n);
    }

    let mut start = 0;
    while start < n {
        if is_registry(&requests[start]) {
            // Barrier: executed (and journaled) inline by the service.
            let (outcome, journaled_now) = execute_slot(service, &requests[start], tel);
            if journaled_now {
                journaled.push(start);
            }
            outcomes[start] = Some(outcome);
            if !hold_for_commit {
                deliver_timed(
                    metrics,
                    &requests,
                    &mut replies,
                    &mut outcomes,
                    start..start + 1,
                    tel,
                );
            }
            start += 1;
            continue;
        }
        let mut end = start + 1;
        while end < n && !is_registry(&requests[end]) {
            end += 1;
        }
        run_segment(
            service,
            pool,
            &mut requests,
            start..end,
            &mut outcomes,
            &mut journaled,
            tel,
        );
        if !hold_for_commit {
            deliver_timed(
                metrics,
                &requests,
                &mut replies,
                &mut outcomes,
                start..end,
                tel,
            );
        }
        start = end;
    }

    if hold_for_commit {
        // The group's durability barrier: one fsync for every command
        // journaled above. Only now may replies leave the shard — a client
        // that sees a response holds a durable command, exactly as under
        // fsync-every-1.
        let fsync_started = tel.map(|_| Instant::now());
        let committed = service.journal_commit_group();
        if let (Some(t), Some(started)) = (tel, fsync_started) {
            let fsync_nanos = nanos_between(started, Instant::now());
            let n = u64::try_from(n).unwrap_or(u64::MAX);
            t.hist(Stage::FsyncWait).record_each(fsync_nanos, n);
            if let Ok(covered) = &committed {
                if *covered > 0 {
                    t.tel.ring().emit(
                        u32::try_from(t.shard).unwrap_or(u32::MAX),
                        EventKind::GroupCommit,
                        *covered,
                        fsync_nanos,
                    );
                }
            }
        }
        if let Err(e) = committed {
            for &slot in &journaled {
                outcomes[slot] = Some(Err(e));
            }
        }
        let reply_started = tel.map(|_| Instant::now());
        for slot in 0..n {
            deliver(metrics, &requests, &mut replies, &mut outcomes, slot);
        }
        if let (Some(t), Some(started)) = (tel, reply_started) {
            let n = u64::try_from(n).unwrap_or(u64::MAX);
            t.hist(Stage::Reply)
                .record_each(nanos_between(started, Instant::now()), n);
        }
    }
    // End-to-end latency check (slow-request events), one clock read for
    // the whole group. Fan-out sub-commands check per shard.
    if let Some(t) = tel {
        let now = Instant::now();
        for at in enqueued.into_iter().flatten() {
            t.tel.note_request_done(
                u32::try_from(t.shard).unwrap_or(u32::MAX),
                nanos_between(at, now),
            );
        }
    }
}

/// Executes one barrier or serial-segment slot. With telemetry, the apply
/// and journal-append halves are timed separately through the service's
/// split path ([`CycleCountService::execute_unjournaled`] +
/// [`CycleCountService::journal_record_applied`]), which is semantically
/// identical to plain `execute` — same order, same checkpoint handling,
/// and a journal failure after a successful apply surfaces as the
/// command's outcome while its effect stands. Returns the outcome and
/// whether the slot was journaled into the open group.
fn execute_slot(
    service: &mut CycleCountService,
    request: &Request,
    tel: Option<&GroupTelemetry>,
) -> (Result<Response, ServiceError>, bool) {
    match tel {
        None => {
            let outcome = service.execute(request);
            let journaled = outcome.is_ok() && request.is_mutation();
            (outcome, journaled)
        }
        Some(t) => {
            let apply_started = Instant::now();
            let mut outcome = service.execute_unjournaled(request);
            let journal_started = Instant::now();
            t.hist(Stage::Apply)
                .record(nanos_between(apply_started, journal_started));
            let mut journaled = false;
            if outcome.is_ok() && request.is_mutation() {
                match service.journal_record_applied(request) {
                    Ok(()) => journaled = true,
                    Err(e) => outcome = Err(e),
                }
            }
            t.hist(Stage::JournalAppend)
                .record(nanos_between(journal_started, Instant::now()));
            (outcome, journaled)
        }
    }
}

/// Delivers a range of finished slots, recording the reply stage (and a
/// zero fsync-wait sample — immediate mode has no commit barrier) for
/// each. The group-commit path times its own reply loop instead.
fn deliver_timed(
    metrics: &ShardMetrics,
    requests: &[Request],
    replies: &mut [Option<mpsc::Sender<Result<Response, ServiceError>>>],
    outcomes: &mut [Option<Result<Response, ServiceError>>],
    range: Range<usize>,
    tel: Option<&GroupTelemetry>,
) {
    let started = tel.map(|_| Instant::now());
    let len = u64::try_from(range.len()).unwrap_or(u64::MAX);
    for slot in range {
        deliver(metrics, requests, replies, outcomes, slot);
    }
    if let (Some(t), Some(started)) = (tel, started) {
        t.hist(Stage::FsyncWait).record_each(0, len);
        t.hist(Stage::Reply)
            .record_each(nanos_between(started, Instant::now()), len);
    }
}

/// Executes one segment (consecutive session-scoped slots): groups the
/// slots into per-session run queues, fans the runs out over the pool
/// (serially when there is nothing to overlap), reattaches every session,
/// then journals the applied mutations in slot order.
fn run_segment(
    service: &mut CycleCountService,
    pool: &mut SessionPool,
    requests: &mut [Request],
    range: Range<usize>,
    outcomes: &mut [Option<Result<Response, ServiceError>>],
    journaled: &mut Vec<usize>,
    tel: Option<&GroupTelemetry>,
) {
    // Per-session run queues, arrival order preserved within each session.
    let mut runs: Vec<(GraphId, Vec<usize>)> = Vec::new();
    for slot in range.clone() {
        let id = requests[slot]
            .graph_id()
            // lint: allow(no-panic) run_segment is only fed session commands
            .expect("segment commands are session-scoped");
        match runs.iter_mut().find(|(rid, _)| *rid == id) {
            Some((_, slots)) => slots.push(slot),
            None => runs.push((id, vec![slot])),
        }
    }

    if pool.helpers() == 0 || runs.len() < 2 {
        // Nothing to overlap: the serial path, with exact per-slot
        // apply/journal timing through `execute_slot`.
        for slot in range {
            let (outcome, journaled_now) = execute_slot(service, &requests[slot], tel);
            if journaled_now {
                journaled.push(slot);
            }
            outcomes[slot] = Some(outcome);
        }
        return;
    }

    // On the parallel path the apply phase (detach → pool → reattach) and
    // the journal phase are group-granular; their durations are smeared
    // across the segment's slots to keep the one-sample-per-slot invariant.
    let seg_len = u64::try_from(range.len()).unwrap_or(u64::MAX);
    let apply_started = tel.map(|_| Instant::now());

    // Detach every addressed session and ship it, with its commands, to
    // the pool. Ids without a session run inline for the exact
    // `UnknownGraph` error — they cannot race anything (there is no
    // session to share, and creates/drops are barriers).
    let mut dispatched: Vec<SessionRun> = Vec::new();
    for (id, slots) in runs {
        match service.detach_session(id) {
            Ok(session) => {
                let jobs = slots
                    .into_iter()
                    .map(|slot| {
                        // Move the request out for the pool thread; the
                        // placeholder is dead weight until the run returns
                        // it. `ListGraphs` is the only payload-free variant.
                        (
                            slot,
                            std::mem::replace(&mut requests[slot], Request::ListGraphs),
                        )
                    })
                    .collect();
                dispatched.push(SessionRun { session, jobs });
            }
            Err(_) => {
                for slot in slots {
                    let outcome = service.execute(&requests[slot]);
                    debug_assert!(outcome.is_err(), "detach fails only for unknown ids");
                    outcomes[slot] = Some(outcome);
                }
            }
        }
    }
    for done in pool.execute(dispatched) {
        service.reattach_session(done.session);
        for (slot, request, outcome) in done.outcomes {
            requests[slot] = request;
            outcomes[slot] = Some(outcome);
        }
    }
    let journal_started = tel.map(|t| {
        let now = Instant::now();
        t.hist(Stage::Apply).record_each(
            // lint: allow(no-panic) apply_started is Some whenever tel is
            nanos_between(apply_started.expect("set with tel"), now),
            seg_len,
        );
        now
    });
    // Journal the applied mutations in slot order — the WAL preserves each
    // session's command order, which is all replay needs (sessions are
    // independent). Runs only after every session is reattached, so a due
    // checkpoint images the complete registry.
    for slot in range {
        let applied = matches!(outcomes[slot], Some(Ok(_)));
        if applied && requests[slot].is_mutation() {
            match service.journal_record_applied(&requests[slot]) {
                Ok(()) => journaled.push(slot),
                Err(e) => outcomes[slot] = Some(Err(e)),
            }
        }
    }
    if let (Some(t), Some(started)) = (tel, journal_started) {
        t.hist(Stage::JournalAppend)
            .record_each(nanos_between(started, Instant::now()), seg_len);
    }
}

/// Counts one finished slot into the metrics and sends its reply.
/// Idempotent per slot (the reply sender is taken).
fn deliver(
    metrics: &ShardMetrics,
    requests: &[Request],
    replies: &mut [Option<mpsc::Sender<Result<Response, ServiceError>>>],
    outcomes: &mut [Option<Result<Response, ServiceError>>],
    slot: usize,
) {
    let Some(reply) = replies[slot].take() else {
        return;
    };
    let outcome = outcomes[slot]
        .take()
        // lint: allow(no-panic) execute_slot/run_segment fill every slot
        .expect("every slot is processed before delivery");
    metrics.commands.fetch_add(1, Ordering::Relaxed);
    // `updates_applied` counts what actually landed in service state.
    // A journal failure is reported to the client as an error, but its
    // command's effect *stands* (`ServiceError::Journal` semantics:
    // applied, then the sink failed) — so its updates count as applied
    // or the report would diverge from the session epochs during
    // exactly the incidents (disk full) where it matters.
    let applied = match &outcome {
        Ok(_) => u64::try_from(requests[slot].update_count()).unwrap_or(u64::MAX),
        Err(ServiceError::Journal(_) | ServiceError::JournalCheckpoint(_)) => {
            metrics.rejected.fetch_add(1, Ordering::Relaxed);
            u64::try_from(requests[slot].update_count()).unwrap_or(u64::MAX)
        }
        Err(_) => {
            metrics.rejected.fetch_add(1, Ordering::Relaxed);
            0
        }
    };
    if applied > 0 {
        metrics
            .updates_applied
            .fetch_add(applied, Ordering::Relaxed);
    }
    // The client may have dropped its ticket (fire-and-forget); a dead
    // reply channel is not an error.
    let _ = reply.send(outcome);
}

/// One session's share of a segment: the detached session plus its
/// commands, in arrival order.
struct SessionRun {
    session: fourcycle_service::DetachedSession,
    jobs: Vec<(usize, Request)>,
}

/// A finished run: the session (to reattach) and each command's request
/// and outcome, keyed by group slot.
struct RunDone {
    session: fourcycle_service::DetachedSession,
    outcomes: Vec<(usize, Request, Result<Response, ServiceError>)>,
}

fn run_one(run: SessionRun) -> RunDone {
    let SessionRun { mut session, jobs } = run;
    let outcomes = jobs
        .into_iter()
        .map(|(slot, request)| {
            let outcome = session.execute(&request);
            (slot, request, outcome)
        })
        .collect();
    RunDone { session, outcomes }
}

struct PoolShared {
    queue: Mutex<VecDeque<SessionRun>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// The per-shard helper pool behind intra-shard parallelism:
/// `parallelism - 1` persistent threads plus the dispatcher itself. Runs
/// move by value (each carries its detached session), so no locks guard
/// session state — the queue mutex only hands out work.
struct SessionPool {
    shared: Arc<PoolShared>,
    results_rx: mpsc::Receiver<RunDone>,
    /// Keeps the results channel alive independent of helper lifetimes.
    _results_tx: mpsc::Sender<RunDone>,
    helpers: Vec<JoinHandle<()>>,
}

impl SessionPool {
    fn new(helpers: usize, shard: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let (results_tx, results_rx) = mpsc::channel();
        let handles = (0..helpers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let results = results_tx.clone();
                thread::Builder::new()
                    .name(format!("fourcycle-shard-{shard}-w{}", i + 1))
                    .spawn(move || helper_loop(&shared, &results))
                    // lint: allow(no-panic) pool built at startup, before serving
                    .expect("spawn shard pool helper")
            })
            .collect();
        Self {
            shared,
            results_rx,
            _results_tx: results_tx,
            helpers: handles,
        }
    }

    fn helpers(&self) -> usize {
        self.helpers.len()
    }

    /// Runs every `SessionRun` across the helpers and the calling thread,
    /// returning when all are done. Largest runs first (better balance
    /// under per-session skew).
    fn execute(&mut self, mut runs: Vec<SessionRun>) -> Vec<RunDone> {
        let total = runs.len();
        runs.sort_by_key(|run| Reverse(run.jobs.len()));
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.extend(runs);
        }
        self.shared.ready.notify_all();
        let mut done = Vec::with_capacity(total);
        // The dispatcher is a worker too: it helps until the queue is dry,
        // then collects what the helpers finished.
        loop {
            let run = {
                let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                queue.pop_front()
            };
            match run {
                Some(run) => done.push(run_one(run)),
                None => break,
            }
        }
        while done.len() < total {
            // lint: allow(no-panic) a dead helper already poisoned the segment
            done.push(self.results_rx.recv().expect("pool helper died"));
        }
        done
    }
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        for helper in self.helpers.drain(..) {
            let _ = helper.join();
        }
    }
}

fn helper_loop(shared: &PoolShared, results: &mpsc::Sender<RunDone>) {
    loop {
        let run = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(run) = queue.pop_front() {
                    break run;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        if results.send(run_one(run)).is_err() {
            return; // dispatcher gone
        }
    }
}
