//! The runtime's error type: everything that can go wrong between a client
//! handing a [`Request`](fourcycle_service::Request) to the executor and
//! receiving its [`Response`](fourcycle_service::Response).

use fourcycle_service::{ParseError, ServiceError};
use fourcycle_store::StoreError;
use std::fmt;

/// Why a runtime call failed.
///
/// The service-level rejections ([`ServiceError`]) pass through unchanged —
/// the runtime adds only the failure modes sharded execution itself
/// introduces (a shard that is no longer reachable, ill-formed script
/// input). Like `ServiceError`, every wrapping variant implements
/// [`std::error::Error::source`], so reporters can walk the chain down to
/// the core `UpdateError` verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The addressed shard's mailbox is closed: the runtime has been shut
    /// down (or the shard worker terminated). The request was not executed.
    ShardUnavailable,
    /// The shard executed the request and the service rejected it; state is
    /// exactly as if the failing command had never been sent.
    Service(ServiceError),
    /// Script input could not be parsed into requests (only produced by the
    /// [`ScriptSource`](crate::ScriptSource) adapter).
    Parse(ParseError),
    /// The durable journal store failed while starting a journaled runtime
    /// (unusable directory, manifest topology mismatch, corrupt journal or
    /// checkpoint during recovery). The runtime refuses to start.
    Store(StoreError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ShardUnavailable => {
                write!(f, "shard unavailable (runtime shut down)")
            }
            RuntimeError::Service(e) => write!(f, "service rejected the command: {e}"),
            RuntimeError::Parse(e) => write!(f, "script rejected: {e}"),
            RuntimeError::Store(e) => write!(f, "journal store failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    /// Chains to the wrapped [`ServiceError`] / [`ParseError`]; the
    /// service error itself chains further down to `BatchError` /
    /// `UpdateError`, so the full causal path of a rejected batch is
    /// `RuntimeError → ServiceError → BatchError → UpdateError`.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::ShardUnavailable => None,
            RuntimeError::Service(e) => Some(e),
            RuntimeError::Parse(e) => Some(e),
            RuntimeError::Store(e) => Some(e),
        }
    }
}

impl From<ServiceError> for RuntimeError {
    fn from(e: ServiceError) -> Self {
        RuntimeError::Service(e)
    }
}

impl From<ParseError> for RuntimeError {
    fn from(e: ParseError) -> Self {
        RuntimeError::Parse(e)
    }
}

impl From<StoreError> for RuntimeError {
    fn from(e: StoreError) -> Self {
        RuntimeError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fourcycle_core::{BatchError, UpdateError};
    use std::error::Error;

    #[test]
    fn sources_chain_down_to_the_update_verdict() {
        let e = RuntimeError::Service(ServiceError::Batch(BatchError::at(
            2,
            UpdateError::DuplicateEdge,
        )));
        // runtime → service → batch → update: four links, three sources.
        let service = e.source().expect("runtime chains to service");
        let batch = service.source().expect("service chains to batch");
        let update = batch.source().expect("batch chains to update");
        assert_eq!(update.to_string(), UpdateError::DuplicateEdge.to_string());
        assert!(RuntimeError::ShardUnavailable.source().is_none());

        let parse = RuntimeError::Parse(ParseError {
            line: 3,
            message: "bad".into(),
            text: "frobnicate g1".into(),
        });
        let rendered = parse.source().unwrap().to_string();
        assert!(rendered.contains("line 3") && rendered.contains("frobnicate g1"));

        let store = RuntimeError::Store(StoreError::UnknownShard {
            shard: 9,
            shards: 2,
        });
        assert!(store.source().unwrap().to_string().contains("shard 9"));
    }
}
