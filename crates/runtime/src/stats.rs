//! Runtime observability: per-shard counters and the aggregated report.
//!
//! Each shard worker owns one `ShardMetrics` cell (shared atomics, so the
//! handle can read a consistent-enough live view without stopping traffic);
//! [`RuntimeStats`] is the plain-value snapshot of one cell, and
//! [`RuntimeReport`] is the runtime-wide aggregation returned by
//! [`ShardedRuntime::report`](crate::ShardedRuntime::report) and by graceful
//! shutdown.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counter cell of one shard. Workers increment with relaxed
/// atomics on the hot path; readers snapshot into [`RuntimeStats`].
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    /// Commands executed (successful or rejected).
    pub commands: AtomicU64,
    /// Updates successfully applied (batch commands count their length).
    pub updates_applied: AtomicU64,
    /// Commands the service rejected with a `ServiceError`.
    pub rejected: AtomicU64,
    /// Submissions that found the shard's bounded mailbox full and had to
    /// block (the backpressure signal; counted on the producer side).
    pub queue_full_stalls: AtomicU64,
    /// Groups the shard dispatcher drained from its mailbox (each group is
    /// one batch of commands processed — and, under group commit, fsynced —
    /// together). `commands / groups` is the achieved batching factor.
    pub groups: AtomicU64,
    /// Fsyncs the shard's journal has issued (gauge, written by the worker
    /// after each group; 0 for memory-only shards).
    pub journal_fsyncs: AtomicU64,
    /// Nanoseconds the worker spent executing commands.
    pub busy_nanos: AtomicU64,
    /// Nanoseconds the worker spent waiting for its mailbox.
    pub idle_nanos: AtomicU64,
}

impl ShardMetrics {
    /// Adds a busy interval, saturating at `u64::MAX` instead of wrapping
    /// (a wrapped nanosecond counter would report a near-idle shard as
    /// saturated or vice versa).
    pub(crate) fn add_busy(&self, nanos: u64) {
        saturating_fetch_add(&self.busy_nanos, nanos);
    }

    /// Adds an idle interval, saturating like [`ShardMetrics::add_busy`].
    pub(crate) fn add_idle(&self, nanos: u64) {
        saturating_fetch_add(&self.idle_nanos, nanos);
    }

    pub(crate) fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            commands: self.commands.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_full_stalls: self.queue_full_stalls.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            journal_fsyncs: self.journal_fsyncs.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            idle_nanos: self.idle_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time statistics of one shard (or, summed, of the whole
/// runtime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Commands executed (successful or rejected).
    pub commands: u64,
    /// Updates applied to service state (batch commands count their
    /// length). Includes commands whose *journal* write failed after the
    /// updates landed (`ServiceError::Journal` — also counted in
    /// `rejected`), so this total always matches the session epochs.
    pub updates_applied: u64,
    /// Commands that returned a `ServiceError`. With the single exception
    /// of journal failures (see `updates_applied`), state is unchanged.
    pub rejected: u64,
    /// Submissions that found the bounded mailbox full and blocked.
    pub queue_full_stalls: u64,
    /// Mailbox groups the dispatcher processed (the crate-private
    /// `ShardMetrics::groups` counter); `commands / groups` is the
    /// achieved batching factor.
    pub groups: u64,
    /// Fsyncs the shard's journal has issued so far (0 when not journaled).
    pub journal_fsyncs: u64,
    /// Nanoseconds the shard worker spent executing commands.
    pub busy_nanos: u64,
    /// Nanoseconds the shard worker spent idle, waiting for work.
    pub idle_nanos: u64,
}

impl RuntimeStats {
    /// Field-wise sum (used to fold shards into the runtime-wide totals).
    ///
    /// Saturating on every field: a long-lived many-shard runtime can
    /// accumulate nanosecond counters whose *sum* exceeds `u64::MAX` even
    /// though each shard's own counter is fine, and a wrapped total would
    /// silently report nonsense (debug builds would panic mid-report).
    pub fn merge(self, other: RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            commands: self.commands.saturating_add(other.commands),
            updates_applied: self.updates_applied.saturating_add(other.updates_applied),
            rejected: self.rejected.saturating_add(other.rejected),
            queue_full_stalls: self
                .queue_full_stalls
                .saturating_add(other.queue_full_stalls),
            groups: self.groups.saturating_add(other.groups),
            journal_fsyncs: self.journal_fsyncs.saturating_add(other.journal_fsyncs),
            busy_nanos: self.busy_nanos.saturating_add(other.busy_nanos),
            idle_nanos: self.idle_nanos.saturating_add(other.idle_nanos),
        }
    }

    /// Fraction of the worker's accounted time spent executing commands,
    /// in `[0, 1]` (0 when nothing has been accounted yet; saturating at
    /// the top of the `u64` range rather than overflowing).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_nanos.saturating_add(self.idle_nanos);
        if total == 0 {
            0.0
        } else {
            // lint: allow(no-as-cast) utilization ratio; f64 rounding is fine
            self.busy_nanos as f64 / total as f64
        }
    }
}

/// `fetch_add` that clamps at `u64::MAX` instead of wrapping.
fn saturating_fetch_add(cell: &AtomicU64, delta: u64) {
    if delta == 0 {
        return;
    }
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
        Some(current.saturating_add(delta))
    });
}

/// Nanoseconds of `duration`, clamped into `u64` (a `u128 as u64` cast
/// would wrap after ~584 years of accumulated interval — implausible, but
/// the truncation is silent; the clamp is free).
pub(crate) fn clamped_nanos(duration: std::time::Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// The runtime-wide statistics report: one entry per shard plus the
/// field-wise totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeReport {
    /// Per-shard statistics, indexed by shard id.
    pub per_shard: Vec<RuntimeStats>,
    /// Field-wise sum over all shards.
    pub totals: RuntimeStats,
}

impl RuntimeReport {
    /// Builds a report from per-shard snapshots.
    pub fn from_shards(per_shard: Vec<RuntimeStats>) -> Self {
        let totals = per_shard
            .iter()
            .copied()
            .fold(RuntimeStats::default(), RuntimeStats::merge);
        Self { per_shard, totals }
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>5}  {:>10}  {:>10}  {:>9}  {:>7}  {:>5}",
            "shard", "commands", "updates", "rejected", "stalls", "busy"
        )?;
        let row = |f: &mut fmt::Formatter<'_>, label: &str, s: &RuntimeStats| {
            writeln!(
                f,
                "{:>5}  {:>10}  {:>10}  {:>9}  {:>7}  {:>4.0}%",
                label,
                s.commands,
                s.updates_applied,
                s.rejected,
                s.queue_full_stalls,
                s.utilization() * 100.0
            )
        };
        for (i, shard) in self.per_shard.iter().enumerate() {
            row(f, &i.to_string(), shard)?;
        }
        row(f, "all", &self.totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression (correctness audit): aggregation and accounting must be
    /// overflow-safe — extreme per-shard counters saturate instead of
    /// wrapping (release) or panicking (debug), and utilization stays a
    /// sane fraction.
    #[test]
    fn aggregation_saturates_instead_of_overflowing() {
        let extreme = RuntimeStats {
            commands: u64::MAX,
            updates_applied: u64::MAX - 1,
            rejected: u64::MAX,
            queue_full_stalls: u64::MAX,
            groups: u64::MAX,
            journal_fsyncs: u64::MAX,
            busy_nanos: u64::MAX,
            idle_nanos: u64::MAX,
        };
        let merged = extreme.merge(extreme);
        assert_eq!(merged.commands, u64::MAX);
        assert_eq!(merged.updates_applied, u64::MAX);
        assert_eq!(merged.busy_nanos, u64::MAX);
        // busy + idle would be 2^65; utilization must still be in [0, 1].
        let u = extreme.utilization();
        assert!((0.0..=1.0).contains(&u), "{u}");
        // Report building (merge-fold + Display) survives the extremes.
        let report = RuntimeReport::from_shards(vec![extreme, extreme, extreme]);
        assert_eq!(report.totals.commands, u64::MAX);
        assert!(report.to_string().contains("all"));

        // The shard-side accumulator clamps too (zero-duration intervals
        // are a no-op, not a corruption).
        let cell = ShardMetrics::default();
        cell.add_busy(0);
        cell.add_busy(u64::MAX - 5);
        cell.add_busy(10);
        cell.add_idle(u64::MAX);
        cell.add_idle(1);
        let snap = cell.snapshot();
        assert_eq!((snap.busy_nanos, snap.idle_nanos), (u64::MAX, u64::MAX));
        assert_eq!(
            clamped_nanos(std::time::Duration::from_secs(u64::MAX)),
            u64::MAX
        );
        assert_eq!(clamped_nanos(std::time::Duration::from_nanos(7)), 7);
    }

    #[test]
    fn totals_are_field_wise_sums() {
        let a = RuntimeStats {
            commands: 3,
            updates_applied: 10,
            rejected: 1,
            queue_full_stalls: 2,
            groups: 2,
            journal_fsyncs: 1,
            busy_nanos: 100,
            idle_nanos: 900,
        };
        let b = RuntimeStats {
            commands: 7,
            ..Default::default()
        };
        let report = RuntimeReport::from_shards(vec![a, b]);
        assert_eq!(report.totals.commands, 10);
        assert_eq!(report.totals.updates_applied, 10);
        assert_eq!(report.per_shard.len(), 2);
        assert!((a.utilization() - 0.1).abs() < 1e-12);
        assert_eq!(RuntimeStats::default().utilization(), 0.0);
        let rendered = report.to_string();
        assert!(rendered.contains("shard") && rendered.contains("all"));
    }
}
