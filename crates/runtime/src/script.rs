//! Feeding serialized command traffic through the executor.
//!
//! [`ScriptSource`] adapts the line-based command text format of
//! `fourcycle_service::command` (`parse_script`) to the runtime: a parsed
//! script replays either request-at-a-time ([`ScriptSource::replay`]) or
//! pipelined ([`ScriptSource::replay_pipelined`] — all requests submitted
//! before any reply is collected, so independent sessions execute
//! concurrently across shards).
//!
//! Replaying a script through the runtime is semantically identical to
//! replaying it through one `CycleCountService` on one thread: every
//! command of one graph is served by one shard in submission order, and
//! commands of different graphs commute. The facade proptests
//! (`proptest_runtime.rs`) pin that equivalence for every `Request`
//! variant.

use crate::{Pipeline, RuntimeError, ShardedRuntime};
use fourcycle_service::{parse_script, Request, Response};

/// A parsed command script ready to be driven through a runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptSource {
    requests: Vec<Request>,
}

impl ScriptSource {
    /// Parses a script in the service text format (one command per line,
    /// `#` comments); parse errors carry 1-based line numbers.
    pub fn parse(script: &str) -> Result<Self, RuntimeError> {
        Ok(Self {
            requests: parse_script(script)?,
        })
    }

    /// Wraps an already-built request sequence.
    pub fn from_requests(requests: Vec<Request>) -> Self {
        Self { requests }
    }

    /// The requests, in script order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of commands in the script.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the script holds no commands.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Replays the script one blocking call at a time, collecting every
    /// command's outcome (rejections do not stop the replay — the runtime,
    /// like the service, leaves state untouched on a failed command).
    pub fn replay(&self, runtime: &ShardedRuntime) -> Vec<Result<Response, RuntimeError>> {
        self.requests
            .iter()
            .map(|r| runtime.call(r.clone()))
            .collect()
    }

    /// Replays the script pipelined: every request is submitted before any
    /// reply is awaited, so commands addressed to different shards execute
    /// concurrently while per-graph submission order is preserved (each
    /// graph lives on exactly one shard, and one submitter's sends to one
    /// shard arrive in order). Outcomes are returned in script order.
    pub fn replay_pipelined(
        &self,
        runtime: &ShardedRuntime,
    ) -> Vec<Result<Response, RuntimeError>> {
        let mut pipeline = Pipeline::new(runtime);
        for request in &self.requests {
            pipeline.submit(request.clone());
        }
        pipeline.drain()
    }
}
