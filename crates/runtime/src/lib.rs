//! `fourcycle-runtime` — the sharded concurrent execution layer of the
//! workspace.
//!
//! Everything below this crate executes on the caller's thread:
//! [`CycleCountService`] is a plain single-threaded object serving one
//! command at a time. The ROADMAP's north star ("heavy traffic from
//! millions of users", "as fast as the hardware allows") needs the missing
//! piece this crate provides: a **thread-per-shard executor** that owns `N`
//! service shards and serves many independent graph sessions in parallel.
//!
//! # Architecture
//!
//! ```text
//!                 clients (any number of threads)
//!        call() / submit() ──► route by hash(GraphId) ──┐
//!                                                       ▼
//!          ┌──────────────┬──────────────┬──────────────┐
//!  bounded │  mailbox 0   │  mailbox 1   │  mailbox N-1 │  (sync_channel,
//!          └──────┬───────┴──────┬───────┴──────┬───────┘   backpressure)
//!                 ▼              ▼              ▼
//!           worker thread  worker thread  worker thread    (std::thread)
//!           CycleCount-    CycleCount-    CycleCount-
//!           Service #0     Service #1     Service #N-1
//!                 │              │              │
//!                 └── per-request reply channel ┴──► Ticket::wait()
//! ```
//!
//! * **Sharding.** Every [`Request`] that addresses a graph is routed to
//!   `hash(GraphId) mod N`; a graph lives its whole life on one shard, so
//!   shard workers need no locks — each owns its `CycleCountService`
//!   outright, and per-graph command order equals submission order (one
//!   submitter's sends to one mailbox are FIFO). Service-wide commands
//!   ([`Request::ListGraphs`]) fan out to all shards and merge.
//! * **Backpressure.** Mailboxes are *bounded* (`RuntimeConfig::
//!   mailbox_depth`): a submitter that outruns a shard blocks on its
//!   mailbox instead of growing an unbounded queue, and every such stall is
//!   counted in [`RuntimeStats::queue_full_stalls`].
//! * **Intra-shard parallelism.** Each shard's worker is a *dispatcher*:
//!   it drains its mailbox into a group, partitions the group into
//!   registry barriers and per-session run queues, and — with
//!   [`RuntimeConfig::shard_parallelism`] > 1 — applies different
//!   sessions' runs concurrently on a small per-shard pool (sessions are
//!   independent by construction; per-session order and epochs are
//!   unchanged). See the `dispatch` module docs for the data flow.
//! * **Journal group commit.** Under
//!   [`FsyncPolicy::GroupCommit`](fourcycle_store::FsyncPolicy) the
//!   dispatcher journals a whole group, issues **one** fsync for it, and
//!   only then releases the group's replies — fsync-every-1 durability
//!   (reply ⇒ journaled ⇒ durable) at a fraction of the fsync count.
//! * **Two call shapes.** [`ShardedRuntime::call`] is the blocking
//!   request/response path; [`ShardedRuntime::submit`] returns a
//!   [`Ticket`] immediately so callers (and [`Pipeline`] / the
//!   [`ScriptSource`] replayer) can keep many commands in flight across
//!   shards and collect replies later.
//! * **Observability.** Each shard keeps [`RuntimeStats`] (commands,
//!   applied updates, rejections, stalls, busy/idle time); [`ShardedRuntime
//!   ::report`] aggregates them runtime-wide at any moment, and
//!   [`ShardedRuntime::shutdown`] returns the final report after draining
//!   every mailbox and joining every worker.
//!
//! See `docs/adr/ADR-004-sharded-runtime.md` for why thread-per-shard with
//! bounded mailboxes was chosen over a shared-lock service.
//!
//! # Quick start
//!
//! ```
//! use fourcycle_core::EngineKind;
//! use fourcycle_graph::{LayeredUpdate, Rel};
//! use fourcycle_runtime::{RuntimeConfig, ShardedRuntime};
//! use fourcycle_service::{GraphId, Request, Response};
//!
//! let runtime = ShardedRuntime::start(
//!     RuntimeConfig::new().shards(2).engine(EngineKind::Threshold),
//! );
//!
//! // Two tenants; their sessions may land on different shards, and their
//! // traffic executes concurrently.
//! for id in [GraphId(1), GraphId(2)] {
//!     runtime.call(Request::CreateGraph { id, spec: None }).unwrap();
//! }
//! let square = vec![
//!     LayeredUpdate::insert(Rel::A, 1, 2),
//!     LayeredUpdate::insert(Rel::B, 2, 3),
//!     LayeredUpdate::insert(Rel::C, 3, 4),
//!     LayeredUpdate::insert(Rel::D, 4, 1),
//! ];
//! let response = runtime
//!     .call(Request::ApplyLayeredBatch { id: GraphId(1), updates: square })
//!     .unwrap();
//! assert_eq!(response, Response::Applied { id: GraphId(1), count: 1, epoch: 4 });
//!
//! let report = runtime.shutdown();
//! assert_eq!(report.totals.commands, 3);
//! assert_eq!(report.totals.updates_applied, 4);
//! ```

// Unit tests keep their unwrap/cast freedoms; the workspace clippy
// lints target only compiled production code (ADR-010).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

mod dispatch;
pub mod error;
pub mod script;
pub mod stats;

pub use error::RuntimeError;
pub use script::ScriptSource;
pub use stats::{RuntimeReport, RuntimeStats};

use fourcycle_core::{EngineConfig, EngineKind};
use fourcycle_service::{
    CycleCountService, GraphId, Request, Response, ServiceError, SessionSpec, WorkloadMode,
};
use fourcycle_store::{FsyncPolicy, JournalConfig, JournalStore};
use fourcycle_telemetry::{Telemetry, TelemetryConfig};
use stats::ShardMetrics;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Configuration of a [`ShardedRuntime`], builder-style.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    shards: usize,
    mailbox_depth: usize,
    /// Worker threads per shard (dispatcher included); 1 = serial.
    parallelism: usize,
    default_spec: SessionSpec,
    journal: Option<JournalConfig>,
    telemetry: TelemetryConfig,
}

impl Default for RuntimeConfig {
    /// One shard per available core (capped at 8), mailbox depth 64,
    /// default [`SessionSpec`].
    fn default() -> Self {
        let shards = thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2);
        Self {
            shards,
            mailbox_depth: 64,
            parallelism: 1,
            default_spec: SessionSpec::default(),
            journal: None,
            telemetry: TelemetryConfig::disabled(),
        }
    }
}

impl RuntimeConfig {
    /// The default configuration (see [`RuntimeConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of shard workers (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the bounded mailbox depth per shard (clamped to at least 1).
    /// Submissions beyond this depth block — the backpressure that keeps a
    /// fast producer from queueing unbounded work on a slow shard.
    pub fn mailbox_depth(mut self, depth: usize) -> Self {
        self.mailbox_depth = depth.max(1);
        self
    }

    /// Sets the worker threads *per shard* (clamped to at least 1; the
    /// default). Sessions within a shard are independent, so a dispatcher
    /// may apply batched commands for different `GraphId`s concurrently —
    /// per-session command order and epoch semantics are unchanged (see
    /// the `dispatch` module). At 1, segments run inline on the shard
    /// thread and no pool threads are spawned.
    pub fn shard_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// The configured worker threads per shard.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Sets the spec sessions are built from when a `CreateGraph` command
    /// carries none.
    pub fn spec(mut self, spec: SessionSpec) -> Self {
        self.default_spec = spec;
        self
    }

    /// Sets the default engine kind (shorthand over [`RuntimeConfig::spec`]).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.default_spec.kind = kind;
        self
    }

    /// Sets the default engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.default_spec.config = config;
        self
    }

    /// Sets the default workload mode.
    pub fn mode(mut self, mode: WorkloadMode) -> Self {
        self.default_spec.mode = mode;
        self
    }

    /// Enables durable journaling (default policy: fsync every command, no
    /// automatic checkpoints) into `dir` — one `shard-<k>.wal`/`.ckpt` pair
    /// per shard plus a `manifest.json` pinning the topology. Starting a
    /// runtime on a directory that already holds journals **recovers**
    /// every shard's sessions (checkpoint + tail replay) before serving
    /// traffic; see `fourcycle-store`.
    pub fn journal_dir(self, dir: impl Into<PathBuf>) -> Self {
        self.journal(JournalConfig::new(dir))
    }

    /// Enables durable journaling with explicit knobs (fsync policy,
    /// checkpoint cadence).
    pub fn journal(mut self, config: JournalConfig) -> Self {
        self.journal = Some(config);
        self
    }

    /// The journal configuration, if journaling is enabled.
    pub fn journal_config(&self) -> Option<&JournalConfig> {
        self.journal.as_ref()
    }

    /// Enables (or reconfigures) telemetry: per-shard stage-latency
    /// histograms and the structured event ring (see
    /// `fourcycle-telemetry`). Disabled by default; when disabled the
    /// runtime allocates no telemetry state and the hot path pays one
    /// branch per request.
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = config;
        self
    }

    /// The telemetry configuration.
    pub fn telemetry_config(&self) -> TelemetryConfig {
        self.telemetry
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The configured per-shard mailbox depth.
    pub fn mailbox_len(&self) -> usize {
        self.mailbox_depth
    }

    /// The configured default session spec.
    pub fn default_spec(&self) -> SessionSpec {
        self.default_spec
    }
}

/// One unit of work in a shard mailbox: the command plus the channel its
/// outcome is reported on.
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) reply: mpsc::Sender<Result<Response, ServiceError>>,
    /// Submission time, stamped only when telemetry is enabled (the one
    /// branch the disabled path pays per request); the shard worker turns
    /// it into the queue-wait stage sample.
    pub(crate) enqueued_at: Option<Instant>,
}

/// A pending reply: returned by [`ShardedRuntime::submit`], redeemed with
/// [`Ticket::wait`]. Dropping a ticket abandons the reply (the command
/// still executes — fire-and-forget).
#[must_use = "a ticket holds a pending reply; wait() it or the response is lost"]
pub struct Ticket {
    /// Replies expected (1, or the shard count for fan-out commands).
    expected: usize,
    rx: mpsc::Receiver<Result<Response, ServiceError>>,
    /// Set when submission itself failed (shard mailbox disconnected).
    dead: bool,
}

impl Ticket {
    /// Blocks until the command's outcome is available.
    ///
    /// Fan-out commands (`ListGraphs`) wait for every shard and merge the
    /// per-shard listings into one sorted [`Response::Graphs`].
    pub fn wait(self) -> Result<Response, RuntimeError> {
        if self.dead {
            return Err(RuntimeError::ShardUnavailable);
        }
        if self.expected == 1 {
            let outcome = self.rx.recv().map_err(|_| RuntimeError::ShardUnavailable)?;
            return outcome.map_err(RuntimeError::Service);
        }
        let mut ids: Vec<GraphId> = Vec::new();
        for _ in 0..self.expected {
            let outcome = self.rx.recv().map_err(|_| RuntimeError::ShardUnavailable)?;
            match outcome.map_err(RuntimeError::Service)? {
                Response::Graphs { ids: shard_ids } => ids.extend(shard_ids),
                // lint: allow(no-panic) shard workers answer Graphs for Graphs
                other => unreachable!("fan-out commands only list graphs, got {other:?}"),
            }
        }
        ids.sort_unstable();
        // Merged listings are globally sorted AND duplicate-free: a graph
        // lives on exactly one shard (deterministic routing), so shard
        // replies are disjoint however they interleave. Strictly-ascending
        // is the pinned guarantee (see the merge tests).
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "fan-out merge produced unsorted or duplicate ids: {ids:?}"
        );
        Ok(Response::Graphs { ids })
    }
}

/// The outcome of a non-blocking [`ShardedRuntime::try_submit`].
#[must_use = "a Busy outcome carries the request back; drop it and the command is lost"]
pub enum SubmitOutcome {
    /// The command is in its shard's mailbox; redeem the ticket as usual.
    Queued(Ticket),
    /// The shard's mailbox was full. The command was **not** enqueued and
    /// is handed back unchanged so the caller can retry it later (or
    /// surface a `busy` rejection, as the TCP server does).
    Busy(Request),
}

/// A batch of in-flight submissions against one runtime: submit many, then
/// [`drain`](Pipeline::drain) their outcomes in submission order. The
/// fire-collect shape keeps every shard's mailbox full instead of
/// round-tripping one command at a time.
pub struct Pipeline<'rt> {
    runtime: &'rt ShardedRuntime,
    tickets: Vec<Ticket>,
}

impl<'rt> Pipeline<'rt> {
    /// An empty pipeline over `runtime`.
    pub fn new(runtime: &'rt ShardedRuntime) -> Self {
        Self {
            runtime,
            tickets: Vec::new(),
        }
    }

    /// Fires one command without waiting for its reply.
    pub fn submit(&mut self, request: Request) {
        self.tickets.push(self.runtime.submit(request));
    }

    /// Number of submissions not yet drained.
    pub fn pending(&self) -> usize {
        self.tickets.len()
    }

    /// Collects every outstanding outcome, in submission order, emptying
    /// the pipeline.
    pub fn drain(&mut self) -> Vec<Result<Response, RuntimeError>> {
        self.tickets.drain(..).map(Ticket::wait).collect()
    }
}

/// The thread-per-shard executor (see the crate docs for the architecture).
///
/// The handle is `Sync`: clients on any number of threads may `call` /
/// `submit` concurrently through one shared reference (the load generator
/// in `fourcycle-bench` does exactly that).
pub struct ShardedRuntime {
    config: RuntimeConfig,
    mailboxes: Vec<SyncSender<Job>>,
    metrics: Vec<Arc<ShardMetrics>>,
    workers: Vec<JoinHandle<()>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl ShardedRuntime {
    /// Starts `config.shard_count()` shard workers, each owning a
    /// `CycleCountService` built around the config's default spec.
    ///
    /// Infallible for memory-only runtimes; with journaling enabled
    /// ([`RuntimeConfig::journal_dir`]) this is [`Self::try_start`] +
    /// `expect` — a runtime that cannot open its durability tier refuses
    /// to start rather than silently serving memory-only.
    pub fn start(config: RuntimeConfig) -> Self {
        // lint: allow(no-panic) documented panicking convenience over try_start
        Self::try_start(config).expect("failed to start sharded runtime")
    }

    /// Starts the runtime, surfacing journal-store failures
    /// ([`RuntimeError::Store`]) instead of panicking.
    ///
    /// With journaling enabled, each shard worker's service is first
    /// **recovered** from `shard-<k>.ckpt` + `shard-<k>.wal` (fresh
    /// directories start empty) and then journals every successful
    /// mutating command it serves; because the journal write happens
    /// before the reply is sent, a client that has seen a response holds
    /// a journaled command. The directory's manifest pins shard count,
    /// mode and engine — restarting with a different topology is an error,
    /// not a silent re-route.
    pub fn try_start(config: RuntimeConfig) -> Result<Self, RuntimeError> {
        let telemetry = config
            .telemetry
            .is_enabled()
            .then(|| Arc::new(Telemetry::new(config.telemetry, config.shards)));
        let store = match &config.journal {
            Some(journal) => {
                // The journal layer emits recovery/checkpoint/chaos events
                // into the same ring the shard workers use.
                let mut journal = journal.clone();
                if let Some(tel) = &telemetry {
                    journal = journal.events(tel.ring().clone());
                }
                Some(JournalStore::open(
                    journal,
                    config.shards,
                    config.default_spec,
                )?)
            }
            None => None,
        };
        let mut mailboxes = Vec::with_capacity(config.shards);
        let mut metrics = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            // Built (and, when journaling, recovered) on the caller's
            // thread so failures surface here, then moved into the worker.
            let service = match &store {
                Some(store) => store.open_shard(shard)?,
                None => CycleCountService::builder()
                    .engine(config.default_spec.kind)
                    .config(config.default_spec.config)
                    .mode(config.default_spec.mode)
                    .build(),
            };
            let (tx, rx) = mpsc::sync_channel::<Job>(config.mailbox_depth);
            let cell = Arc::new(ShardMetrics::default());
            let worker_cell = Arc::clone(&cell);
            // Group-commit reply holding engages iff the journal policy
            // asks for it; the dispatcher is the group's fsync leader.
            let group_commit = config.journal.as_ref().and_then(|j| match j.fsync {
                FsyncPolicy::GroupCommit {
                    max_wait,
                    max_batch,
                } => Some(dispatch::GroupCommitKnobs {
                    max_wait,
                    max_batch: usize::try_from(max_batch.max(1)).unwrap_or(usize::MAX),
                }),
                _ => None,
            });
            let parallelism = config.parallelism;
            let worker_telemetry = telemetry.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("fourcycle-shard-{shard}"))
                    .spawn(move || {
                        dispatch::shard_worker(
                            rx,
                            worker_cell,
                            service,
                            shard,
                            parallelism,
                            group_commit,
                            worker_telemetry,
                        )
                    })
                    // lint: allow(no-panic) workers spawn at startup, before serving
                    .expect("spawn shard worker"),
            );
            mailboxes.push(tx);
            metrics.push(cell);
        }
        Ok(Self {
            config,
            mailboxes,
            metrics,
            workers,
            telemetry,
        })
    }

    /// Starts a runtime with the default configuration.
    pub fn with_defaults() -> Self {
        Self::start(RuntimeConfig::default())
    }

    /// The configuration the runtime was started with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.mailboxes.len()
    }

    /// The shard a graph lives on: `hash(id) mod shards`, stable for the
    /// lifetime of the runtime.
    // lint: the remainder is < the shard count, which is a usize
    #[allow(clippy::cast_possible_truncation)]
    pub fn shard_of(&self, id: GraphId) -> usize {
        let shards = u64::try_from(self.mailboxes.len()).unwrap_or(u64::MAX);
        // lint: allow(no-as-cast) remainder < shard count, fits usize
        (splitmix64(id.0) % shards) as usize
    }

    /// Executes one command, blocking for its outcome. Takes the request
    /// by value so batch payloads move straight into the shard mailbox
    /// (callers replaying a retained script clone explicitly, as
    /// [`ScriptSource::replay`] does).
    pub fn call(&self, request: Request) -> Result<Response, RuntimeError> {
        self.submit(request).wait()
    }

    /// Starts an empty fire-collect pipeline over this runtime.
    pub fn pipeline(&self) -> Pipeline<'_> {
        Pipeline::new(self)
    }

    /// Fires one command, returning a [`Ticket`] for its eventual outcome.
    ///
    /// If the target shard's mailbox is full, this blocks until the shard
    /// catches up (counted in [`RuntimeStats::queue_full_stalls`]) — the
    /// runtime's backpressure. Commands without a graph id fan out to every
    /// shard.
    pub fn submit(&self, request: Request) -> Ticket {
        let (reply, rx) = mpsc::channel();
        let enqueued_at = self.telemetry.as_ref().map(|_| Instant::now());
        match request.graph_id() {
            Some(id) => {
                let shard = self.shard_of(id);
                let dead = !self.send(
                    shard,
                    Job {
                        request,
                        reply,
                        enqueued_at,
                    },
                );
                Ticket {
                    expected: 1,
                    rx,
                    dead,
                }
            }
            None => {
                let expected = self.mailboxes.len();
                let mut dead = false;
                for shard in 0..expected {
                    let job = Job {
                        request: request.clone(),
                        reply: reply.clone(),
                        enqueued_at,
                    };
                    dead |= !self.send(shard, job);
                }
                Ticket { expected, rx, dead }
            }
        }
    }

    /// Fires one command **without blocking**: if the target shard's
    /// mailbox is full the request is handed back as
    /// [`SubmitOutcome::Busy`] instead of waiting for the shard to catch
    /// up. This is the hook the TCP front door's per-connection
    /// backpressure is built on — a full mailbox becomes a `busy` wire
    /// response the client can retry, not a reader thread parked on a
    /// stranger's traffic. Every `Busy` is counted in
    /// [`RuntimeStats::queue_full_stalls`], the same accounting the
    /// blocking path uses.
    ///
    /// Fan-out commands (`ListGraphs`) never report `Busy`: they enqueue on
    /// *every* shard, and a partial fan-out could not be handed back, so
    /// they take the blocking [`ShardedRuntime::submit`] path internally.
    pub fn try_submit(&self, request: Request) -> SubmitOutcome {
        let Some(id) = request.graph_id() else {
            return SubmitOutcome::Queued(self.submit(request));
        };
        let shard = self.shard_of(id);
        let (reply, rx) = mpsc::channel();
        let enqueued_at = self.telemetry.as_ref().map(|_| Instant::now());
        match self.mailboxes[shard].try_send(Job {
            request,
            reply,
            enqueued_at,
        }) {
            Ok(()) => SubmitOutcome::Queued(Ticket {
                expected: 1,
                rx,
                dead: false,
            }),
            Err(TrySendError::Full(job)) => {
                self.metrics[shard]
                    .queue_full_stalls
                    .fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Busy(job.request)
            }
            Err(TrySendError::Disconnected(_)) => SubmitOutcome::Queued(Ticket {
                expected: 1,
                rx,
                dead: true,
            }),
        }
    }

    /// Live statistics of one shard.
    pub fn stats(&self, shard: usize) -> RuntimeStats {
        self.metrics[shard].snapshot()
    }

    /// Live runtime-wide report (per-shard statistics plus totals).
    pub fn report(&self) -> RuntimeReport {
        RuntimeReport::from_shards(self.metrics.iter().map(|m| m.snapshot()).collect())
    }

    /// The live telemetry registry, when telemetry is enabled
    /// ([`RuntimeConfig::telemetry`]). Clone the `Arc` to keep observing
    /// (snapshots, ring drains) while the runtime serves traffic — or
    /// after handing the runtime to a server front door.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Graceful shutdown: closes every mailbox, lets each worker drain the
    /// commands already queued (their tickets still receive replies), joins
    /// all workers and returns the final report.
    pub fn shutdown(mut self) -> RuntimeReport {
        self.stop_workers();
        self.report()
    }

    /// Delivers a job to a shard with backpressure accounting; returns
    /// `false` if the shard is gone.
    fn send(&self, shard: usize, job: Job) -> bool {
        match self.mailboxes[shard].try_send(job) {
            Ok(()) => true,
            Err(TrySendError::Full(job)) => {
                self.metrics[shard]
                    .queue_full_stalls
                    .fetch_add(1, Ordering::Relaxed);
                self.mailboxes[shard].send(job).is_ok()
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    }

    fn stop_workers(&mut self) {
        self.mailboxes.clear(); // disconnects; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// SplitMix64 finalizer — the shard router. Sequential graph ids (the
/// common tenant-minting pattern) spread uniformly instead of striping.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fourcycle_graph::{LayeredUpdate, Rel};

    fn square(base: u32) -> Vec<LayeredUpdate> {
        vec![
            LayeredUpdate::insert(Rel::A, base + 1, base + 2),
            LayeredUpdate::insert(Rel::B, base + 2, base + 3),
            LayeredUpdate::insert(Rel::C, base + 3, base + 4),
            LayeredUpdate::insert(Rel::D, base + 4, base + 1),
        ]
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let runtime = ShardedRuntime::start(RuntimeConfig::new().shards(3));
        for raw in 0..64 {
            let id = GraphId(raw);
            let shard = runtime.shard_of(id);
            assert!(shard < 3);
            assert_eq!(shard, runtime.shard_of(id), "routing must be stable");
        }
        // With a sane hash, 64 sequential ids hit every one of 3 shards.
        let hit: std::collections::HashSet<usize> =
            (0..64).map(|raw| runtime.shard_of(GraphId(raw))).collect();
        assert_eq!(hit.len(), 3);
    }

    #[test]
    fn call_roundtrips_and_errors_pass_through() {
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(2)
                .engine(EngineKind::Simple)
                .mailbox_depth(4),
        );
        let id = GraphId(9);
        assert_eq!(
            runtime.call(Request::CreateGraph { id, spec: None }),
            Ok(Response::Created { id })
        );
        assert_eq!(
            runtime.call(Request::CreateGraph { id, spec: None }),
            Err(RuntimeError::Service(ServiceError::GraphAlreadyExists(id)))
        );
        assert_eq!(
            runtime.call(Request::ApplyLayeredBatch {
                id,
                updates: square(0),
            }),
            Ok(Response::Applied {
                id,
                count: 1,
                epoch: 4
            })
        );
        let report = runtime.shutdown();
        assert_eq!(report.totals.commands, 3);
        assert_eq!(report.totals.updates_applied, 4);
        assert_eq!(report.totals.rejected, 1);
    }

    #[test]
    fn list_graphs_fans_out_and_merges_sorted() {
        let runtime = ShardedRuntime::start(RuntimeConfig::new().shards(4));
        let mut expected: Vec<GraphId> = (0..16).map(GraphId).collect();
        for &id in &expected {
            runtime
                .call(Request::CreateGraph { id, spec: None })
                .unwrap();
        }
        expected.sort();
        assert_eq!(
            runtime.call(Request::ListGraphs),
            Ok(Response::Graphs { ids: expected })
        );
        // The 16 sessions really are spread over several shards.
        let report = runtime.report();
        let serving = report.per_shard.iter().filter(|s| s.commands > 1).count();
        assert!(serving >= 2, "{report:?}");
    }

    /// Correctness-audit pin: the `ListGraphs` fan-out merge must stay
    /// globally sorted and duplicate-free while shard replies interleave
    /// with concurrent creates/drops and competing listers. Shard replies
    /// arrive in arbitrary order on the shared reply channel; only the
    /// final merged vector is guaranteed, and this hammers it.
    #[test]
    fn list_graphs_merge_is_sorted_and_duplicate_free_under_interleaving() {
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(4)
                .engine(EngineKind::Simple)
                .mailbox_depth(2),
        );
        thread::scope(|scope| {
            for writer in 0..3u64 {
                let runtime = &runtime;
                scope.spawn(move || {
                    for i in 0..40u64 {
                        let id = GraphId(writer * 1000 + i);
                        runtime
                            .call(Request::CreateGraph { id, spec: None })
                            .unwrap();
                        if i % 5 == 4 {
                            runtime.call(Request::DropGraph { id }).unwrap();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let runtime = &runtime;
                scope.spawn(move || {
                    for _ in 0..25 {
                        match runtime.call(Request::ListGraphs).unwrap() {
                            Response::Graphs { ids } => {
                                assert!(
                                    ids.windows(2).all(|w| w[0] < w[1]),
                                    "unsorted or duplicated merge: {ids:?}"
                                );
                            }
                            other => panic!("expected listing, got {other:?}"),
                        }
                    }
                });
            }
        });
        // Quiescent final listing: exactly the non-dropped ids, ascending.
        let expected: Vec<GraphId> = (0..3u64)
            .flat_map(|w| (0..40u64).map(move |i| (w, i)))
            .filter(|&(_, i)| i % 5 != 4)
            .map(|(w, i)| GraphId(w * 1000 + i))
            .collect();
        assert_eq!(
            runtime.call(Request::ListGraphs),
            Ok(Response::Graphs { ids: expected })
        );
    }

    #[test]
    fn pipeline_preserves_submission_order_per_graph() {
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(2)
                .engine(EngineKind::Threshold)
                .mailbox_depth(2),
        );
        let graphs: Vec<GraphId> = (0..6).map(GraphId).collect();
        let mut pipeline = runtime.pipeline();
        for &id in &graphs {
            pipeline.submit(Request::CreateGraph { id, spec: None });
        }
        for &id in &graphs {
            pipeline.submit(Request::ApplyLayeredBatch {
                id,
                updates: square(0),
            });
            pipeline.submit(Request::GetSnapshot { id });
        }
        assert_eq!(pipeline.pending(), 18);
        let outcomes = pipeline.drain();
        assert_eq!(pipeline.pending(), 0);
        for (i, outcome) in outcomes.iter().enumerate() {
            let response = outcome.as_ref().unwrap_or_else(|e| panic!("#{i}: {e}"));
            if let Response::Snapshot { snapshot, .. } = response {
                assert_eq!((snapshot.count, snapshot.epoch), (1, 4));
            }
        }
        // Backpressure on a depth-2 mailbox with 18 pipelined submissions
        // may or may not stall depending on scheduling; the counter only
        // moves monotonically either way.
        let report = runtime.shutdown();
        assert_eq!(report.totals.commands, 18);
        assert_eq!(report.totals.updates_applied, 6 * 4);
    }

    #[test]
    fn shutdown_drains_queued_work_and_drop_is_clean() {
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(1)
                .engine(EngineKind::Simple)
                .mailbox_depth(1),
        );
        let id = GraphId(1);
        let mut pipeline = runtime.pipeline();
        pipeline.submit(Request::CreateGraph { id, spec: None });
        for update in square(0) {
            pipeline.submit(Request::ApplyLayered { id, update });
        }
        pipeline.submit(Request::Count { id });
        // Tickets survive shutdown: the worker drains its mailbox first.
        let outcomes = pipeline.drain();
        assert_eq!(
            outcomes.last().unwrap().as_ref().unwrap(),
            &Response::Count { id, count: 1 }
        );
        let report = runtime.shutdown();
        assert_eq!(report.totals.commands, 6);
        // Dropping a runtime without explicit shutdown must also join
        // cleanly (covered by every other test's scope exit).
        drop(ShardedRuntime::start(RuntimeConfig::new().shards(2)));
    }

    /// End-to-end durability: a journaled runtime is stopped, restarted on
    /// the same directory, recovers every shard's sessions, and keeps
    /// journaling; a topology change is refused via the manifest.
    #[test]
    fn journaled_runtime_recovers_across_restarts() {
        let dir = std::env::temp_dir().join("fourcycle-runtime-journal-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = || {
            RuntimeConfig::new()
                .shards(2)
                .engine(EngineKind::Threshold)
                .journal_dir(&dir)
        };

        let runtime = ShardedRuntime::try_start(config()).unwrap();
        for id in [GraphId(1), GraphId(2), GraphId(3)] {
            runtime
                .call(Request::CreateGraph { id, spec: None })
                .unwrap();
        }
        runtime
            .call(Request::ApplyLayeredBatch {
                id: GraphId(2),
                updates: square(0),
            })
            .unwrap();
        runtime.shutdown();

        // Restart on the same directory: state is back, including epochs.
        let revived = ShardedRuntime::try_start(config()).unwrap();
        assert_eq!(
            revived.call(Request::ListGraphs),
            Ok(Response::Graphs {
                ids: vec![GraphId(1), GraphId(2), GraphId(3)]
            })
        );
        match revived
            .call(Request::GetSnapshot { id: GraphId(2) })
            .unwrap()
        {
            Response::Snapshot { snapshot, .. } => {
                assert_eq!((snapshot.count, snapshot.epoch), (1, 4));
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        // The revived runtime journals new commands onto the same history.
        revived
            .call(Request::ApplyLayered {
                id: GraphId(1),
                update: LayeredUpdate::insert(Rel::A, 1, 2),
            })
            .unwrap();
        revived.shutdown();

        // A different shard count must be refused, not silently re-routed.
        match ShardedRuntime::try_start(config().shards(4)) {
            Err(RuntimeError::Store(fourcycle_store::StoreError::ManifestMismatch {
                field: "shards",
                ..
            })) => {}
            Err(other) => panic!("expected a shards manifest mismatch, got {other}"),
            Ok(_) => panic!("topology change must be refused"),
        }

        let third = ShardedRuntime::try_start(config()).unwrap();
        match third.call(Request::GetSnapshot { id: GraphId(1) }).unwrap() {
            Response::Snapshot { snapshot, .. } => {
                assert_eq!((snapshot.total_edges, snapshot.epoch), (1, 1));
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        third.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn script_source_replays_serialized_traffic() {
        let script = "
            # two tenants, one square each
            create g1 layered simple
            create g2 layered threshold
            layered g1 A+1:2 B+2:3 C+3:4 D+4:1
            layered g2 A+1:2 B+2:3 C+3:4 D+4:1
            count g1
            snapshot g2
            list
        ";
        let source = ScriptSource::parse(script).unwrap();
        assert_eq!(source.len(), 7);
        for outcomes in [
            source.replay(&ShardedRuntime::start(RuntimeConfig::new().shards(2))),
            source.replay_pipelined(&ShardedRuntime::start(RuntimeConfig::new().shards(3))),
        ] {
            assert_eq!(outcomes.len(), 7);
            assert_eq!(
                outcomes[4].as_ref().unwrap(),
                &Response::Count {
                    id: GraphId(1),
                    count: 1
                }
            );
            match outcomes[5].as_ref().unwrap() {
                Response::Snapshot { snapshot, .. } => {
                    assert_eq!((snapshot.count, snapshot.epoch), (1, 4))
                }
                other => panic!("expected snapshot, got {other:?}"),
            }
            assert_eq!(
                outcomes[6].as_ref().unwrap(),
                &Response::Graphs {
                    ids: vec![GraphId(1), GraphId(2)]
                }
            );
        }
        assert!(matches!(
            ScriptSource::parse("frobnicate g1"),
            Err(RuntimeError::Parse(_))
        ));
    }

    /// Intra-shard parallelism end-to-end on one shard: pipelined traffic
    /// for many sessions (plus mid-stream barriers and unknown-graph
    /// errors) produces exactly the serial semantics — same snapshots,
    /// same error attribution, same totals — while segments fan out over
    /// the per-shard pool.
    #[test]
    fn intra_shard_parallelism_preserves_serial_semantics() {
        let parallel = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(1)
                .shard_parallelism(4)
                .engine(EngineKind::Threshold)
                .mailbox_depth(32),
        );
        assert_eq!(parallel.config().parallelism(), 4);
        let serial = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(1)
                .engine(EngineKind::Threshold)
                .mailbox_depth(32),
        );
        let graphs: Vec<GraphId> = (0..6).map(GraphId).collect();
        let run = |runtime: &ShardedRuntime| {
            let mut pipeline = runtime.pipeline();
            for &id in &graphs {
                pipeline.submit(Request::CreateGraph { id, spec: None });
            }
            // Interleave sessions so drained groups hold runs for many
            // sessions at once; sprinkle reads, an unknown graph, and a
            // drop/create barrier pair mid-stream.
            for round in 0..8u32 {
                for &id in &graphs {
                    pipeline.submit(Request::ApplyLayered {
                        id,
                        update: LayeredUpdate::insert(Rel::A, round + 1, round + 2),
                    });
                }
                pipeline.submit(Request::Count { id: GraphId(777) }); // unknown
                if round == 3 {
                    pipeline.submit(Request::DropGraph { id: graphs[0] });
                    pipeline.submit(Request::CreateGraph {
                        id: graphs[0],
                        spec: None,
                    });
                }
                for &id in &graphs {
                    pipeline.submit(Request::ApplyLayeredBatch {
                        id,
                        updates: square(round),
                    });
                }
            }
            for &id in &graphs {
                pipeline.submit(Request::GetSnapshot { id });
            }
            pipeline.drain()
        };
        let got = run(&parallel);
        let expected = run(&serial);
        assert_eq!(got.len(), expected.len());
        for (slot, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g, e, "slot {slot} diverged");
        }
        let p_report = parallel.shutdown();
        let s_report = serial.shutdown();
        assert_eq!(p_report.totals.commands, s_report.totals.commands);
        assert_eq!(
            p_report.totals.updates_applied,
            s_report.totals.updates_applied
        );
        assert_eq!(p_report.totals.rejected, s_report.totals.rejected);
        // Pipelined traffic on one dispatcher must actually batch.
        assert!(
            p_report.totals.groups < p_report.totals.commands,
            "{p_report:?}"
        );
    }

    /// Group commit end-to-end: replies are only released after the
    /// group's fsync, many commands share one fsync, and a restart
    /// recovers every replied command.
    #[test]
    fn group_commit_batches_fsyncs_and_recovers() {
        let dir = std::env::temp_dir().join("fourcycle-runtime-group-commit-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = || {
            RuntimeConfig::new()
                .shards(1)
                .shard_parallelism(2)
                .engine(EngineKind::Simple)
                .mailbox_depth(32)
                .journal(
                    JournalConfig::new(&dir).fsync(fourcycle_store::FsyncPolicy::group_commit()),
                )
        };
        let runtime = ShardedRuntime::try_start(config()).unwrap();
        let graphs: Vec<GraphId> = (0..4).map(GraphId).collect();
        let mut pipeline = runtime.pipeline();
        for &id in &graphs {
            pipeline.submit(Request::CreateGraph { id, spec: None });
        }
        for round in 0..8u32 {
            for &id in &graphs {
                pipeline.submit(Request::ApplyLayeredBatch {
                    id,
                    updates: square(round),
                });
            }
        }
        for outcome in pipeline.drain() {
            outcome.unwrap();
        }
        let report = runtime.shutdown();
        let mutations = 4 + 8 * 4;
        assert_eq!(report.totals.commands, mutations);
        // The point of the protocol: far fewer fsyncs than commands. The
        // exact count depends on how traffic interleaved; a strict bound
        // holds because replies gate on whole groups. (+1: the final
        // shutdown sync.)
        assert!(
            report.totals.journal_fsyncs <= report.totals.groups + 1,
            "{report:?}"
        );
        assert!(report.totals.groups < mutations, "{report:?}");

        // Every replied command survives the restart.
        let revived = ShardedRuntime::try_start(config()).unwrap();
        for &id in &graphs {
            match revived.call(Request::GetSnapshot { id }).unwrap() {
                Response::Snapshot { snapshot, .. } => {
                    assert_eq!(snapshot.epoch, 8 * 4, "graph {id:?}");
                }
                other => panic!("expected snapshot, got {other:?}"),
            }
        }
        revived.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Non-blocking submission: a full mailbox hands the request back as
    /// `Busy` (counted as a stall) instead of parking the caller; once the
    /// shard drains, the same request queues and executes normally, and
    /// fan-out commands always queue.
    #[test]
    fn try_submit_reports_busy_instead_of_blocking() {
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(1)
                .engine(EngineKind::Simple)
                .mailbox_depth(1),
        );
        let id = GraphId(1);
        runtime
            .call(Request::CreateGraph { id, spec: None })
            .unwrap();
        // Saturate the depth-1 mailbox until try_send loses the race, then
        // keep the winning tickets to drain later. Each worker pass pops
        // the mailbox quickly, so loop until we observe a Busy.
        let mut queued = Vec::new();
        let busy_request = loop {
            match runtime.try_submit(Request::ApplyLayered {
                id,
                update: LayeredUpdate::insert(Rel::A, 1, 2),
            }) {
                SubmitOutcome::Queued(ticket) => queued.push(ticket),
                SubmitOutcome::Busy(request) => break request,
            }
        };
        // The request comes back unchanged, and the stall was accounted.
        assert_eq!(
            busy_request,
            Request::ApplyLayered {
                id,
                update: LayeredUpdate::insert(Rel::A, 1, 2),
            }
        );
        assert!(runtime.stats(0).queue_full_stalls >= 1);
        let submitted = queued.len() as u64;
        for ticket in queued {
            // First insert succeeds, the duplicates are service rejections;
            // either way the ticket resolves (Busy never left a dangling
            // reply).
            let _ = ticket.wait();
        }
        // Fan-out commands never report Busy.
        match runtime.try_submit(Request::ListGraphs) {
            SubmitOutcome::Queued(ticket) => {
                assert_eq!(ticket.wait().unwrap(), Response::Graphs { ids: vec![id] });
            }
            SubmitOutcome::Busy(_) => panic!("fan-out commands must queue"),
        }
        let report = runtime.shutdown();
        // create + every queued apply + list; the Busy request never ran.
        assert_eq!(report.totals.commands, 1 + submitted + 1);
    }

    #[test]
    fn concurrent_clients_share_one_handle() {
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(2)
                .engine(EngineKind::Simple)
                .mailbox_depth(4),
        );
        thread::scope(|scope| {
            for client in 0..4u64 {
                let runtime = &runtime;
                scope.spawn(move || {
                    let id = GraphId(100 + client);
                    runtime
                        .call(Request::CreateGraph { id, spec: None })
                        .unwrap();
                    for update in square(0) {
                        runtime.call(Request::ApplyLayered { id, update }).unwrap();
                    }
                    let response = runtime.call(Request::Count { id }).unwrap();
                    assert_eq!(response, Response::Count { id, count: 1 });
                });
            }
        });
        let report = runtime.shutdown();
        assert_eq!(report.totals.commands, 4 * 6);
        assert_eq!(report.totals.updates_applied, 4 * 4);
        assert_eq!(report.totals.rejected, 0);
    }

    /// The stage-accounting differential: with telemetry on, every stage
    /// histogram holds exactly one sample per delivered command — per
    /// shard, not just in total — including the `ListGraphs` fan-out
    /// (one sub-command per shard, each counted in `commands`).
    #[test]
    fn telemetry_stage_counts_match_commands_per_shard() {
        use fourcycle_telemetry::Stage;
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(3)
                .engine(EngineKind::Simple)
                .mailbox_depth(8)
                .telemetry(TelemetryConfig::enabled()),
        );
        let telemetry = runtime.telemetry().cloned().expect("telemetry enabled");
        for raw in 0..9u64 {
            let id = GraphId(raw);
            runtime
                .call(Request::CreateGraph { id, spec: None })
                .unwrap();
            runtime
                .call(Request::ApplyLayeredBatch {
                    id,
                    updates: square(0),
                })
                .unwrap();
        }
        runtime.call(Request::ListGraphs).unwrap();
        let report = runtime.shutdown();
        assert_eq!(report.totals.commands, 9 * 2 + 3);
        let snapshot = telemetry.snapshot();
        for (shard, stats) in report.per_shard.iter().enumerate() {
            for stage in Stage::ALL {
                assert_eq!(
                    snapshot.stage(shard, stage).count(),
                    stats.commands,
                    "shard {shard} stage {} diverged",
                    stage.name()
                );
            }
        }
        // Queue wait was actually measured, not all-zero: the enqueue
        // stamp survives the mailbox (sum can only be 0 if every command
        // waited under a nanosecond, which 21 round-trips never do).
        assert!(snapshot.stage_total(Stage::QueueWait).sum > 0);
    }

    /// With the slow-request threshold at zero every request is "slow":
    /// the ring captures typed [`EventKind::SlowRequest`] events whose
    /// shard and payload are coherent.
    #[test]
    fn slow_request_events_capture_latency_and_shard() {
        use fourcycle_telemetry::EventKind;
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(2)
                .engine(EngineKind::Simple)
                .mailbox_depth(4)
                .telemetry(
                    TelemetryConfig::enabled().slow_request_threshold(std::time::Duration::ZERO),
                ),
        );
        let telemetry = runtime.telemetry().cloned().expect("telemetry enabled");
        let id = GraphId(5);
        runtime
            .call(Request::CreateGraph { id, spec: None })
            .unwrap();
        runtime
            .call(Request::ApplyLayeredBatch {
                id,
                updates: square(0),
            })
            .unwrap();
        runtime.shutdown();
        let slow: Vec<_> = telemetry
            .ring()
            .drain()
            .into_iter()
            .filter(|e| e.kind == EventKind::SlowRequest)
            .collect();
        assert!(!slow.is_empty(), "threshold 0 must flag every request");
        for event in &slow {
            assert!((event.shard as usize) < 2, "{event:?}");
            assert!(event.a > 0, "total nanos recorded: {event:?}");
            assert_eq!(event.b, 0, "threshold echoed: {event:?}");
        }
    }

    /// An observer draining the ring in a tight loop never blocks the
    /// shard workers: emitters drop on lock contention rather than wait,
    /// so all traffic completes and the accounting still adds up.
    #[test]
    fn ring_drain_runs_concurrently_with_traffic() {
        let runtime = ShardedRuntime::start(
            RuntimeConfig::new()
                .shards(2)
                .engine(EngineKind::Simple)
                .mailbox_depth(8)
                .telemetry(
                    TelemetryConfig::enabled()
                        .slow_request_threshold(std::time::Duration::ZERO)
                        .ring_capacity(16),
                ),
        );
        let telemetry = runtime.telemetry().cloned().expect("telemetry enabled");
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut drained = 0usize;
        thread::scope(|scope| {
            let drainer = scope.spawn(|| {
                let mut seen = 0usize;
                while !stop.load(Ordering::Acquire) {
                    seen += telemetry.ring().drain().len();
                    thread::yield_now();
                }
                seen + telemetry.ring().drain().len()
            });
            let clients: Vec<_> = (0..4u64)
                .map(|client| {
                    let runtime = &runtime;
                    scope.spawn(move || {
                        let id = GraphId(200 + client);
                        runtime
                            .call(Request::CreateGraph { id, spec: None })
                            .unwrap();
                        for round in 0..16u32 {
                            runtime
                                .call(Request::ApplyLayeredBatch {
                                    id,
                                    updates: square(round),
                                })
                                .unwrap();
                        }
                    })
                })
                .collect();
            for client in clients {
                client.join().unwrap();
            }
            // Traffic done; only now release the drainer.
            stop.store(true, Ordering::Release);
            drained = drainer.join().unwrap();
        });
        let report = runtime.shutdown();
        assert_eq!(report.totals.commands, 4 * 17);
        let emitted = telemetry.ring().emitted();
        assert!(emitted >= report.totals.commands, "every request was slow");
        // Conservation: everything emitted was drained, is still buffered,
        // was overwritten, or was dropped on contention — and the drain
        // loop really ran concurrently (it saw at least something unless
        // every event raced into the overwrite/drop paths, which a 16-cap
        // ring under 68 events makes implausible).
        assert!(drained as u64 <= emitted);
        assert!(drained > 0, "drainer never observed an event");
    }

    /// A disabled-telemetry runtime exposes no handle at all — the whole
    /// subsystem reduces to one branch per request.
    #[test]
    fn disabled_telemetry_has_no_handle() {
        let runtime = ShardedRuntime::start(RuntimeConfig::new().shards(1));
        assert!(runtime.telemetry().is_none());
        runtime.shutdown();
    }
}
