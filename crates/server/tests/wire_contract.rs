//! The wire retry contract, pinned variant by variant.
//!
//! `expected_contract` is an exhaustive `match` over [`WireError`]: adding
//! a variant breaks this file at compile time until the new variant's
//! `(code, retryable, command_applied)` triple is pinned here, and the
//! `fourcycle-lint` wire-contract rule (L4) independently checks that
//! every variant ident appears in this file. Together they make "what does
//! a client do with this error" a decision that cannot be skipped.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use fourcycle_core::UpdateError;
use fourcycle_server::WireError;
use fourcycle_service::{GraphId, WorkloadMode};
use std::io;

/// The pinned `(wire code, retryable, command_applied)` triple for every
/// variant. Exhaustive on purpose — no `_` arm, ever.
fn expected_contract(e: &WireError) -> (&'static str, bool, bool) {
    match e {
        WireError::Busy => ("busy", true, false),
        WireError::ShardUnavailable => ("shard-unavailable", true, false),
        WireError::Parse(_) => ("parse", false, false),
        WireError::UnknownGraph(_) => ("unknown-graph", false, false),
        WireError::GraphExists(_) => ("graph-exists", false, false),
        WireError::ModeMismatch { .. } => ("mode-mismatch", false, false),
        WireError::Update(_) => ("update", false, false),
        WireError::Batch { .. } => ("batch", false, false),
        WireError::Journal(_) => ("journal", false, true),
        WireError::JournalCheckpoint(_) => ("journal-checkpoint", false, true),
        WireError::Store(_) => ("store", false, false),
    }
}

/// One concrete exemplar per variant, in declaration order.
fn exemplars() -> Vec<WireError> {
    vec![
        WireError::Busy,
        WireError::ShardUnavailable,
        WireError::Parse("bad line".to_string()),
        WireError::UnknownGraph(GraphId(7)),
        WireError::GraphExists(GraphId(7)),
        WireError::ModeMismatch {
            id: GraphId(7),
            mode: WorkloadMode::Layered,
        },
        WireError::Update(UpdateError::SelfLoop),
        WireError::Batch {
            index: 3,
            error: UpdateError::DuplicateEdge,
        },
        WireError::Journal(io::ErrorKind::WriteZero),
        WireError::JournalCheckpoint(io::ErrorKind::Other),
        WireError::Store("store open failed".to_string()),
    ]
}

#[test]
fn every_variant_is_pinned_and_classified() {
    let all = exemplars();
    let mut codes = Vec::new();
    for e in &all {
        let (code, retryable, applied) = expected_contract(e);
        assert_eq!(e.code(), code, "wire code drifted for {e:?}");
        assert_eq!(e.retryable(), retryable, "retryable drifted for {e:?}");
        assert_eq!(
            e.command_applied(),
            applied,
            "command_applied drifted for {e:?}"
        );
        assert!(
            !(retryable && applied),
            "{e:?} claims both `safe to retry` and `already applied`"
        );
        codes.push(code);
    }
    // The exemplar list must cover every variant exactly once; a stale
    // list would silently stop exercising a variant.
    let mut unique = codes.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), codes.len(), "duplicate exemplar codes");
    assert_eq!(codes.len(), 11, "exemplar list out of date with WireError");
}

#[test]
fn every_variant_round_trips_through_the_wire() {
    for e in exemplars() {
        let line = e.render();
        assert!(
            line.starts_with(&format!("err {}", e.code())),
            "rendering of {e:?} does not lead with its code: {line:?}"
        );
        let parsed = WireError::parse(&line).unwrap();
        assert_eq!(
            (parsed.code(), parsed.retryable(), parsed.command_applied()),
            (e.code(), e.retryable(), e.command_applied()),
            "contract not preserved across render/parse for {e:?}"
        );
    }
}

#[test]
fn applied_and_retryable_are_disjoint_families() {
    let retryable: Vec<_> = exemplars()
        .into_iter()
        .filter(WireError::retryable)
        .collect();
    let applied: Vec<_> = exemplars()
        .into_iter()
        .filter(WireError::command_applied)
        .collect();
    assert_eq!(
        retryable.iter().map(WireError::code).collect::<Vec<_>>(),
        ["busy", "shard-unavailable"]
    );
    assert_eq!(
        applied.iter().map(WireError::code).collect::<Vec<_>>(),
        ["journal", "journal-checkpoint"]
    );
}
