//! End-to-end wire tests: a real listener on a loopback port, driven by
//! the real [`Client`] — every response and error shape, per-connection
//! ordering under pipelining, backpressure (`busy`) convergence, the
//! `stats` document, and graceful shutdown semantics.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use fourcycle_core::EngineKind;
use fourcycle_graph::{LayeredUpdate, Rel};
use fourcycle_runtime::{RuntimeConfig, ShardedRuntime};
use fourcycle_server::{Client, ClientError, Server, ServerConfig, WireError};
use fourcycle_service::{GraphId, Request, Response};
use fourcycle_telemetry::{expose, Stage, TelemetryConfig, NO_SHARD};

fn square(base: u32) -> Vec<LayeredUpdate> {
    vec![
        LayeredUpdate::insert(Rel::A, base + 1, base + 2),
        LayeredUpdate::insert(Rel::B, base + 2, base + 3),
        LayeredUpdate::insert(Rel::C, base + 3, base + 4),
        LayeredUpdate::insert(Rel::D, base + 4, base + 1),
    ]
}

fn start_server(shards: usize) -> Server {
    let runtime = ShardedRuntime::start(
        RuntimeConfig::new()
            .shards(shards)
            .engine(EngineKind::Simple)
            .mailbox_depth(64),
    );
    Server::start(ServerConfig::new(), runtime).unwrap()
}

/// Every success shape and a representative error of each family crosses
/// the wire intact — typed in, typed out.
#[test]
fn every_response_shape_roundtrips_over_the_wire() {
    let server = start_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = GraphId(1);

    assert_eq!(
        client
            .call(&Request::CreateGraph { id, spec: None })
            .unwrap(),
        Response::Created { id }
    );
    assert_eq!(
        client
            .call(&Request::ApplyLayeredBatch {
                id,
                updates: square(0),
            })
            .unwrap(),
        Response::Applied {
            id,
            count: 1,
            epoch: 4
        }
    );
    assert_eq!(
        client.call(&Request::Count { id }).unwrap(),
        Response::Count { id, count: 1 }
    );
    match client.call(&Request::GetSnapshot { id }).unwrap() {
        Response::Snapshot { id: got, snapshot } => {
            assert_eq!(got, id);
            assert_eq!(
                (snapshot.count, snapshot.total_edges, snapshot.epoch),
                (1, 4, 4)
            );
        }
        other => panic!("expected snapshot, got {other:?}"),
    }
    // Multi-line listing framing, non-empty and (after drop) empty.
    let id2 = GraphId(2);
    client
        .call(&Request::CreateGraph {
            id: id2,
            spec: None,
        })
        .unwrap();
    assert_eq!(
        client.call(&Request::ListGraphs).unwrap(),
        Response::Graphs { ids: vec![id, id2] }
    );
    client.call(&Request::DropGraph { id }).unwrap();
    client.call(&Request::DropGraph { id: id2 }).unwrap();
    assert_eq!(
        client.call(&Request::ListGraphs).unwrap(),
        Response::Graphs { ids: vec![] }
    );

    // Error family representatives, as typed wire errors.
    match client.call(&Request::Count { id: GraphId(99) }) {
        Err(ClientError::Wire(WireError::UnknownGraph(got))) => assert_eq!(got, GraphId(99)),
        other => panic!("expected unknown-graph, got {other:?}"),
    }
    let raw = client.call_line("frobnicate g1").unwrap();
    assert!(raw.starts_with("err parse"), "{raw}");
    // Blank lines and comments produce no response: the next real command
    // answers first.
    let listed = client.call_line("   # just a comment\n\nlist").unwrap();
    assert_eq!(listed, "ok+0 graphs");

    let report = server.shutdown();
    assert_eq!(report.totals.rejected, 1); // the unknown-graph count
}

/// Pipelined commands on one connection come back strictly in submission
/// order, even when they fan out across shards.
#[test]
fn pipelined_replies_preserve_submission_order() {
    let server = start_server(4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let graphs: Vec<GraphId> = (0..8).map(GraphId).collect();
    let mut script: Vec<Request> = graphs
        .iter()
        .map(|&id| Request::CreateGraph { id, spec: None })
        .collect();
    for round in 0..4u32 {
        for &id in &graphs {
            // Disjoint vertex ranges: each square contributes exactly one
            // 4-cycle, so the final count per graph is the round count.
            script.push(Request::ApplyLayeredBatch {
                id,
                updates: square(round * 10),
            });
        }
    }
    for &id in &graphs {
        script.push(Request::Count { id });
    }
    let replies = client.pipeline(&script).unwrap();
    assert_eq!(replies.len(), script.len());
    for (request, reply) in script.iter().zip(&replies) {
        let response = reply
            .as_ref()
            .unwrap_or_else(|e| panic!("{request:?}: {e}"));
        match (request, response) {
            (Request::CreateGraph { id, .. }, Response::Created { id: got }) => {
                assert_eq!(got, id)
            }
            (Request::ApplyLayeredBatch { id, .. }, Response::Applied { id: got, .. }) => {
                assert_eq!(got, id)
            }
            (Request::Count { id }, Response::Count { id: got, count }) => {
                assert_eq!((got, *count), (id, 4))
            }
            (request, response) => panic!("mismatched: {request:?} -> {response:?}"),
        }
    }
    let report = server.shutdown();
    assert_eq!(report.totals.commands, script.len() as u64);
}

/// Backpressure end-to-end: against a depth-1 mailbox, a hard pipeliner
/// sees `err busy` instead of hanging the server; retrying the rejected
/// commands converges to the exact final state. The traffic is
/// order-independent (distinct edge per command) so busy-skips commute.
#[test]
fn busy_rejections_surface_and_retries_converge() {
    let runtime = ShardedRuntime::start(
        RuntimeConfig::new()
            .shards(1)
            .engine(EngineKind::Simple)
            .mailbox_depth(1),
    );
    let server = Server::start(ServerConfig::new(), runtime).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = GraphId(1);
    client
        .call(&Request::CreateGraph { id, spec: None })
        .unwrap();

    let total = 64u32;
    let commands: Vec<Request> = (0..total)
        .map(|i| Request::ApplyLayered {
            id,
            update: LayeredUpdate::insert(Rel::A, i + 1, total + i + 1),
        })
        .collect();
    let mut outstanding = commands;
    let mut rounds = 0;
    while !outstanding.is_empty() {
        rounds += 1;
        assert!(rounds <= 1000, "busy retries failed to converge");
        let replies = client.pipeline(&outstanding).unwrap();
        outstanding = outstanding
            .into_iter()
            .zip(replies)
            .filter_map(|(request, reply)| match reply {
                Ok(_) => None,
                Err(WireError::Busy) => Some(request), // not executed: retry
                Err(other) => panic!("unexpected rejection: {other}"),
            })
            .collect();
    }
    match client.call(&Request::GetSnapshot { id }).unwrap() {
        Response::Snapshot { snapshot, .. } => {
            assert_eq!(
                (snapshot.total_edges, snapshot.epoch),
                (total as usize, u64::from(total))
            );
        }
        other => panic!("expected snapshot, got {other:?}"),
    }
    let stats = server.stats();
    let report = server.shutdown();
    // Busy rejections and stalls line up: every busy was counted by both
    // layers, and the runtime executed each command exactly once.
    assert_eq!(report.totals.updates_applied, u64::from(total));
    assert!(stats.busy_rejections <= report.totals.queue_full_stalls);
}

/// The stats document is machine-readable by the in-tree JSON reader and
/// its totals agree with both layers' counters.
#[test]
fn stats_parse_and_totals_match() {
    let server = start_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = GraphId(5);
    client
        .call(&Request::CreateGraph { id, spec: None })
        .unwrap();
    client
        .call(&Request::ApplyLayeredBatch {
            id,
            updates: square(0),
        })
        .unwrap();
    client.call(&Request::Count { id }).unwrap();

    let stats = client.stats().unwrap();
    let server_side = stats.get("server").expect("server section");
    assert_eq!(server_side.get("commands").unwrap().as_u64(), Some(3));
    assert_eq!(
        server_side.get("busy_rejections").unwrap().as_u64(),
        Some(0)
    );
    assert_eq!(
        server_side.get("open_connections").unwrap().as_u64(),
        Some(1)
    );
    assert!(server_side.get("bytes_in").unwrap().as_u64().unwrap() > 0);
    assert!(server_side.get("bytes_out").unwrap().as_u64().unwrap() > 0);
    let runtime_side = stats.get("runtime").expect("runtime section");
    assert_eq!(runtime_side.get("shards").unwrap().as_u64(), Some(2));
    assert_eq!(
        runtime_side
            .get("totals")
            .unwrap()
            .get("commands")
            .unwrap()
            .as_u64(),
        Some(3)
    );
    assert_eq!(
        runtime_side
            .get("per_shard")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        2
    );
    // The live ServerStats accessor agrees with the wire document.
    assert_eq!(server.stats().commands, 3);
    server.shutdown();
}

/// ISSUE 9 satellite: the stats document's per-shard objects carry the
/// full counter set — including the group-commit counters `groups` and
/// `journal_fsyncs` — and so do the totals. Pins the JSON shape so
/// dashboards scraping `stats` don't silently lose fields.
#[test]
fn stats_per_shard_objects_pin_the_full_counter_shape() {
    const SHARD_FIELDS: [&str; 8] = [
        "commands",
        "updates_applied",
        "rejected",
        "queue_full_stalls",
        "groups",
        "journal_fsyncs",
        "busy_nanos",
        "idle_nanos",
    ];
    let server = start_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = GraphId(1);
    client
        .call(&Request::CreateGraph { id, spec: None })
        .unwrap();
    client
        .call(&Request::ApplyLayeredBatch {
            id,
            updates: square(0),
        })
        .unwrap();

    let stats = client.stats().unwrap();
    let runtime_side = stats.get("runtime").expect("runtime section");
    let per_shard = runtime_side.get("per_shard").unwrap().as_arr().unwrap();
    assert_eq!(per_shard.len(), 2);
    let totals = runtime_side.get("totals").unwrap();
    for object in per_shard.iter().chain([totals]) {
        for field in SHARD_FIELDS {
            assert!(
                object.get(field).and_then(|v| v.as_u64()).is_some(),
                "missing integer field {field:?} in {object:?}"
            );
        }
    }
    // Dispatch groups are counted even in-process; fsyncs need a
    // journal, so that counter is present but zero here.
    assert!(totals.get("groups").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(totals.get("journal_fsyncs").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("commands").unwrap().as_u64(), Some(2));
    server.shutdown();
}

fn start_telemetry_server(shards: usize) -> Server {
    let runtime = ShardedRuntime::start(
        RuntimeConfig::new()
            .shards(shards)
            .engine(EngineKind::Simple)
            .telemetry(TelemetryConfig::enabled()),
    );
    Server::start(ServerConfig::new(), runtime).unwrap()
}

/// ISSUE 9 tentpole, wire side: after real traffic the `metrics`
/// command returns a well-formed Prometheus exposition whose per-stage
/// histogram counts equal the runtime's `commands` counter, and
/// `metrics json` returns the same snapshot as all-integer JSON.
#[test]
fn metrics_exposition_matches_command_counts() {
    let server = start_telemetry_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = GraphId(1);
    client
        .call(&Request::CreateGraph { id, spec: None })
        .unwrap();
    for update in square(0) {
        client.call(&Request::ApplyLayered { id, update }).unwrap();
    }
    let commands = client
        .stats()
        .unwrap()
        .get("runtime")
        .unwrap()
        .get("totals")
        .unwrap()
        .get("commands")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(commands, 5);

    let text = client.metrics_text().unwrap();
    expose::validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert!(text.contains("fourcycle_stage_latency_nanos"), "{text}");

    // Every delivered command contributed exactly one sample to every
    // stage histogram — the same invariant the runtime tests pin, here
    // observed through the wire document.
    let metrics = client.metrics().unwrap();
    let stages = metrics.get("stages").unwrap().as_arr().unwrap();
    for stage in Stage::ALL {
        let total: u64 = stages
            .iter()
            .filter(|s| s.get("stage").unwrap().as_str() == Some(stage.name()))
            .map(|s| s.get("count").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(total, commands, "stage {}", stage.name());
    }
    let queue_sum: u64 = stages
        .iter()
        .filter(|s| s.get("stage").unwrap().as_str() == Some(Stage::QueueWait.name()))
        .map(|s| s.get("sum").unwrap().as_u64().unwrap())
        .sum();
    assert!(queue_sum > 0, "queue wait is always measurable");
    server.shutdown();
}

/// ISSUE 9 tentpole, event-ring wire side: connection lifecycle lands in
/// the ring as `conn_open`/`conn_close` events (shard = NO_SHARD, a =
/// connection id) and `events` drains them without disturbing service.
#[test]
fn events_command_drains_connection_lifecycle() {
    let server = start_telemetry_server(1);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = GraphId(1);
    client
        .call(&Request::CreateGraph { id, spec: None })
        .unwrap();

    // A second connection opens and closes; wait for the server to
    // retire it so the close event is definitely in the ring.
    let mut visitor = Client::connect(server.local_addr()).unwrap();
    visitor.call(&Request::Count { id }).unwrap();
    drop(visitor);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().open_connections > 1 {
        assert!(std::time::Instant::now() < deadline, "visitor never closed");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let events = client.events().unwrap();
    let events = events.get("events").unwrap().as_arr().unwrap();
    let kinds_of = |kind: &str| -> Vec<&fourcycle_store::json::Json> {
        events
            .iter()
            .filter(|e| e.get("kind").unwrap().as_str() == Some(kind))
            .collect()
    };
    assert_eq!(kinds_of("conn_open").len(), 2, "{events:?}");
    let closes = kinds_of("conn_close");
    assert_eq!(closes.len(), 1, "{events:?}");
    for event in events {
        assert_eq!(
            event.get("shard").unwrap().as_u64(),
            Some(u64::from(NO_SHARD)),
            "connection events carry no shard"
        );
        assert!(event.get("seq").unwrap().as_u64().unwrap() >= 1);
    }
    // Drained is drained: a second read returns only what happened since.
    let again = client.events().unwrap();
    let again = again.get("events").unwrap().as_arr().unwrap().len();
    assert!(again <= 1, "at most a stats/metrics follow-up, got {again}");
    server.shutdown();
}

/// With telemetry disabled (the default), the observability commands
/// still answer — with documented placeholder bodies, not errors.
#[test]
fn disabled_telemetry_serves_placeholder_documents() {
    let server = start_server(1);
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.metrics_text().unwrap(), "# telemetry disabled");
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.get("enabled").unwrap().as_u64(), Some(0));
    let events = client.events().unwrap();
    assert_eq!(events.get("events").unwrap().as_arr().unwrap().len(), 0);
    server.shutdown();
}

/// Graceful shutdown: in-flight commands are answered, the final report
/// covers them, and the socket then reads EOF — while new connections are
/// refused or closed without service.
#[test]
fn graceful_shutdown_answers_in_flight_then_closes() {
    let server = start_server(1);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let id = GraphId(1);
    client
        .call(&Request::CreateGraph { id, spec: None })
        .unwrap();
    for update in square(0) {
        client.call(&Request::ApplyLayered { id, update }).unwrap();
    }
    let report = server.shutdown();
    assert_eq!(report.totals.commands, 5);
    assert_eq!(report.totals.updates_applied, 4);
    // The connection is now dead: the next roundtrip fails rather than
    // hanging (EOF on read, or a write error, depending on timing).
    let outcome = client.call(&Request::Count { id });
    assert!(outcome.is_err(), "{outcome:?}");
}

/// Oversized command lines are rejected with a parse error and the
/// connection is closed (no resynchronization inside an unterminated
/// line); the server itself keeps serving other clients.
#[test]
fn oversized_lines_close_only_the_offending_connection() {
    let runtime = ShardedRuntime::start(RuntimeConfig::new().shards(1));
    let server = Server::start(ServerConfig::new().max_line_bytes(256), runtime).unwrap();
    let mut offender = Client::connect(server.local_addr()).unwrap();
    let huge = format!("layered g1 {}", "A+1:2 ".repeat(100));
    let reply = offender.call_line(&huge).unwrap();
    assert!(reply.starts_with("err parse"), "{reply}");
    assert!(reply.contains("limit"), "{reply}");
    // A fresh client is unaffected.
    let mut fine = Client::connect(server.local_addr()).unwrap();
    let id = GraphId(1);
    assert_eq!(
        fine.call(&Request::CreateGraph { id, spec: None }).unwrap(),
        Response::Created { id }
    );
    server.shutdown();
}
