//! The blocking wire client: connect, [`call`](Client::call) one command
//! at a time, or [`pipeline`](Client::pipeline) many and collect the
//! replies in order. Tests, the socket-mode load generator, and external
//! tools all speak to the server through this — it is the reference
//! implementation of the framing rules (`fourcycle_service::command`
//! module docs) and of the error grammar ([`WireError`](crate::wire)).

use crate::wire::WireError;
use fourcycle_service::{parse_response, render_request, response_extra_lines, Request, Response};
use fourcycle_store::json::Json;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client operation failed. Server-side rejections arrive as
/// [`ClientError::Wire`] (or as the inner `Err` of
/// [`Client::read_reply`]); everything else means the conversation
/// itself broke.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, or write).
    Io(io::Error),
    /// The server's bytes violated the framing or response grammar — a
    /// protocol bug or a non-fourcycle peer, not a rejected command.
    Protocol(String),
    /// The server answered with an `err` line ([`Client::call`] only;
    /// the lower-level readers hand wire errors back as values).
    Wire(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(message) => write!(f, "protocol violation: {message}"),
            ClientError::Wire(e) => write!(f, "server rejected the command: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(_) => None,
            ClientError::Wire(e) => Some(e),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a `fourcycle-server`.
///
/// Not `Sync` by design: one client is one conversation with strict
/// request/reply ordering. Concurrency is modeled as one `Client` per
/// thread (exactly how the socket-mode load generator drives K clients).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server (e.g. `server.local_addr()` or
    /// `"127.0.0.1:4444"`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Executes one command and blocks for its outcome; server rejections
    /// surface as [`ClientError::Wire`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.flush()?;
        self.read_reply()?.map_err(ClientError::Wire)
    }

    /// Buffers one command without flushing or reading — the pipelining
    /// primitive. Every `send` owes exactly one [`Client::read_reply`].
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let line = render_request(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Flushes buffered commands to the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads exactly one framed reply, in submission order. Wire errors
    /// are values here (the inner `Err`), so pipelined callers can retry
    /// `busy` commands without losing their place in the reply stream.
    pub fn read_reply(&mut self) -> Result<Result<Response, WireError>, ClientError> {
        let framed = self.read_framed()?;
        if framed.split_whitespace().next() == Some("err") {
            let wire = WireError::parse(&framed)
                .map_err(|e| ClientError::Protocol(format!("unparseable error line: {e}")))?;
            return Ok(Err(wire));
        }
        parse_response(&framed)
            .map(Ok)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// Fires a whole batch of commands, then collects every reply in
    /// submission order — the fire-collect shape that keeps the server's
    /// shards busy across one connection.
    pub fn pipeline(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, WireError>>, ClientError> {
        for request in requests {
            self.send(request)?;
        }
        self.flush()?;
        requests.iter().map(|_| self.read_reply()).collect()
    }

    /// Sends one raw line and returns the complete framed reply text
    /// (header plus declared continuation lines, `\n`-joined). Escape
    /// hatch for protocol tests and for commands outside the [`Request`]
    /// vocabulary.
    pub fn call_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.flush()?;
        self.read_framed()
    }

    /// Sends `command` and returns the framed document's body (the lines
    /// after the `ok+<n> <tag>` header), verifying the tag.
    fn framed_body(&mut self, command: &str, tag: &str) -> Result<String, ClientError> {
        let framed = self.call_line(command)?;
        match framed.split_once('\n') {
            Some((header, body)) if header.split_whitespace().nth(1) == Some(tag) => {
                Ok(body.to_string())
            }
            _ => Err(ClientError::Protocol(format!(
                "expected a framed {tag} document, got {framed:?}"
            ))),
        }
    }

    /// Fetches the server's `stats` document as raw JSON text.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        self.framed_body("stats", "stats")
    }

    /// Fetches and parses the server's `stats` document (all-integer
    /// JSON, read with the in-tree `fourcycle_store::json` reader).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let body = self.stats_json()?;
        Json::parse(&body).map_err(|e| ClientError::Protocol(format!("invalid stats JSON: {e}")))
    }

    /// Fetches the server's `metrics` exposition as Prometheus-style
    /// text. With telemetry disabled the body is a single `#` comment.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.framed_body("metrics", "metrics")
    }

    /// Fetches and parses the server's `metrics json` document.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let body = self.framed_body("metrics json", "metrics")?;
        Json::parse(&body).map_err(|e| ClientError::Protocol(format!("invalid metrics JSON: {e}")))
    }

    /// Drains and parses the server's event ring (`events` command).
    pub fn events(&mut self) -> Result<Json, ClientError> {
        let body = self.framed_body("events", "events")?;
        Json::parse(&body).map_err(|e| ClientError::Protocol(format!("invalid events JSON: {e}")))
    }

    /// Reads one `\n`-terminated line, without the terminator.
    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed by server".to_string(),
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads one complete framed reply: the header line plus exactly the
    /// continuation lines it declares.
    fn read_framed(&mut self) -> Result<String, ClientError> {
        let mut text = self.read_line()?;
        let extra = response_extra_lines(&text)
            .map_err(|e| ClientError::Protocol(format!("bad response header: {e}")))?;
        for _ in 0..extra {
            let line = self.read_line()?;
            text.push('\n');
            text.push_str(&line);
        }
        Ok(text)
    }
}
