//! Stable wire rendering of failures: every [`ServiceError`] /
//! [`RuntimeError`] variant maps to a one-line `err <code> [detail...]`
//! response with a parse round-trip, so wire clients can react to error
//! *kinds* without scraping prose. The codes are part of the protocol —
//! changing one is a breaking wire change, and each is pinned by a test.
//!
//! # Grammar
//!
//! ```text
//! err busy                             # mailbox full — NOT executed, retry
//! err shard-unavailable                # runtime shutting down — NOT executed
//! err parse <message...>               # line rejected — NOT executed
//! err unknown-graph g7
//! err graph-exists g7
//! err mode-mismatch g7 layered
//! err update <verdict>                 # duplicate-edge | missing-edge
//!                                      # | self-loop | relation-mismatch
//! err batch <index> <verdict>
//! err journal <io-kind>                # APPLIED but not journaled — never
//!                                      # re-submit (double-apply hazard)
//! err journal-checkpoint <io-kind>     # applied AND journaled; checkpoint
//!                                      # stale — never re-submit
//! err store <message...>               # journal store failed to open
//! ```
//!
//! The retry contract wire clients program against:
//!
//! * [`WireError::retryable`] — the command was **not executed** and a
//!   retry may succeed (`busy`, `shard-unavailable`).
//! * [`WireError::command_applied`] — the command **changed state** despite
//!   the error (`journal`, `journal-checkpoint`); re-submitting would apply
//!   it twice. Everything else is a clean rejection: state unchanged,
//!   re-submitting is safe but will fail again unless the world changed.

use fourcycle_core::UpdateError;
use fourcycle_runtime::RuntimeError;
use fourcycle_service::{GraphId, ParseError, ServiceError, WorkloadMode};
use std::fmt;
use std::io;

/// A failure as it crosses the wire: the flattening of [`RuntimeError`]
/// (and the [`ServiceError`] inside it) into stable codes, plus the two
/// failures only the server itself produces ([`WireError::Busy`] and
/// oversized/ill-formed input as [`WireError::Parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The target shard's mailbox was full and the server refused to
    /// buffer unboundedly. The command was not executed; retry later.
    Busy,
    /// The runtime is shutting down (or the shard worker died). The
    /// command was not executed.
    ShardUnavailable,
    /// The command line could not be parsed (or violated a server limit,
    /// e.g. the maximum line length). Nothing was executed.
    Parse(String),
    /// No session with this id exists.
    UnknownGraph(GraphId),
    /// A session with this id already exists.
    GraphExists(GraphId),
    /// The update family does not match the session's mode; carries the
    /// session's actual mode.
    ModeMismatch {
        /// The addressed session.
        id: GraphId,
        /// Its actual mode.
        mode: WorkloadMode,
    },
    /// A single update was rejected; state unchanged.
    Update(UpdateError),
    /// A batch was rejected at `index`; state unchanged (atomic batches).
    Batch {
        /// Index of the first rejected update.
        index: usize,
        /// Why it was rejected.
        error: UpdateError,
    },
    /// The journal failed to persist an **applied** command — the state
    /// change is live but not durable. Never re-submit.
    Journal(io::ErrorKind),
    /// A checkpoint failed after the command was applied *and* journaled;
    /// recovery stays complete (full replay), only checkpoint-accelerated
    /// recovery is stale. Never re-submit.
    JournalCheckpoint(io::ErrorKind),
    /// The durable journal store failed (only on runtime startup paths;
    /// carries the store's rendered message).
    Store(String),
}

impl WireError {
    /// The stable first token after `err` — the part of the rendering a
    /// client switches on.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Busy => "busy",
            WireError::ShardUnavailable => "shard-unavailable",
            WireError::Parse(_) => "parse",
            WireError::UnknownGraph(_) => "unknown-graph",
            WireError::GraphExists(_) => "graph-exists",
            WireError::ModeMismatch { .. } => "mode-mismatch",
            WireError::Update(_) => "update",
            WireError::Batch { .. } => "batch",
            WireError::Journal(_) => "journal",
            WireError::JournalCheckpoint(_) => "journal-checkpoint",
            WireError::Store(_) => "store",
        }
    }

    /// `true` when the command was **not executed** and retrying the same
    /// command may succeed once the transient condition clears.
    ///
    /// Deliberately an exhaustive match (no `_` arm): adding a variant
    /// must force an explicit retry classification here, and the lint's
    /// `wire-contract` rule checks that every variant appears.
    pub fn retryable(&self) -> bool {
        match self {
            WireError::Busy => true,
            WireError::ShardUnavailable => true,
            WireError::Parse(_) => false,
            WireError::UnknownGraph(_) => false,
            WireError::GraphExists(_) => false,
            WireError::ModeMismatch { .. } => false,
            WireError::Update(_) => false,
            WireError::Batch { .. } => false,
            WireError::Journal(_) => false,
            WireError::JournalCheckpoint(_) => false,
            WireError::Store(_) => false,
        }
    }

    /// `true` when the command **changed service state** despite the error
    /// — the journal-failure family. Re-submitting such a command would
    /// apply it a second time; clients must reconcile by reading instead.
    ///
    /// Exhaustive for the same reason as [`WireError::retryable`]: a new
    /// variant must take a stance on the double-apply hazard.
    pub fn command_applied(&self) -> bool {
        match self {
            WireError::Busy => false,
            WireError::ShardUnavailable => false,
            WireError::Parse(_) => false,
            WireError::UnknownGraph(_) => false,
            WireError::GraphExists(_) => false,
            WireError::ModeMismatch { .. } => false,
            WireError::Update(_) => false,
            WireError::Batch { .. } => false,
            WireError::Journal(_) => true,
            WireError::JournalCheckpoint(_) => true,
            WireError::Store(_) => false,
        }
    }

    /// Renders the stable one-line wire form, `err <code> [detail...]`.
    /// Never contains a newline: free-text details are flattened so they
    /// cannot break the line framing.
    pub fn render(&self) -> String {
        let line = match self {
            WireError::Busy | WireError::ShardUnavailable => format!("err {}", self.code()),
            WireError::Parse(message) => format!("err parse {message}"),
            WireError::UnknownGraph(id) => format!("err unknown-graph {id}"),
            WireError::GraphExists(id) => format!("err graph-exists {id}"),
            WireError::ModeMismatch { id, mode } => {
                format!("err mode-mismatch {id} {}", mode.token())
            }
            WireError::Update(e) => format!("err update {}", verdict_token(*e)),
            WireError::Batch { index, error } => {
                format!("err batch {index} {}", verdict_token(*error))
            }
            WireError::Journal(kind) => format!("err journal {}", io_kind_token(*kind)),
            WireError::JournalCheckpoint(kind) => {
                format!("err journal-checkpoint {}", io_kind_token(*kind))
            }
            WireError::Store(message) => format!("err store {message}"),
        };
        // Belt and braces: a detail string with embedded newlines would
        // desynchronize the framing for every later response.
        line.replace(['\n', '\r'], " ")
    }

    /// Parses a wire error line (inverse of [`WireError::render`], up to
    /// the documented `io::ErrorKind` token normalization: kinds outside
    /// the stable set render as `other` and parse back as
    /// [`io::ErrorKind::Other`]).
    pub fn parse(line: &str) -> Result<WireError, ParseError> {
        let rest = line
            .trim()
            .strip_prefix("err")
            .ok_or_else(|| parse_err(format!("expected an err line, got {line:?}")))?
            .trim_start();
        let (code, detail) = match rest.split_once(char::is_whitespace) {
            Some((code, detail)) => (code, detail.trim()),
            None => (rest, ""),
        };
        let want_empty = |detail: &str, e: WireError| {
            if detail.is_empty() {
                Ok(e)
            } else {
                Err(parse_err(format!("{code} takes no detail, got {detail:?}")))
            }
        };
        match code {
            "busy" => want_empty(detail, WireError::Busy),
            "shard-unavailable" => want_empty(detail, WireError::ShardUnavailable),
            "parse" => Ok(WireError::Parse(detail.to_string())),
            "store" => Ok(WireError::Store(detail.to_string())),
            "unknown-graph" => Ok(WireError::UnknownGraph(parse_graph_id(detail)?)),
            "graph-exists" => Ok(WireError::GraphExists(parse_graph_id(detail)?)),
            "mode-mismatch" => match detail.split_whitespace().collect::<Vec<_>>().as_slice() {
                [id, mode] => Ok(WireError::ModeMismatch {
                    id: parse_graph_id(id)?,
                    mode: parse_mode(mode)?,
                }),
                _ => Err(parse_err("mode-mismatch takes <id> <mode>")),
            },
            "update" => Ok(WireError::Update(parse_verdict(detail)?)),
            "batch" => match detail.split_whitespace().collect::<Vec<_>>().as_slice() {
                [index, verdict] => Ok(WireError::Batch {
                    index: index
                        .parse::<usize>()
                        .map_err(|_| parse_err(format!("invalid batch index {index:?}")))?,
                    error: parse_verdict(verdict)?,
                }),
                _ => Err(parse_err("batch takes <index> <verdict>")),
            },
            "journal" => Ok(WireError::Journal(parse_io_kind(detail)?)),
            "journal-checkpoint" => Ok(WireError::JournalCheckpoint(parse_io_kind(detail)?)),
            _ => Err(parse_err(format!("unknown error code {code:?}"))),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl std::error::Error for WireError {}

impl From<&ServiceError> for WireError {
    fn from(e: &ServiceError) -> Self {
        match e {
            ServiceError::UnknownGraph(id) => WireError::UnknownGraph(*id),
            ServiceError::GraphAlreadyExists(id) => WireError::GraphExists(*id),
            ServiceError::ModeMismatch { id, mode } => WireError::ModeMismatch {
                id: *id,
                mode: *mode,
            },
            ServiceError::Update(e) => WireError::Update(*e),
            ServiceError::Batch(b) => WireError::Batch {
                index: b.index,
                error: b.error,
            },
            ServiceError::Journal(kind) => WireError::Journal(*kind),
            ServiceError::JournalCheckpoint(kind) => WireError::JournalCheckpoint(*kind),
        }
    }
}

impl From<&RuntimeError> for WireError {
    fn from(e: &RuntimeError) -> Self {
        match e {
            RuntimeError::ShardUnavailable => WireError::ShardUnavailable,
            RuntimeError::Service(service) => WireError::from(service),
            // Server-side parse errors are always single-line parses (line
            // 0, no captured text), so the message alone round-trips the
            // whole error.
            RuntimeError::Parse(parse) => WireError::Parse(parse.message.clone()),
            RuntimeError::Store(store) => WireError::Store(store.to_string()),
        }
    }
}

fn parse_err(message: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        message: message.into(),
        text: String::new(),
    }
}

fn parse_graph_id(token: &str) -> Result<GraphId, ParseError> {
    let digits = token.strip_prefix('g').unwrap_or(token);
    digits
        .parse::<u64>()
        .map(GraphId)
        .map_err(|_| parse_err(format!("invalid graph id {token:?}")))
}

fn parse_mode(token: &str) -> Result<WorkloadMode, ParseError> {
    WorkloadMode::ALL
        .into_iter()
        .find(|m| m.token() == token)
        .ok_or_else(|| parse_err(format!("unknown mode {token:?}")))
}

/// The stable verdict tokens of the core update rejections.
fn verdict_token(e: UpdateError) -> &'static str {
    match e {
        UpdateError::DuplicateEdge => "duplicate-edge",
        UpdateError::MissingEdge => "missing-edge",
        UpdateError::SelfLoop => "self-loop",
        UpdateError::RelationMismatch => "relation-mismatch",
    }
}

const ALL_VERDICTS: [UpdateError; 4] = [
    UpdateError::DuplicateEdge,
    UpdateError::MissingEdge,
    UpdateError::SelfLoop,
    UpdateError::RelationMismatch,
];

fn parse_verdict(token: &str) -> Result<UpdateError, ParseError> {
    ALL_VERDICTS
        .into_iter()
        .find(|&v| verdict_token(v) == token)
        .ok_or_else(|| parse_err(format!("unknown update verdict {token:?}")))
}

/// The `io::ErrorKind`s with a stable wire token. Kinds outside this set
/// (including future additions to std) render as `other` — the journal
/// error *family* is the contract; the kind is diagnostic color.
const IO_KIND_TOKENS: [(io::ErrorKind, &str); 13] = [
    (io::ErrorKind::NotFound, "not-found"),
    (io::ErrorKind::PermissionDenied, "permission-denied"),
    (io::ErrorKind::AlreadyExists, "already-exists"),
    (io::ErrorKind::InvalidInput, "invalid-input"),
    (io::ErrorKind::InvalidData, "invalid-data"),
    (io::ErrorKind::TimedOut, "timed-out"),
    (io::ErrorKind::WriteZero, "write-zero"),
    (io::ErrorKind::Interrupted, "interrupted"),
    (io::ErrorKind::Unsupported, "unsupported"),
    (io::ErrorKind::UnexpectedEof, "unexpected-eof"),
    (io::ErrorKind::OutOfMemory, "out-of-memory"),
    (io::ErrorKind::StorageFull, "storage-full"),
    (io::ErrorKind::Other, "other"),
];

fn io_kind_token(kind: io::ErrorKind) -> &'static str {
    IO_KIND_TOKENS
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, token)| *token)
        .unwrap_or("other")
}

fn parse_io_kind(token: &str) -> Result<io::ErrorKind, ParseError> {
    IO_KIND_TOKENS
        .iter()
        .find(|(_, t)| *t == token)
        .map(|(kind, _)| *kind)
        .ok_or_else(|| parse_err(format!("unknown io kind {token:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fourcycle_core::BatchError;
    use fourcycle_store::StoreError;

    fn roundtrip(e: WireError) -> WireError {
        let line = e.render();
        assert!(line.starts_with("err "), "{line}");
        assert!(!line.contains('\n'), "{line}");
        let parsed = WireError::parse(&line).unwrap_or_else(|p| panic!("{line}: {p}"));
        assert_eq!(parsed, e, "{line}");
        parsed
    }

    /// Satellite pin: one test arm per `ServiceError` variant — the code
    /// mapping, the rendering, and the parse round-trip.
    #[test]
    fn every_service_error_variant_has_a_stable_code() {
        let id = GraphId(7);
        let cases: Vec<(ServiceError, &str, &str)> = vec![
            (
                ServiceError::UnknownGraph(id),
                "unknown-graph",
                "err unknown-graph g7",
            ),
            (
                ServiceError::GraphAlreadyExists(id),
                "graph-exists",
                "err graph-exists g7",
            ),
            (
                ServiceError::ModeMismatch {
                    id,
                    mode: WorkloadMode::Layered,
                },
                "mode-mismatch",
                "err mode-mismatch g7 layered",
            ),
            (
                ServiceError::Update(UpdateError::SelfLoop),
                "update",
                "err update self-loop",
            ),
            (
                ServiceError::Batch(BatchError::at(3, UpdateError::DuplicateEdge)),
                "batch",
                "err batch 3 duplicate-edge",
            ),
            (
                ServiceError::Journal(io::ErrorKind::StorageFull),
                "journal",
                "err journal storage-full",
            ),
            (
                ServiceError::JournalCheckpoint(io::ErrorKind::PermissionDenied),
                "journal-checkpoint",
                "err journal-checkpoint permission-denied",
            ),
        ];
        for (service, code, line) in cases {
            let wire = WireError::from(&service);
            assert_eq!(wire.code(), code);
            assert_eq!(wire.render(), line);
            roundtrip(wire);
        }
    }

    /// Satellite pin: one test arm per `RuntimeError` variant (the
    /// service arm is covered variant-by-variant above).
    #[test]
    fn every_runtime_error_variant_has_a_stable_code() {
        let shard = WireError::from(&RuntimeError::ShardUnavailable);
        assert_eq!(shard.render(), "err shard-unavailable");
        roundtrip(shard);

        let parse = WireError::from(&RuntimeError::Parse(ParseError {
            line: 0,
            message: "unknown command \"frobnicate\"".into(),
            text: String::new(),
        }));
        assert_eq!(parse.render(), "err parse unknown command \"frobnicate\"");
        roundtrip(parse);

        let service = WireError::from(&RuntimeError::Service(ServiceError::UnknownGraph(GraphId(
            1,
        ))));
        assert_eq!(service.code(), "unknown-graph");

        let store = WireError::from(&RuntimeError::Store(StoreError::UnknownShard {
            shard: 9,
            shards: 2,
        }));
        assert_eq!(store.code(), "store");
        let reparsed = roundtrip(store);
        match reparsed {
            WireError::Store(message) => assert!(message.contains("shard 9"), "{message}"),
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn server_only_errors_roundtrip() {
        assert_eq!(roundtrip(WireError::Busy).render(), "err busy");
        for verdict in ALL_VERDICTS {
            roundtrip(WireError::Update(verdict));
            roundtrip(WireError::Batch {
                index: 12,
                error: verdict,
            });
        }
        // Free-text details survive, newlines are flattened (framing).
        let evil = WireError::Parse("line\none\ntwo".into());
        assert!(!evil.render().contains('\n'));
        roundtrip(WireError::Parse("expected + or - got '*'".into()));
    }

    /// The retry contract is the point of stable codes: `journal` means
    /// "applied but not durable — never re-submit", while `busy` /
    /// `shard-unavailable` mean "not executed — safe to retry".
    #[test]
    fn retry_contract_distinguishes_journal_from_transients() {
        let journal = WireError::Journal(io::ErrorKind::StorageFull);
        let checkpoint = WireError::JournalCheckpoint(io::ErrorKind::Other);
        assert!(journal.command_applied() && !journal.retryable());
        assert!(checkpoint.command_applied() && !checkpoint.retryable());
        for transient in [WireError::Busy, WireError::ShardUnavailable] {
            assert!(transient.retryable() && !transient.command_applied());
        }
        for rejection in [
            WireError::UnknownGraph(GraphId(1)),
            WireError::GraphExists(GraphId(1)),
            WireError::Update(UpdateError::MissingEdge),
            WireError::Parse("x".into()),
            WireError::Store("y".into()),
        ] {
            assert!(!rejection.retryable() && !rejection.command_applied());
        }
    }

    #[test]
    fn io_kind_tokens_roundtrip_and_unknown_kinds_normalize_to_other() {
        for (kind, token) in IO_KIND_TOKENS {
            assert_eq!(io_kind_token(kind), token);
            assert_eq!(parse_io_kind(token).unwrap(), kind);
        }
        // A kind outside the stable set renders as `other` and parses back
        // to `Other` — normalization, not an error.
        let exotic = WireError::Journal(io::ErrorKind::BrokenPipe);
        assert_eq!(exotic.render(), "err journal other");
        assert_eq!(
            WireError::parse("err journal other").unwrap(),
            WireError::Journal(io::ErrorKind::Other)
        );
    }

    #[test]
    fn malformed_error_lines_are_rejected() {
        for line in [
            "ok created g1",
            "err",
            "err frobnicated",
            "err busy now",
            "err unknown-graph",
            "err unknown-graph seven",
            "err mode-mismatch g1",
            "err mode-mismatch g1 sideways",
            "err update exploded",
            "err batch x duplicate-edge",
            "err batch 1",
            "err journal full-disk",
        ] {
            assert!(WireError::parse(line).is_err(), "{line}");
        }
    }
}
