//! `fourcycle-server` — the network front door of the workspace.
//!
//! Everything below this crate is in-process: [`ShardedRuntime`] serves
//! the command vocabulary to callers holding a Rust handle. This crate
//! puts that vocabulary on a wire — a **std-only TCP listener** (no
//! external async runtime, matching ADR-004's thread-per-shard
//! philosophy; see `docs/adr/ADR-008-network-front-door.md`) speaking the
//! line-based command text format of `fourcycle-service`, plus the
//! blocking [`Client`] the tests, the socket-mode load generator, and any
//! external tool use to drive it.
//!
//! # Architecture
//!
//! ```text
//!   client sockets          fourcycle-server                fourcycle-runtime
//!  ┌──────────────┐   accept   ┌───────────────────┐
//!  │ TCP conn 1   │──────────► │ reader thread 1   │ try_submit()  ┌─────────┐
//!  │  "layered…\n"│            │  parse_request    │─────────────► │ shard 0 │
//!  └──────────────┘            │  full? err busy   │   Ticket      │ shard 1 │
//!  ┌──────────────┐            ├───────────────────┤               │   …     │
//!  │ TCP conn 2   │──────────► │ bounded pending   │               └─────────┘
//!  └──────────────┘            │ queue (per conn)  │                    │
//!                              ├───────────────────┤   Ticket::wait     │
//!         responses ◄──────────│ writer thread 1   │◄───────────────────┘
//!         "ok applied g1 1 4"  │  render_response  │
//!                              └───────────────────┘
//! ```
//!
//! * **One reader + one writer thread per connection.** The reader frames
//!   newline-delimited commands, parses them, and *fires* them at the
//!   runtime with the non-blocking
//!   [`try_submit`](ShardedRuntime::try_submit); the resulting
//!   [`Ticket`]s flow through a bounded per-connection queue to the
//!   writer, which waits each ticket and streams framed responses back
//!   **in submission order**. Because commands from every connection meet
//!   only in the runtime's shard mailboxes, one slow client never blocks
//!   another — and pipelined commands from one client overlap across
//!   shards while their responses stay ordered.
//! * **Backpressure, not buffering.** A full shard mailbox surfaces as a
//!   documented `err busy` response (counted in both the server's
//!   `busy_rejections` and the runtime's `queue_full_stalls`) instead of
//!   the server queueing unboundedly; the per-connection pending queue is
//!   bounded too ([`ServerConfig::pipeline_depth`]), so a client that
//!   pipelines faster than it reads is eventually paused by TCP itself.
//! * **Framing.** Requests are one line each; responses use the
//!   length-declared `ok` / `ok+<n>` / `err <code>` framing defined in
//!   `fourcycle_service::command` (see its module docs) — a client reads
//!   exactly one response per command without heuristics. Blank lines and
//!   `#` comments are accepted and produce **no** response, so command
//!   scripts can be piped in verbatim.
//! * **Observability.** The `stats` wire command returns a framed
//!   all-integer JSON document — server counters (connections, commands,
//!   busy rejections, bytes in/out) plus the full
//!   [`RuntimeReport`] — parseable by the in-tree `fourcycle_store::json`
//!   reader. When the runtime was started with telemetry enabled
//!   (`RuntimeConfig::telemetry`), three more commands expose the live
//!   telemetry subsystem: `metrics` (Prometheus-style text exposition of
//!   the per-stage latency histograms and named counters), `metrics json`
//!   (the same snapshot as all-integer JSON with nearest-rank
//!   percentiles), and `events` (drains the bounded structured event ring
//!   — slow requests, group commits, checkpoints, recovery phases, chaos
//!   faults, connection lifecycle). Connection accept/close are themselves
//!   emitted into the ring as `conn_open` / `conn_close` events.
//! * **Graceful shutdown.** [`Server::shutdown`] stops accepting, shuts
//!   the read half of every live connection (in-flight commands still get
//!   their replies), joins all connection threads, and only then shuts the
//!   runtime down — which drains every shard and syncs every journal. A
//!   client that saw `ok` for a journaled command holds a durable command.
//!
//! # Quick start
//!
//! ```
//! use fourcycle_runtime::{RuntimeConfig, ShardedRuntime};
//! use fourcycle_server::{Client, Server, ServerConfig};
//! use fourcycle_service::{GraphId, Request, Response};
//!
//! let runtime = ShardedRuntime::start(RuntimeConfig::new().shards(2));
//! let server = Server::start(ServerConfig::new(), runtime).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let id = GraphId(1);
//! client.call(&Request::CreateGraph { id, spec: None }).unwrap();
//! assert_eq!(
//!     client.call(&Request::Count { id }).unwrap(),
//!     Response::Count { id, count: 0 },
//! );
//!
//! let report = server.shutdown();
//! assert_eq!(report.totals.commands, 2);
//! ```

// Unit tests keep their unwrap/cast freedoms; the workspace clippy
// lints target only compiled production code (ADR-010).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod client;
pub mod wire;

pub use client::{Client, ClientError};
pub use wire::WireError;

use fourcycle_runtime::{RuntimeReport, RuntimeStats, ShardedRuntime, SubmitOutcome, Ticket};
use fourcycle_service::{parse_request, render_response};
use fourcycle_telemetry::{expose, EventKind, NO_SHARD};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Configuration of a [`Server`], builder-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    addr: String,
    pipeline_depth: usize,
    max_line_bytes: usize,
}

impl Default for ServerConfig {
    /// Loopback on an ephemeral port (`127.0.0.1:0`), pipeline depth 128,
    /// 1 MiB line limit.
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            pipeline_depth: 128,
            max_line_bytes: 1 << 20,
        }
    }
}

impl ServerConfig {
    /// The default configuration (see [`ServerConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the listen address (`host:port`; port 0 picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the bounded per-connection pending-reply queue depth (clamped
    /// to at least 1): how many commands one connection may have in flight
    /// before its reader pauses. This bounds server-side memory per
    /// connection; shard-level backpressure is separate (`err busy`).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Sets the maximum accepted command line length in bytes (clamped to
    /// at least 64). A longer line is answered with `err parse ...` and
    /// the connection is closed — the server cannot resynchronize inside
    /// an unterminated line.
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes.max(64);
        self
    }

    /// The configured listen address.
    pub fn listen_addr(&self) -> &str {
        &self.addr
    }
}

/// Point-in-time server-level counters (the wire-facing totals; shard
/// execution detail lives in [`RuntimeReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections currently open.
    pub open_connections: u64,
    /// Service commands accepted from the wire and submitted to the
    /// runtime (busy-rejected lines and the `stats` command excluded).
    pub commands: u64,
    /// Commands refused with `err busy` because the target shard's
    /// mailbox was full.
    pub busy_rejections: u64,
    /// Bytes read off accepted connections.
    pub bytes_in: u64,
    /// Bytes written back (responses, including line terminators).
    pub bytes_out: u64,
}

#[derive(Debug, Default)]
struct ServerCounters {
    connections: AtomicU64,
    open_connections: AtomicU64,
    commands: AtomicU64,
    busy_rejections: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl ServerCounters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            commands: self.commands.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    config: ServerConfig,
    runtime: ShardedRuntime,
    counters: ServerCounters,
    shutting_down: AtomicBool,
    /// Read-half clones of live connections, so shutdown can unblock
    /// parked readers without waiting for client EOFs.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// One reply owed to a connection, in submission order: either an
/// in-flight runtime ticket or an immediately-rendered line (parse
/// errors, `busy`, `stats`).
enum Pending {
    Ticket(Ticket),
    Line(String),
}

/// The TCP front door (see the crate docs for the architecture).
pub struct Server {
    shared: Option<Arc<Shared>>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `config`'s listen address and starts serving `runtime` over
    /// it. The runtime is owned by the server from here on;
    /// [`Server::shutdown`] shuts it down too (draining shards and
    /// syncing journals) and returns its final report.
    pub fn start(config: ServerConfig, runtime: ShardedRuntime) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            runtime,
            counters: ServerCounters::default(),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_handles = Arc::clone(&conn_handles);
        let accept = thread::Builder::new()
            .name("fourcycle-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared, accept_handles))?;
        Ok(Server {
            shared: Some(shared),
            local_addr,
            accept: Some(accept),
            conn_handles,
        })
    }

    fn shared(&self) -> &Shared {
        // lint: allow(no-panic) shared is Some until shutdown() consumes self
        self.shared.as_ref().expect("server not shut down")
    }

    /// The bound listen address (the actual port when the config asked
    /// for an ephemeral one).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live server-level counters.
    pub fn stats(&self) -> ServerStats {
        self.shared().counters.snapshot()
    }

    /// Live runtime-wide report (per-shard statistics plus totals).
    pub fn report(&self) -> RuntimeReport {
        self.shared().runtime.report()
    }

    /// Stops accepting, unblocks and joins every connection thread, and
    /// returns. In-flight commands still receive their replies before
    /// their connections close.
    fn stop(&mut self) {
        let Some(shared) = self.shared.as_ref() else {
            return;
        };
        shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it re-checks the flag per connection,
        // so one throwaway local connection wakes it into its exit path.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Shut the read half of every live connection: parked readers
        // return 0, submit no further commands, and wind down — while
        // replies already owed still flow out the write half.
        let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        drop(conns);
        let handles: Vec<JoinHandle<()>> = self
            .conn_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stops accepting, drains in-flight connections
    /// (every submitted command is answered), then shuts the runtime down
    /// — draining every shard mailbox and syncing every journal — and
    /// returns the final report.
    pub fn shutdown(mut self) -> RuntimeReport {
        self.stop();
        // lint: allow(no-panic) shutdown() takes self; shared is still Some
        let shared = self.shared.take().expect("server shut down twice");
        match Arc::try_unwrap(shared) {
            // All threads joined, so ours is the last reference and the
            // runtime can be consumed for its draining shutdown.
            Ok(shared) => shared.runtime.shutdown(),
            // Unreachable in practice; degrade to a live report (the
            // runtime still drains on drop).
            Err(shared) => shared.runtime.report(),
        }
    }
}

impl Drop for Server {
    /// Best-effort [`Server::shutdown`] for servers dropped without one:
    /// stops the listener and joins every thread; the runtime inside the
    /// shared state then drains on its own `Drop`.
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for (id, stream) in listener.incoming().enumerate() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let id = u64::try_from(id).unwrap_or(u64::MAX);
        let _ = stream.set_nodelay(true);
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, clone);
        }
        note_conn_event(&shared, EventKind::ConnOpen, id);
        let conn_shared = Arc::clone(&shared);
        let handle = match thread::Builder::new()
            .name(format!("fourcycle-conn-{id}"))
            .spawn(move || serve_connection(conn_shared, stream, id))
        {
            Ok(handle) => handle,
            // Thread exhaustion sheds this one connection (dropping the
            // stream closes it cleanly) instead of killing the acceptor.
            Err(_) => {
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&id);
                shared
                    .counters
                    .open_connections
                    .fetch_sub(1, Ordering::Relaxed);
                note_conn_event(&shared, EventKind::ConnClose, id);
                continue;
            }
        };
        let mut guard = handles.lock().unwrap_or_else(|e| e.into_inner());
        // Reap finished connections so a long-lived server doesn't grow
        // an unbounded list of dead join handles.
        let mut i = 0;
        while i < guard.len() {
            if guard[i].is_finished() {
                let _ = guard.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        guard.push(handle);
    }
}

/// Runs one connection to completion: spawns the writer, then reads and
/// routes commands until EOF / shutdown / overflow, then joins the writer
/// and deregisters.
fn serve_connection(shared: Arc<Shared>, stream: TcpStream, id: u64) {
    let depth = shared.config.pipeline_depth;
    let (tx, rx) = mpsc::sync_channel::<Pending>(depth);
    let writer = match stream.try_clone() {
        Ok(write_half) => {
            let writer_shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("fourcycle-conn-{id}-writer"))
                .spawn(move || write_loop(&writer_shared, write_half, rx))
                .ok()
        }
        Err(_) => None,
    };
    if writer.is_some() {
        read_loop(&shared, stream, &tx);
    }
    // Closing our sender ends the writer once it has drained every reply
    // still owed (the bounded queue plus in-flight tickets).
    drop(tx);
    if let Some(writer) = writer {
        let _ = writer.join();
    }
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&id);
    note_conn_event(&shared, EventKind::ConnClose, id);
    shared
        .counters
        .open_connections
        .fetch_sub(1, Ordering::Relaxed);
}

/// Frames and routes commands until the stream ends. Every accepted line
/// enqueues exactly one [`Pending`] reply; blank lines and `#` comments
/// enqueue nothing (scripts pipe through verbatim).
fn read_loop(shared: &Shared, stream: TcpStream, tx: &SyncSender<Pending>) {
    let max = shared.config.max_line_bytes;
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    loop {
        buf.clear();
        // The +1 sentinel byte distinguishes "exactly max bytes plus the
        // newline" (fine) from "still no newline after max bytes" (fatal:
        // resynchronization inside an unterminated line is impossible).
        let limit = u64::try_from(max).unwrap_or(u64::MAX).saturating_add(1);
        let mut limited = (&mut reader).take(limit);
        match limited.read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF, or shutdown(Read)
            Ok(n) => {
                shared
                    .counters
                    .bytes_in
                    .fetch_add(u64::try_from(n).unwrap_or(u64::MAX), Ordering::Relaxed);
                if buf.len() > max && !buf.ends_with(b"\n") {
                    let oversize = WireError::Parse(format!(
                        "line exceeds the {max}-byte limit; closing connection"
                    ));
                    let _ = tx.send(Pending::Line(oversize.render()));
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        let pending = match std::str::from_utf8(&buf) {
            Ok(raw) => {
                // Same comment/blank handling as the script parser, so
                // recorded scripts replay over the wire unchanged.
                let line = raw.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                match line {
                    "stats" => Pending::Line(render_stats(shared)),
                    "metrics" => Pending::Line(render_metrics_text(shared)),
                    "metrics json" => Pending::Line(render_metrics_json(shared)),
                    "events" => Pending::Line(render_events(shared)),
                    _ => route_command(shared, line),
                }
            }
            Err(_) => Pending::Line(WireError::Parse("invalid utf-8".to_string()).render()),
        };
        // Blocks when `pipeline_depth` replies are already owed: the
        // per-connection bound that turns a non-reading pipeliner into
        // TCP backpressure instead of unbounded server memory.
        if tx.send(pending).is_err() {
            break; // writer is gone (client closed its read half)
        }
    }
}

/// Parses one command line and fires it at the runtime without blocking:
/// a full shard mailbox becomes `err busy` for this client instead of a
/// parked reader thread.
fn route_command(shared: &Shared, line: &str) -> Pending {
    match parse_request(line) {
        Err(e) => Pending::Line(WireError::Parse(e.message).render()),
        Ok(request) => match shared.runtime.try_submit(request) {
            SubmitOutcome::Queued(ticket) => {
                shared.counters.commands.fetch_add(1, Ordering::Relaxed);
                Pending::Ticket(ticket)
            }
            SubmitOutcome::Busy(_) => {
                shared
                    .counters
                    .busy_rejections
                    .fetch_add(1, Ordering::Relaxed);
                Pending::Line(WireError::Busy.render())
            }
        },
    }
}

/// Streams replies back in submission order, flushing whenever the
/// pending queue momentarily drains (batching syscalls under pipelining
/// without ever withholding a quiescent client's reply).
fn write_loop(shared: &Shared, stream: TcpStream, rx: Receiver<Pending>) {
    let mut writer = BufWriter::new(stream);
    'serve: while let Ok(pending) = rx.recv() {
        if !write_reply(shared, &mut writer, pending) {
            break;
        }
        loop {
            match rx.try_recv() {
                Ok(next) => {
                    if !write_reply(shared, &mut writer, next) {
                        break 'serve;
                    }
                }
                Err(TryRecvError::Empty) => {
                    let _ = writer.flush();
                    break;
                }
                Err(TryRecvError::Disconnected) => break 'serve,
            }
        }
    }
    let _ = writer.flush();
}

/// Renders and writes one reply (waiting its ticket first if needed);
/// `false` when the connection is unwritable.
fn write_reply(shared: &Shared, writer: &mut BufWriter<TcpStream>, pending: Pending) -> bool {
    let text = match pending {
        Pending::Line(line) => line,
        Pending::Ticket(ticket) => match ticket.wait() {
            Ok(response) => render_response(&response),
            Err(e) => WireError::from(&e).render(),
        },
    };
    let sent = u64::try_from(text.len())
        .unwrap_or(u64::MAX)
        .saturating_add(1);
    shared.counters.bytes_out.fetch_add(sent, Ordering::Relaxed);
    writer
        .write_all(text.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .is_ok()
}

/// Builds the framed `stats` response: `ok+<n> stats` followed by the
/// JSON document, one continuation line per JSON line.
fn render_stats(shared: &Shared) -> String {
    let json = render_stats_json(&shared.counters.snapshot(), &shared.runtime.report());
    frame("stats", &json)
}

/// Frames a multi-line document as `ok+<n> <tag>` plus its lines.
fn frame(tag: &str, body: &str) -> String {
    let body = body.trim_end_matches('\n');
    format!("ok+{} {tag}\n{body}", body.lines().count())
}

/// Builds the framed `metrics` response: a Prometheus-style text
/// exposition of the telemetry snapshot, or a one-line comment when the
/// runtime was started without telemetry.
fn render_metrics_text(shared: &Shared) -> String {
    match shared.runtime.telemetry() {
        Some(tel) => frame("metrics", &tel.snapshot().render_prometheus()),
        None => frame("metrics", "# telemetry disabled"),
    }
}

/// Builds the framed `metrics json` response: the same snapshot as an
/// all-integer JSON document (counts, sums, nearest-rank percentiles).
fn render_metrics_json(shared: &Shared) -> String {
    match shared.runtime.telemetry() {
        Some(tel) => frame("metrics", &tel.snapshot().render_json()),
        None => frame("metrics", "{\"enabled\": 0}"),
    }
}

/// Builds the framed `events` response, **draining** the event ring:
/// each buffered event renders as one all-integer JSON object. Draining
/// never blocks shard workers (they drop rather than wait on contention).
fn render_events(shared: &Shared) -> String {
    match shared.runtime.telemetry() {
        Some(tel) => frame("events", &expose::render_events_json(&tel.ring().drain())),
        None => frame("events", "{\"events\": []}"),
    }
}

/// Emits a connection-lifecycle event when telemetry is on.
fn note_conn_event(shared: &Shared, kind: EventKind, id: u64) {
    if let Some(tel) = shared.runtime.telemetry() {
        tel.ring().emit(NO_SHARD, kind, id, 0);
    }
}

/// Renders server counters plus a [`RuntimeReport`] as an **all-integer**
/// JSON document — by construction parseable by `fourcycle_store::json`
/// (which rejects floats by design).
pub fn render_stats_json(server: &ServerStats, report: &RuntimeReport) -> String {
    fn shard_object(s: &RuntimeStats) -> String {
        format!(
            "{{\"commands\": {}, \"updates_applied\": {}, \"rejected\": {}, \
             \"queue_full_stalls\": {}, \"groups\": {}, \"journal_fsyncs\": {}, \
             \"busy_nanos\": {}, \"idle_nanos\": {}}}",
            s.commands,
            s.updates_applied,
            s.rejected,
            s.queue_full_stalls,
            s.groups,
            s.journal_fsyncs,
            s.busy_nanos,
            s.idle_nanos
        )
    }
    let mut out = String::new();
    out.push_str("{\n  \"server\": {\n");
    out.push_str(&format!(
        "    \"connections\": {},\n    \"open_connections\": {},\n    \"commands\": {},\n",
        server.connections, server.open_connections, server.commands
    ));
    out.push_str(&format!(
        "    \"busy_rejections\": {},\n    \"bytes_in\": {},\n    \"bytes_out\": {}\n",
        server.busy_rejections, server.bytes_in, server.bytes_out
    ));
    out.push_str("  },\n  \"runtime\": {\n");
    out.push_str(&format!("    \"shards\": {},\n", report.per_shard.len()));
    out.push_str("    \"per_shard\": [\n");
    for (i, shard) in report.per_shard.iter().enumerate() {
        let comma = if i + 1 < report.per_shard.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!("      {}{comma}\n", shard_object(shard)));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"totals\": {}\n  }}\n}}",
        shard_object(&report.totals)
    ));
    out
}

/// Resolves `addr` like [`Client::connect`] does — a tiny convenience for
/// binaries taking `host:port` strings.
pub fn resolve_addr(addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing"))
}
