//! Sparse signed pair-count tables.
//!
//! Every data structure in §3 and §5 of the paper ("`A^{H∗}·B_{<i}`",
//! "`A^{∗S}·B^{S∗}`", "`A^{HS}_{new}·B^{SS}_{old}·C^{SH}_{new}`", …) stores,
//! for pairs of vertices, a signed number of 2- or 3-paths of a particular
//! shape. [`PairCounts`] is that table. It shares the indexed representation
//! of [`SignedAdjacency`] — left vertices interned to dense ids, flat sorted
//! `Vec` rows, zero entries removed eagerly — so that row iteration (used
//! heavily by the maintenance rules) is a contiguous scan and the engine hot
//! paths contain no nested hash maps.

use fourcycle_graph::{SignedAdjacency, VertexId};

/// A sparse signed table of counts indexed by ordered vertex pairs.
#[derive(Debug, Clone, Default)]
pub struct PairCounts {
    table: SignedAdjacency,
}

impl PairCounts {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table sized for roughly `rows` distinct left keys.
    pub fn with_capacity(rows: usize) -> Self {
        Self {
            table: SignedAdjacency::with_capacity(rows),
        }
    }

    /// Adds `delta` to the entry `(a, b)`.
    pub fn add(&mut self, a: VertexId, b: VertexId, delta: i64) {
        self.table.add(a, b, delta);
    }

    /// The entry `(a, b)` (0 if absent).
    pub fn get(&self, a: VertexId, b: VertexId) -> i64 {
        self.table.weight(a, b)
    }

    /// Iterates over the non-zero entries `(b, count)` of row `a`.
    pub fn row(&self, a: VertexId) -> impl Iterator<Item = (VertexId, i64)> + '_ {
        self.table.neighbors(a)
    }

    /// Iterates over all non-zero entries `(a, b, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, i64)> + '_ {
        self.table.iter()
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if the table has no non-zero entry.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Removes every entry (retaining the interner and row allocations).
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Reclaims interner slots of left keys with no live entries (see
    /// [`SignedAdjacency::compact`]).
    pub fn compact(&mut self) {
        self.table.compact();
    }

    /// `true` if `self` and `other` hold exactly the same non-zero entries
    /// (used by the differential tests between incremental maintenance and
    /// from-scratch recomputation).
    pub fn same_entries(&self, other: &PairCounts) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.iter().all(|(a, b, c)| other.get(a, b) == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_cancel() {
        let mut pc = PairCounts::new();
        pc.add(1, 2, 3);
        pc.add(1, 2, -1);
        assert_eq!(pc.get(1, 2), 2);
        assert_eq!(pc.len(), 1);
        pc.add(1, 2, -2);
        assert_eq!(pc.get(1, 2), 0);
        assert_eq!(pc.len(), 0);
        assert!(pc.is_empty());
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut pc = PairCounts::new();
        pc.add(5, 6, 0);
        assert!(pc.is_empty());
    }

    #[test]
    fn row_iteration() {
        let mut pc = PairCounts::with_capacity(4);
        pc.add(1, 10, 2);
        pc.add(1, 11, -1);
        pc.add(2, 10, 7);
        let mut row: Vec<_> = pc.row(1).collect();
        row.sort_unstable();
        assert_eq!(row, vec![(10, 2), (11, -1)]);
        assert_eq!(pc.row(3).count(), 0);
    }

    #[test]
    fn same_entries_detects_differences() {
        let mut a = PairCounts::new();
        let mut b = PairCounts::new();
        a.add(1, 2, 1);
        b.add(1, 2, 1);
        assert!(a.same_entries(&b));
        b.add(3, 4, 1);
        assert!(!a.same_entries(&b));
        a.add(3, 4, 2);
        assert!(!a.same_entries(&b));
    }

    #[test]
    fn clear_empties_table() {
        let mut pc = PairCounts::new();
        pc.add(1, 2, 1);
        pc.add(3, 4, 5);
        pc.clear();
        assert!(pc.is_empty());
        assert_eq!(pc.get(3, 4), 0);
    }
}
