//! The simple `O(n)`-update algorithm of Appendix A, in layered form.
//!
//! Appendix A maintains, for every pair of vertices, the number of wedges
//! (2-paths) between them; an update touches the wedges through its
//! endpoints (`O(n)` of them) and a query walks the neighbors of one query
//! endpoint and sums stored wedge counts (`O(n)`).
//!
//! In the layered frame the only wedge table needed is
//! `W_{BC}[x][v] = #{2-paths x –B– y –C– v}`: updates to `B` or `C` touch at
//! most `deg ≤ n` entries, updates to `A` touch none, and a query sums
//! `W_{BC}[x][v]` over `x ∈ N_A(u)`.

use crate::engine::{QRel, ThreePathEngine};
use crate::pair_counts::PairCounts;
use fourcycle_graph::{coalesce_updates, BipartiteAdjacency, UpdateOp, VertexId};

/// Appendix A: all-pairs wedge counts, `O(n)` worst-case update time.
#[derive(Debug, Default)]
pub struct SimpleEngine {
    a: BipartiteAdjacency,
    b: BipartiteAdjacency,
    c: BipartiteAdjacency,
    /// `W_{BC}[x][v]` — wedges from `x ∈ L2` to `v ∈ L4` through `L3`.
    wedges_bc: PairCounts,
    work: u64,
}

impl SimpleEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty engine sized for roughly `hint` vertices per layer.
    pub fn with_capacity(hint: usize) -> Self {
        Self {
            a: BipartiteAdjacency::with_capacity(hint),
            b: BipartiteAdjacency::with_capacity(hint),
            c: BipartiteAdjacency::with_capacity(hint),
            wedges_bc: PairCounts::with_capacity(hint),
            work: 0,
        }
    }

    /// Number of stored wedge entries (exposed for the memory experiments).
    pub fn stored_wedges(&self) -> usize {
        self.wedges_bc.len()
    }

    /// One signed edge event: wedge-table maintenance plus adjacency.
    fn apply_signed(&mut self, rel: QRel, left: VertexId, right: VertexId, s: i64) {
        match rel {
            QRel::A => {
                self.a.add(left, right, s);
            }
            QRel::B => {
                // New wedge (left, v) for every C-neighbor v of `right`.
                for (v, wc) in self.c.neighbors_of_left(right) {
                    self.work += 1;
                    self.wedges_bc.add(left, v, s * wc);
                }
                self.b.add(left, right, s);
            }
            QRel::C => {
                // New wedge (x, right) for every B-neighbor x of `left`.
                for (x, wb) in self.b.neighbors_of_right(left) {
                    self.work += 1;
                    self.wedges_bc.add(x, right, s * wb);
                }
                self.c.add(left, right, s);
            }
        }
    }
}

impl ThreePathEngine for SimpleEngine {
    fn apply_update(&mut self, rel: QRel, left: VertexId, right: VertexId, op: UpdateOp) {
        self.apply_signed(rel, left, right, op.sign());
    }

    fn apply_batch(&mut self, rel: QRel, updates: &[(VertexId, VertexId, UpdateOp)]) {
        // The wedge table is bilinear in (B, C), so net per-pair deltas give
        // the same final table; cancelled pairs skip their O(deg) scans.
        for (l, r, s) in coalesce_updates(updates) {
            self.apply_signed(rel, l, r, s);
        }
    }

    fn has_edge(&self, rel: QRel, left: VertexId, right: VertexId) -> bool {
        let adj = match rel {
            QRel::A => &self.a,
            QRel::B => &self.b,
            QRel::C => &self.c,
        };
        adj.weight(left, right) != 0
    }

    fn query(&mut self, u: VertexId, v: VertexId) -> i64 {
        let mut total = 0i64;
        for (x, wa) in self.a.neighbors_of_left(u) {
            self.work += 1;
            total += wa * self.wedges_bc.get(x, v);
        }
        total
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "simple-appendix-a"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use fourcycle_graph::UpdateOp::{Delete, Insert};

    /// Replays a fixed mixed insert/delete script on both engines and checks
    /// every query agrees (small hand-rolled differential test; the large
    /// randomized ones live in `tests/`).
    #[test]
    fn agrees_with_naive_on_scripted_stream() {
        let script = [
            (QRel::A, 1, 10, Insert),
            (QRel::B, 10, 20, Insert),
            (QRel::C, 20, 30, Insert),
            (QRel::A, 2, 10, Insert),
            (QRel::C, 20, 31, Insert),
            (QRel::B, 10, 21, Insert),
            (QRel::C, 21, 30, Insert),
            (QRel::B, 10, 20, Delete),
            (QRel::A, 1, 11, Insert),
            (QRel::B, 11, 21, Insert),
            (QRel::B, 10, 20, Insert),
        ];
        let mut simple = SimpleEngine::new();
        let mut naive = NaiveEngine::new();
        for (rel, l, r, op) in script {
            simple.apply_update(rel, l, r, op);
            naive.apply_update(rel, l, r, op);
            for u in [1, 2, 3] {
                for v in [30, 31, 32] {
                    assert_eq!(simple.query(u, v), naive.query(u, v), "query ({u},{v})");
                }
            }
        }
        assert!(simple.stored_wedges() > 0);
    }

    #[test]
    fn update_in_a_is_constant_time() {
        let mut e = SimpleEngine::new();
        e.apply_update(QRel::A, 1, 2, Insert);
        assert_eq!(e.work(), 0, "A-updates touch no wedges");
    }
}
