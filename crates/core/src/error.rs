//! The first-class error model of the update path.
//!
//! The original API returned `Option<i64>` from every mutating entry point
//! and silently ignored ill-formed updates inside batches. That is fine for
//! a single-process experiment harness but useless for a service front door:
//! a caller that sent a duplicate insert needs to know *what* was wrong, and
//! a caller that sent a 10 000-update transaction needs to know *which*
//! update was rejected. [`UpdateError`] names the rejection reasons and
//! [`BatchError`] attributes one to its batch index; every engine, counter
//! and view now offers `try_*` entry points returning these (the old
//! infallible methods remain as thin wrappers).

use fourcycle_graph::UpdateOp;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Why a single edge/tuple update was rejected.
///
/// All validation happens *before* any state is touched: a rejected update
/// (and, for the atomic `try_apply_batch` entry points, a rejected batch)
/// leaves the structure exactly as it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateError {
    /// Insertion of an edge/tuple that is already present.
    DuplicateEdge,
    /// Deletion of an edge/tuple that is not present.
    MissingEdge,
    /// A self-loop `{u, u}` in a general simple graph (layered relations
    /// connect distinct layers, so equal endpoint ids are legal there).
    SelfLoop,
    /// The update targets a relation the structure does not maintain (for
    /// example any relation other than `B` on the §3 warm-up engine, whose
    /// `A` and `C` are fixed, or a layered command sent to a general-graph
    /// service session).
    RelationMismatch,
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::DuplicateEdge => write!(f, "insert of an edge that is already present"),
            UpdateError::MissingEdge => write!(f, "delete of an edge that is not present"),
            UpdateError::SelfLoop => write!(f, "self-loop in a general simple graph"),
            UpdateError::RelationMismatch => {
                write!(
                    f,
                    "update targets a relation this structure does not maintain"
                )
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A rejected batch: the first offending update's index and reason.
///
/// Returned by the atomic `try_apply_batch` entry points, which validate the
/// whole batch (against the current state plus the batch's own earlier
/// updates — an insert followed by a delete of the same edge inside one
/// batch is well-formed) and apply nothing unless every update is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchError {
    /// Index into the submitted batch of the first rejected update.
    pub index: usize,
    /// Why that update was rejected.
    pub error: UpdateError,
}

impl BatchError {
    /// Attributes `error` to position `index` of the batch.
    pub fn at(index: usize, error: UpdateError) -> Self {
        Self { index, error }
    }
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch update #{}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The shared front-end of every atomic `try_apply_batch`: validates a
/// batch against the *current* membership state plus the batch's own
/// earlier updates (an insert followed by a delete of the same key within
/// one batch is well-formed), without touching any state.
///
/// `key_and_op` extracts an update's dedup key and operation — or rejects
/// the update outright (e.g. a self-loop) with the [`UpdateError`] to
/// attribute. `present` answers whether the key's edge/tuple currently
/// exists; it is consulted once per distinct key, on first occurrence.
/// Returns the first offending batch index, exactly as sequential
/// validation would find it.
pub fn validate_batch<U, K, KF, PF>(
    updates: &[U],
    mut key_and_op: KF,
    mut present: PF,
) -> Result<(), BatchError>
where
    K: Eq + Hash,
    KF: FnMut(&U) -> Result<(K, UpdateOp), UpdateError>,
    PF: FnMut(&U) -> bool,
{
    let mut overlay: HashMap<K, bool> = HashMap::with_capacity(updates.len());
    for (i, update) in updates.iter().enumerate() {
        let (key, op) = key_and_op(update).map_err(|e| BatchError::at(i, e))?;
        let entry = overlay.entry(key).or_insert_with(|| present(update));
        match op {
            UpdateOp::Insert if *entry => {
                return Err(BatchError::at(i, UpdateError::DuplicateEdge))
            }
            UpdateOp::Delete if !*entry => return Err(BatchError::at(i, UpdateError::MissingEdge)),
            _ => *entry = op == UpdateOp::Insert,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_batch_tracks_in_batch_state_and_attributes_indices() {
        let present = |&(_, _, _): &(u32, u32, UpdateOp)| false;
        let key = |&(l, r, op): &(u32, u32, UpdateOp)| Ok(((l, r), op));
        use UpdateOp::{Delete, Insert};
        // Insert-then-delete of one pair is fine; re-delete is not.
        assert_eq!(
            validate_batch(&[(1, 2, Insert), (1, 2, Delete)], key, present),
            Ok(())
        );
        assert_eq!(
            validate_batch(
                &[(1, 2, Insert), (1, 2, Delete), (1, 2, Delete)],
                key,
                present
            ),
            Err(BatchError::at(2, UpdateError::MissingEdge))
        );
        // `present` seeds from current state per distinct key.
        assert_eq!(
            validate_batch(&[(5, 5, Insert)], key, |_| true),
            Err(BatchError::at(0, UpdateError::DuplicateEdge))
        );
        // key_and_op rejections are attributed too.
        assert_eq!(
            validate_batch(
                &[(1, 2, Insert), (3, 3, Insert)],
                |&(l, r, op): &(u32, u32, UpdateOp)| {
                    if l == r {
                        Err(UpdateError::SelfLoop)
                    } else {
                        Ok(((l, r), op))
                    }
                },
                present,
            ),
            Err(BatchError::at(1, UpdateError::SelfLoop))
        );
    }

    #[test]
    fn display_names_the_rejection() {
        assert!(UpdateError::DuplicateEdge
            .to_string()
            .contains("already present"));
        assert!(UpdateError::MissingEdge.to_string().contains("not present"));
        assert!(
            UpdateError::SelfLoop.to_string().contains("Self-loop")
                || UpdateError::SelfLoop.to_string().contains("self-loop")
        );
        let batch = BatchError::at(7, UpdateError::RelationMismatch);
        assert_eq!(batch.index, 7);
        assert!(batch.to_string().contains("#7"));
        use std::error::Error;
        assert!(batch.source().is_some());
    }
}
