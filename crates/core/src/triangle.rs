//! A fully dynamic triangle counter.
//!
//! The paper's narrative leans on the triangle problem as the known
//! reference point: triangles can be maintained in `O(m^{1/2})` worst-case
//! time (Kara et al., TODS 2020) and that bound is OMv-tight, while 4-cycles
//! sat at `O(m^{2/3})` before this work. This module provides the standard
//! exact dynamic triangle counter used by the comparison experiments and the
//! IVM examples: on an update `{u, v}` the number of triangles through the
//! edge equals `|N(u) ∩ N(v)|`, computed by scanning the smaller
//! neighborhood. (This is the `O(h)`-style counter of Eppstein–Spiro; it
//! matches the `O(√m)` bound on graphs with bounded h-index and is exact on
//! all graphs.)

use fourcycle_graph::{GeneralGraph, GraphUpdate, UpdateOp, VertexId};

/// Exact fully dynamic triangle counter.
#[derive(Debug, Default)]
pub struct TriangleCounter {
    graph: GeneralGraph,
    count: i64,
    work: u64,
}

impl TriangleCounter {
    /// Creates a counter over an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of triangles.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// The maintained graph (read-only mirror).
    pub fn graph(&self) -> &GeneralGraph {
        &self.graph
    }

    /// Total elementary operations performed.
    pub fn work(&self) -> u64 {
        self.work
    }

    fn common_neighbors(&mut self, u: VertexId, v: VertexId) -> i64 {
        let (small, big) = if self.graph.degree(u) <= self.graph.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let mut common = 0i64;
        for w in self.graph.neighbors(small).collect::<Vec<_>>() {
            self.work += 1;
            if self.graph.has_edge(w, big) {
                common += 1;
            }
        }
        common
    }

    /// Inserts `{u, v}`; returns the new triangle count, or `None` if the
    /// edge already exists or is a self-loop.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> Option<i64> {
        if u == v || self.graph.has_edge(u, v) {
            return None;
        }
        self.count += self.common_neighbors(u, v);
        self.graph.insert(u, v);
        Some(self.count)
    }

    /// Deletes `{u, v}`; returns the new triangle count, or `None` if the
    /// edge is absent.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> Option<i64> {
        if !self.graph.has_edge(u, v) {
            return None;
        }
        self.graph.delete(u, v);
        self.count -= self.common_neighbors(u, v);
        Some(self.count)
    }

    /// Applies a general-graph update.
    pub fn apply(&mut self, update: GraphUpdate) -> Option<i64> {
        match update.op {
            UpdateOp::Insert => self.insert(update.u, update.v),
            UpdateOp::Delete => self.delete(update.u, update.v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_triangles_in_k5_and_under_deletions() {
        let mut counter = TriangleCounter::new();
        for u in 1..=5u32 {
            for v in (u + 1)..=5 {
                counter.insert(u, v);
                assert_eq!(
                    counter.count(),
                    counter.graph().count_triangles_brute_force()
                );
            }
        }
        assert_eq!(counter.count(), 10); // C(5,3)
        counter.delete(1, 2);
        counter.delete(3, 4);
        assert_eq!(
            counter.count(),
            counter.graph().count_triangles_brute_force()
        );
        assert!(counter.insert(1, 3).is_none());
        assert!(counter.delete(1, 2).is_none());
        assert!(counter.work() > 0);
    }
}
