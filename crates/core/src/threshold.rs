//! An `O(m^{2/3})`-update baseline in the style of Hanauer–Henzinger–Hua
//! (SAND 2022), the algorithm the paper improves upon.
//!
//! The original HHH22 algorithm groups vertices into high/low degree classes,
//! stores wedges through low-degree vertices, 3-paths through two low-degree
//! vertices, and wedges through high-degree vertices for high-degree endpoint
//! pairs (§1, "Algorithm of Previous Work"). This module is our
//! reconstruction of that approach for the layered query problem, with a
//! single degree threshold `t = m̂^{2/3}`:
//!
//! * `W_AB^{light}[u][y]` — 2-paths `u–x–y` through *light* `x ∈ L2`,
//! * `W_BC^{light}[x][v]` — 2-paths `x–y–v` through *light* `y ∈ L3`,
//! * `P_LL^{HH}[u][v]` — 3-paths through two light middles, stored only for
//!   pairs of *heavy endpoints* (there are at most `2m/t` of those per side).
//!
//! Every maintenance step and every query case costs `O(m^{2/3})`; classes
//! are kept consistent by rebuilding a vertex's contributions when its degree
//! crosses the threshold, and the whole engine rebuilds when `m` drifts by a
//! factor of two (see DESIGN.md §2.3 for the worst-case vs amortized note).

use crate::engine::{QRel, SlowPathStats, ThreePathEngine};
use crate::pair_counts::PairCounts;
use fourcycle_graph::{coalesce_updates, BipartiteAdjacency, UpdateOp, VertexId};
use std::collections::HashSet;

/// Which layer a vertex is being (re)classified in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    L1,
    L2,
    L3,
    L4,
}

/// The classification roles of a relation's (left, right) endpoints.
fn endpoint_roles(rel: QRel) -> (Role, Role) {
    match rel {
        QRel::A => (Role::L1, Role::L2),
        QRel::B => (Role::L2, Role::L3),
        QRel::C => (Role::L3, Role::L4),
    }
}

/// HHH22-style `O(m^{2/3})` engine.
#[derive(Debug)]
pub struct ThresholdEngine {
    a: BipartiteAdjacency,
    b: BipartiteAdjacency,
    c: BipartiteAdjacency,
    /// Heavy vertex sets per layer (degree ≥ `threshold`).
    heavy_l1: HashSet<VertexId>,
    heavy_l2: HashSet<VertexId>,
    heavy_l3: HashSet<VertexId>,
    heavy_l4: HashSet<VertexId>,
    /// 2-paths `u –A– x –B– y` with `x` light.
    w_ab_light: PairCounts,
    /// 2-paths `x –B– y –C– v` with `y` light.
    w_bc_light: PairCounts,
    /// 3-paths with two light middles, for heavy endpoint pairs only.
    p_ll_hh: PairCounts,
    /// Edge-count scale the threshold was computed for.
    m_hat: usize,
    /// The heavy/light degree threshold `⌈m̂^{2/3}⌉`.
    threshold: usize,
    work: u64,
    era_rebuilds: u64,
    class_transitions: u64,
}

impl Default for ThresholdEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ThresholdEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty engine sized for roughly `hint` vertices per layer.
    pub fn with_capacity(hint: usize) -> Self {
        Self {
            a: BipartiteAdjacency::with_capacity(hint),
            b: BipartiteAdjacency::with_capacity(hint),
            c: BipartiteAdjacency::with_capacity(hint),
            heavy_l1: HashSet::new(),
            heavy_l2: HashSet::new(),
            heavy_l3: HashSet::new(),
            heavy_l4: HashSet::new(),
            w_ab_light: PairCounts::new(),
            w_bc_light: PairCounts::new(),
            p_ll_hh: PairCounts::new(),
            m_hat: 1,
            threshold: 1,
            work: 0,
            era_rebuilds: 0,
            class_transitions: 0,
        }
    }

    /// Current heavy/light threshold (exposed for tests and experiments).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn total_edges(&self) -> usize {
        self.a.len() + self.b.len() + self.c.len()
    }

    fn degree(&self, role: Role, v: VertexId) -> usize {
        match role {
            Role::L1 => self.a.degree_left(v),
            Role::L2 => self.a.degree_right(v) + self.b.degree_left(v),
            Role::L3 => self.b.degree_right(v) + self.c.degree_left(v),
            Role::L4 => self.c.degree_right(v),
        }
    }

    fn heavy_set(&mut self, role: Role) -> &mut HashSet<VertexId> {
        match role {
            Role::L1 => &mut self.heavy_l1,
            Role::L2 => &mut self.heavy_l2,
            Role::L3 => &mut self.heavy_l3,
            Role::L4 => &mut self.heavy_l4,
        }
    }

    fn is_heavy(&self, role: Role, v: VertexId) -> bool {
        match role {
            Role::L1 => self.heavy_l1.contains(&v),
            Role::L2 => self.heavy_l2.contains(&v),
            Role::L3 => self.heavy_l3.contains(&v),
            Role::L4 => self.heavy_l4.contains(&v),
        }
    }

    /// Applies the maintenance rules for one signed edge event. Does not
    /// touch adjacency; callers must follow the insert/delete ordering
    /// convention (rules see the graph *without* the event's edge).
    fn apply_rules(&mut self, rel: QRel, l: VertexId, r: VertexId, s: i64) {
        match rel {
            QRel::A => {
                let (u, x) = (l, r);
                if !self.is_heavy(Role::L2, x) {
                    let updates: Vec<(VertexId, i64)> = self.b.neighbors_of_left(x).collect();
                    for (y, wb) in updates {
                        self.work += 1;
                        self.w_ab_light.add(u, y, s * wb);
                    }
                    if self.is_heavy(Role::L1, u) {
                        let heavies: Vec<VertexId> = self.heavy_l4.iter().copied().collect();
                        for v in heavies {
                            self.work += 1;
                            let w = self.w_bc_light.get(x, v);
                            self.p_ll_hh.add(u, v, s * w);
                        }
                    }
                }
            }
            QRel::B => {
                let (x, y) = (l, r);
                if !self.is_heavy(Role::L2, x) {
                    let updates: Vec<(VertexId, i64)> = self.a.neighbors_of_right(x).collect();
                    for (u, wa) in updates {
                        self.work += 1;
                        self.w_ab_light.add(u, y, s * wa);
                    }
                }
                if !self.is_heavy(Role::L3, y) {
                    let updates: Vec<(VertexId, i64)> = self.c.neighbors_of_left(y).collect();
                    for (v, wc) in updates {
                        self.work += 1;
                        self.w_bc_light.add(x, v, s * wc);
                    }
                }
                if !self.is_heavy(Role::L2, x) && !self.is_heavy(Role::L3, y) {
                    let us: Vec<(VertexId, i64)> = self
                        .heavy_l1
                        .iter()
                        .filter_map(|&u| {
                            let w = self.a.weight(u, x);
                            (w != 0).then_some((u, w))
                        })
                        .collect();
                    let vs: Vec<(VertexId, i64)> = self
                        .heavy_l4
                        .iter()
                        .filter_map(|&v| {
                            let w = self.c.weight(y, v);
                            (w != 0).then_some((v, w))
                        })
                        .collect();
                    let heavy = self.heavy_l1.len() + self.heavy_l4.len();
                    self.work += u64::try_from(heavy).unwrap_or(u64::MAX);
                    for &(u, wa) in &us {
                        for &(v, wc) in &vs {
                            self.work += 1;
                            self.p_ll_hh.add(u, v, s * wa * wc);
                        }
                    }
                }
            }
            QRel::C => {
                let (y, v) = (l, r);
                if !self.is_heavy(Role::L3, y) {
                    let updates: Vec<(VertexId, i64)> = self.b.neighbors_of_right(y).collect();
                    for (x, wb) in updates {
                        self.work += 1;
                        self.w_bc_light.add(x, v, s * wb);
                    }
                    if self.is_heavy(Role::L4, v) {
                        let heavies: Vec<VertexId> = self.heavy_l1.iter().copied().collect();
                        for u in heavies {
                            self.work += 1;
                            let w = self.w_ab_light.get(u, y);
                            self.p_ll_hh.add(u, v, s * w);
                        }
                    }
                }
            }
        }
    }

    fn adjacency_add(&mut self, rel: QRel, l: VertexId, r: VertexId, s: i64) {
        match rel {
            QRel::A => self.a.add(l, r, s),
            QRel::B => self.b.add(l, r, s),
            QRel::C => self.c.add(l, r, s),
        };
    }

    /// All current edges incident to `v` in layer role `role`, as
    /// `(rel, left, right)` triples.
    fn incident_edges(&self, role: Role, v: VertexId) -> Vec<(QRel, VertexId, VertexId)> {
        let mut edges = Vec::new();
        match role {
            Role::L1 => {
                edges.extend(self.a.neighbors_of_left(v).map(|(x, _)| (QRel::A, v, x)));
            }
            Role::L2 => {
                edges.extend(self.a.neighbors_of_right(v).map(|(u, _)| (QRel::A, u, v)));
                edges.extend(self.b.neighbors_of_left(v).map(|(y, _)| (QRel::B, v, y)));
            }
            Role::L3 => {
                edges.extend(self.b.neighbors_of_right(v).map(|(x, _)| (QRel::B, x, v)));
                edges.extend(self.c.neighbors_of_left(v).map(|(w, _)| (QRel::C, v, w)));
            }
            Role::L4 => {
                edges.extend(self.c.neighbors_of_right(v).map(|(y, _)| (QRel::C, y, v)));
            }
        }
        edges
    }

    /// Moves `v` between the heavy and light class of its layer, rebuilding
    /// its contributions: delete its incident edges (rules see the old
    /// class), flip the class, re-insert them (rules see the new class).
    fn transition(&mut self, role: Role, v: VertexId, make_heavy: bool) {
        self.class_transitions += 1;
        let edges = self.incident_edges(role, v);
        for &(rel, l, r) in &edges {
            self.adjacency_add(rel, l, r, -1);
            self.apply_rules(rel, l, r, -1);
        }
        if make_heavy {
            self.heavy_set(role).insert(v);
        } else {
            self.heavy_set(role).remove(&v);
        }
        for &(rel, l, r) in &edges {
            self.apply_rules(rel, l, r, 1);
            self.adjacency_add(rel, l, r, 1);
        }
    }

    fn check_transition(&mut self, role: Role, v: VertexId) {
        let should_be_heavy = self.degree(role, v) >= self.threshold;
        if should_be_heavy != self.is_heavy(role, v) {
            self.transition(role, v, should_be_heavy);
        }
    }

    /// Full rebuild with fresh thresholds (the era rule).
    // lint: m^(2/3) threshold is ceil()ed f64 math, clamped to >= 1
    #[allow(clippy::cast_possible_truncation)]
    fn rebuild(&mut self) {
        self.era_rebuilds += 1;
        let m = self.total_edges().max(1);
        self.m_hat = m;
        // lint: allow(no-as-cast) m^(2/3) threshold is f64 math by definition
        self.threshold = ((m as f64).powf(2.0 / 3.0).ceil() as usize).max(1);

        // Collect every current edge, empty the engine, then re-insert with
        // the final classes pre-computed (no transitions fire during the
        // replay: the classes are already their final values).
        let mut edges: Vec<(QRel, VertexId, VertexId)> = Vec::with_capacity(m);
        edges.extend(self.a.iter().map(|(l, r, _)| (QRel::A, l, r)));
        edges.extend(self.b.iter().map(|(l, r, _)| (QRel::B, l, r)));
        edges.extend(self.c.iter().map(|(l, r, _)| (QRel::C, l, r)));

        // Final classes are determined by the full (current) degrees, which
        // we can read off before clearing adjacency.
        let mut heavy = [
            HashSet::new(),
            HashSet::new(),
            HashSet::new(),
            HashSet::new(),
        ];
        for (role_idx, role) in [Role::L1, Role::L2, Role::L3, Role::L4].iter().enumerate() {
            let candidates: Vec<VertexId> = match role {
                Role::L1 => self.a.left_vertices().collect(),
                Role::L2 => self
                    .a
                    .right_vertices()
                    .chain(self.b.left_vertices())
                    .collect(),
                Role::L3 => self
                    .b
                    .right_vertices()
                    .chain(self.c.left_vertices())
                    .collect(),
                Role::L4 => self.c.right_vertices().collect(),
            };
            for v in candidates {
                if self.degree(*role, v) >= self.threshold {
                    heavy[role_idx].insert(v);
                }
            }
        }
        let [h1, h2, h3, h4] = heavy;
        self.heavy_l1 = h1;
        self.heavy_l2 = h2;
        self.heavy_l3 = h3;
        self.heavy_l4 = h4;

        self.a.clear();
        self.b.clear();
        self.c.clear();
        self.w_ab_light.clear();
        self.w_bc_light.clear();
        self.p_ll_hh.clear();
        for (rel, l, r) in edges {
            self.apply_rules(rel, l, r, 1);
            self.adjacency_add(rel, l, r, 1);
        }
        // The rebuild is the engine's amortization point, so reclaim the
        // interner slots of vertices that no longer appear — otherwise
        // memory (and slot scans) would track vertices ever seen rather
        // than the live graph on unbounded-id streams.
        self.a.compact();
        self.b.compact();
        self.c.compact();
        self.w_ab_light.compact();
        self.w_bc_light.compact();
        self.p_ll_hh.compact();
    }

    fn needs_rebuild(&self) -> bool {
        let m = self.total_edges().max(1);
        m > self.m_hat * 2 || m * 2 < self.m_hat
    }
}

impl ThreePathEngine for ThresholdEngine {
    fn apply_update(&mut self, rel: QRel, left: VertexId, right: VertexId, op: UpdateOp) {
        let s = op.sign();
        if s > 0 {
            self.apply_rules(rel, left, right, s);
            self.adjacency_add(rel, left, right, s);
        } else {
            self.adjacency_add(rel, left, right, s);
            self.apply_rules(rel, left, right, s);
        }
        // Reclassify the two endpoints whose degree just changed.
        let (role_l, role_r) = endpoint_roles(rel);
        self.check_transition(role_l, left);
        self.check_transition(role_r, right);
        if self.needs_rebuild() {
            self.rebuild();
        }
    }

    fn apply_batch(&mut self, rel: QRel, updates: &[(VertexId, VertexId, UpdateOp)]) {
        // Apply the coalesced deltas with transitions deferred: the
        // maintained tables stay consistent with the *stored* classes at
        // every step (the rules only ever read stored classes), so
        // reclassifying each touched endpoint once at the end — a full
        // rebuild of that vertex's contributions — restores the
        // class-degree invariant exactly as per-update application would.
        // The era-rebuild check runs once per batch instead of per edge.
        let events = coalesce_updates(updates);
        let (role_l, role_r) = endpoint_roles(rel);
        let mut touched: Vec<(Role, VertexId)> = Vec::with_capacity(events.len() * 2);
        for &(l, r, s) in &events {
            if s > 0 {
                self.apply_rules(rel, l, r, s);
                self.adjacency_add(rel, l, r, s);
            } else {
                self.adjacency_add(rel, l, r, s);
                self.apply_rules(rel, l, r, s);
            }
            touched.push((role_l, l));
            touched.push((role_r, r));
        }
        // lint: allow(no-as-cast) Role is a fieldless enum, discriminants 0..=3
        touched.sort_unstable_by_key(|&(role, v)| (role as u8, v));
        touched.dedup();
        for (role, v) in touched {
            self.check_transition(role, v);
        }
        if self.needs_rebuild() {
            self.rebuild();
        }
    }

    fn has_edge(&self, rel: QRel, left: VertexId, right: VertexId) -> bool {
        let adj = match rel {
            QRel::A => &self.a,
            QRel::B => &self.b,
            QRel::C => &self.c,
        };
        adj.weight(left, right) != 0
    }

    fn query(&mut self, u: VertexId, v: VertexId) -> i64 {
        let mut total = 0i64;

        // Middles (light, light).
        let u_heavy = self.is_heavy(Role::L1, u);
        let v_heavy = self.is_heavy(Role::L4, v);
        if u_heavy && v_heavy {
            total += self.p_ll_hh.get(u, v);
            self.work += 1;
        } else if !u_heavy {
            for (x, wa) in self.a.neighbors_of_left(u) {
                self.work += 1;
                if !self.heavy_l2.contains(&x) {
                    total += wa * self.w_bc_light.get(x, v);
                }
            }
        } else {
            for (y, wc) in self.c.neighbors_of_right(v) {
                self.work += 1;
                if !self.heavy_l3.contains(&y) {
                    total += wc * self.w_ab_light.get(u, y);
                }
            }
        }

        // Middles (light, heavy): heavy y ∈ L3, any light x — stored wedge
        // table from the u side.
        for &y in &self.heavy_l3 {
            self.work += 1;
            let wc = self.c.weight(y, v);
            if wc != 0 {
                total += wc * self.w_ab_light.get(u, y);
            }
        }

        // Middles (heavy, light).
        for &x in &self.heavy_l2 {
            self.work += 1;
            let wa = self.a.weight(u, x);
            if wa != 0 {
                total += wa * self.w_bc_light.get(x, v);
            }
        }

        // Middles (heavy, heavy): enumerate the ≤ 2m/t heavy pairs.
        let xs: Vec<(VertexId, i64)> = self
            .heavy_l2
            .iter()
            .filter_map(|&x| {
                let w = self.a.weight(u, x);
                (w != 0).then_some((x, w))
            })
            .collect();
        let ys: Vec<(VertexId, i64)> = self
            .heavy_l3
            .iter()
            .filter_map(|&y| {
                let w = self.c.weight(y, v);
                (w != 0).then_some((y, w))
            })
            .collect();
        let heavy = self.heavy_l2.len() + self.heavy_l3.len();
        self.work += u64::try_from(heavy).unwrap_or(u64::MAX);
        for &(x, wa) in &xs {
            for &(y, wc) in &ys {
                self.work += 1;
                total += wa * wc * self.b.weight(x, y);
            }
        }
        total
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn slow_path_stats(&self) -> SlowPathStats {
        SlowPathStats {
            era_rebuilds: self.era_rebuilds,
            phase_rollovers: 0,
            class_transitions: self.class_transitions,
        }
    }

    fn name(&self) -> &'static str {
        "threshold-m23"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use fourcycle_graph::UpdateOp::{Delete, Insert};

    /// A dense-ish scripted stream with a hub vertex that crosses the
    /// heavy/light threshold repeatedly, exercising transitions and the era
    /// rebuild, cross-checked against the oracle after each update.
    #[test]
    fn agrees_with_naive_on_hub_stream() {
        use std::collections::HashSet;
        let mut engine = ThresholdEngine::new();
        let mut naive = NaiveEngine::new();
        let mut present: HashSet<(QRel, u32, u32)> = HashSet::new();
        // Applies only well-formed updates (the counters enforce the same
        // contract on real streams).
        let apply = |e: &mut ThresholdEngine,
                     n: &mut NaiveEngine,
                     present: &mut HashSet<(QRel, u32, u32)>,
                     rel: QRel,
                     l: u32,
                     r: u32,
                     op| {
            let ok = match op {
                Insert => present.insert((rel, l, r)),
                Delete => present.remove(&(rel, l, r)),
            };
            if ok {
                e.apply_update(rel, l, r, op);
                n.apply_update(rel, l, r, op);
            }
        };

        // Hub 100 in L2 connected to many L1/L3 vertices; a second hub 200 in L3.
        for i in 0..12u32 {
            apply(
                &mut engine,
                &mut naive,
                &mut present,
                QRel::A,
                i,
                100,
                Insert,
            );
            apply(
                &mut engine,
                &mut naive,
                &mut present,
                QRel::B,
                100,
                200 + (i % 4),
                Insert,
            );
            apply(
                &mut engine,
                &mut naive,
                &mut present,
                QRel::C,
                200 + (i % 4),
                300 + (i % 3),
                Insert,
            );
            apply(
                &mut engine,
                &mut naive,
                &mut present,
                QRel::A,
                i,
                101 + (i % 5),
                Insert,
            );
            apply(
                &mut engine,
                &mut naive,
                &mut present,
                QRel::B,
                101 + (i % 5),
                200,
                Insert,
            );
            apply(
                &mut engine,
                &mut naive,
                &mut present,
                QRel::C,
                200,
                300,
                Insert,
            );
            for u in [0u32, 3, 7] {
                for v in [300u32, 301, 302] {
                    assert_eq!(
                        engine.query(u, v),
                        naive.query(u, v),
                        "step {i} query ({u},{v})"
                    );
                }
            }
        }
        // Delete some of the hub's edges so it drops back below the threshold.
        for i in 0..8u32 {
            apply(
                &mut engine,
                &mut naive,
                &mut present,
                QRel::A,
                i,
                100,
                Delete,
            );
            for u in [0u32, 9, 11] {
                for v in [300u32, 301, 302] {
                    assert_eq!(
                        engine.query(u, v),
                        naive.query(u, v),
                        "delete {i} query ({u},{v})"
                    );
                }
            }
        }
        assert!(engine.threshold() >= 1);
        assert!(engine.work() > 0);
    }

    #[test]
    fn empty_engine_answers_zero() {
        let mut engine = ThresholdEngine::new();
        assert_eq!(engine.query(1, 2), 0);
    }
}
