//! The main algorithm of the paper (§4–§7): worst-case `O(m^{2/3−ε})` update
//! time for fully dynamic layered 4-cycle counting, using fast matrix
//! multiplication.
//!
//! # Architecture
//!
//! The engine keeps three layers of state:
//!
//! * [`state::GraphState`] — the three relations `A`, `B`, `C`, each split
//!   into an *old* and a *new* signed edge multiset (§5.1: `P_new` is the
//!   current phase plus the previous one, `P_old` everything older; a
//!   deletion of an old edge is a "negative edge" in the new multiset,
//!   §3.3), plus the stored degree classes of every vertex
//!   (Tiny/Low/Medium/High for `L1`, `L4` and Tiny/Sparse/Dense for `L2`,
//!   `L3`, §4 and §6).
//! * [`rules::Structures`] — every pair-count data structure of Tables 2–3
//!   (Eq 12–18) plus the phase-split auxiliaries needed to maintain them,
//!   all driven by a single uniform rule: *given one signed, phase-tagged
//!   edge event, add the number of pattern completions formed with the other
//!   currently-present edges.*
//! * the phase machinery in this module — event logs for the current and
//!   previous phase, rollover (replaying the events that leave the "new"
//!   window as `−1@new, +1@old`), vertex class transitions (§7: remove the
//!   vertex's incident edges, flip its class, re-insert them), and era
//!   rebuilds when `m` drifts by a factor of two.
//!
//! # Where fast matrix multiplication enters
//!
//! At a phase rollover the structures that depend *only* on old-phase edges
//! (`A^{∗D}_{old}·B^{DD}_{old}`, `A^{HS}_{old}·B^{SS}_{old}`,
//! `B^{SS}_{old}·C^{SH}_{old}` and
//! `A^{HS}_{old}·B^{SS}_{old}·C^{SH}_{old}`) can either be updated by the
//! uniform replay (combinatorial path) or recomputed from scratch as matrix
//! products over the class-restricted old submatrices
//! ([`FmmConfig::use_fmm`]), which is exactly the product the paper schedules
//! across a phase (Eq 9). Both paths produce identical tables (differential
//! tests enforce this); the ablation benchmark compares their cost.
//!
//! # Deviations from the paper (documented in DESIGN.md §2.3)
//!
//! * Work that the paper de-amortizes (spreading matrix products and chunk
//!   folds across a phase, overlapping class bands) is performed eagerly at
//!   the rollover / transition, so our bounds are amortized rather than
//!   worst-case; total work per phase is the same.
//! * The `A_old·B_new·C_old` combination, which the paper routes through the
//!   §3 warm-up subroutine, is maintained here as the `(old, new, old)`
//!   member of the Eq-15 family (correct, with an extra `m^{3ε}` factor on
//!   `B`-updates); the standalone [`crate::WarmupEngine`] implements §3 in
//!   full.
//! * Low–low queries resolve dense–dense middles from the `C` side only, so
//!   the symmetric half of Eq 13 (`B^{DD}_{old}·C^{D∗}_{new}`) is not
//!   stored.

pub mod query;
pub mod rules;
pub mod state;

use crate::engine::{QRel, SlowPathStats, ThreePathEngine};
use crate::pair_counts::PairCounts;
use fourcycle_graph::{ClassThresholds, UpdateOp, VertexId};
use fourcycle_matrix::{CompactIndex, DenseMatrix, MulAlgorithm, SparseMatrix};
use rules::Structures;
use state::{GraphState, Tag};

/// Configuration of the main engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmmConfig {
    /// The update-exponent slack `ε` of Theorem 2 (determines every degree
    /// threshold). Defaults to the ideal-`ω` value `1/24`; the current-`ω`
    /// value `0.009811` is equally valid and only changes constants at
    /// implementable scales.
    pub eps: f64,
    /// The phase-length slack `δ` (`m^{1−δ}` updates per phase). Defaults to
    /// `3ε` (Eq 10 tight).
    pub delta: f64,
    /// Use the dense/sparse matrix-product path to rebuild the pure-old
    /// structures at each phase rollover instead of the uniform replay.
    pub use_fmm: bool,
    /// Optional hard override of the phase length (used by tests and the
    /// rollover benchmarks to force frequent rollovers).
    pub phase_len_override: Option<usize>,
}

impl Default for FmmConfig {
    fn default() -> Self {
        let eps = 1.0 / 24.0;
        Self {
            eps,
            delta: 3.0 * eps,
            use_fmm: false,
            phase_len_override: None,
        }
    }
}

impl FmmConfig {
    /// The configuration matching the paper's current-`ω` parameters
    /// (`ε = 0.009811`, `δ = 3ε`).
    pub fn current_omega() -> Self {
        let eps = fourcycle_complexity::PAPER_EPS_CURRENT;
        Self {
            eps,
            delta: 3.0 * eps,
            use_fmm: false,
            phase_len_override: None,
        }
    }
}

/// One logged edge event of the current or previous phase.
type Event = (QRel, VertexId, VertexId, i64);

/// The main engine (§4–§7).
pub struct FmmEngine {
    cfg: FmmConfig,
    state: GraphState,
    structs: Structures,
    /// Events of the previous phase (will leave the "new" window at the next
    /// rollover).
    prev_phase: Vec<Event>,
    /// Events of the current phase.
    cur_phase: Vec<Event>,
    updates_in_phase: usize,
    rollovers: usize,
    era_rebuilds: usize,
    class_transitions: u64,
    query_work: u64,
}

impl FmmEngine {
    /// Creates an empty engine.
    pub fn new(cfg: FmmConfig) -> Self {
        let thresholds = ClassThresholds::with_delta(1, cfg.eps, cfg.delta);
        Self {
            cfg,
            state: GraphState::new(thresholds),
            structs: Structures::new(),
            prev_phase: Vec::new(),
            cur_phase: Vec::new(),
            updates_in_phase: 0,
            rollovers: 0,
            era_rebuilds: 0,
            class_transitions: 0,
            query_work: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FmmConfig {
        &self.cfg
    }

    /// Number of phase rollovers performed so far.
    pub fn rollovers(&self) -> usize {
        self.rollovers
    }

    /// Number of era rebuilds performed so far.
    pub fn era_rebuilds(&self) -> usize {
        self.era_rebuilds
    }

    /// Access to the internal state (used by white-box tests).
    #[doc(hidden)]
    pub fn debug_state(&self) -> (&GraphState, &Structures) {
        (&self.state, &self.structs)
    }

    fn phase_len(&self) -> usize {
        self.cfg
            .phase_len_override
            .unwrap_or(self.state.thresholds.phase_len)
            .max(1)
    }

    /// Reclassifies `role`-vertex `w` if its stored class no longer matches
    /// its degree (§7): remove its incident (tagged, signed) edges, flip the
    /// class, re-insert them.
    fn maybe_transition(&mut self, role: state::Role, w: VertexId) {
        let desired = self.state.desired_class(role, w);
        if desired == self.state.stored_class(role, w) {
            return;
        }
        self.class_transitions += 1;
        let entries = self.state.incident_tagged_entries(role, w);
        for &(rel, tag, l, r, wgt) in &entries {
            self.state.add_edge_weight(rel, tag, l, r, -wgt);
            self.structs.apply(&self.state, rel, tag, l, r, -wgt);
        }
        self.state.set_stored_class(role, w, desired);
        for &(rel, tag, l, r, wgt) in &entries {
            self.structs.apply(&self.state, rel, tag, l, r, wgt);
            self.state.add_edge_weight(rel, tag, l, r, wgt);
        }
    }

    /// Phase rollover (§5.1): the previous phase's events leave the "new"
    /// window and are re-accounted as old; the current phase becomes the
    /// previous one.
    fn rollover(&mut self) {
        let rolled = std::mem::take(&mut self.prev_phase);
        self.structs.skip_pure_old = self.cfg.use_fmm;
        for &(rel, l, r, s) in &rolled {
            self.structs.apply(&self.state, rel, Tag::New, l, r, -s);
            self.structs.apply(&self.state, rel, Tag::Old, l, r, s);
            self.state.retag_new_to_old(rel, l, r, s);
        }
        self.structs.skip_pure_old = false;
        if self.cfg.use_fmm {
            self.rebuild_pure_old_structures();
        }
        self.prev_phase = std::mem::take(&mut self.cur_phase);
        self.updates_in_phase = 0;
        self.rollovers += 1;
    }

    /// Era rebuild: thresholds are recomputed for the current `m`, every
    /// current edge is re-accounted as old, and the phase clock restarts.
    fn rebuild_era(&mut self) {
        let edges = self.state.current_edges();
        let m = edges.len().max(1);
        let thresholds = ClassThresholds::with_delta(m, self.cfg.eps, self.cfg.delta);
        let mut state = GraphState::new(thresholds);
        state.preset_classes_from_edges(&edges);
        let mut structs = Structures::new();
        structs.work = self.structs.work;
        structs.skip_pure_old = self.cfg.use_fmm;
        for &(rel, l, r) in &edges {
            structs.apply(&state, rel, Tag::Old, l, r, 1);
            state.add_edge_weight(rel, Tag::Old, l, r, 1);
        }
        structs.skip_pure_old = false;
        self.state = state;
        self.structs = structs;
        if self.cfg.use_fmm {
            self.rebuild_pure_old_structures();
        }
        self.prev_phase.clear();
        self.cur_phase.clear();
        self.updates_in_phase = 0;
        self.era_rebuilds += 1;
    }

    /// Recomputes the structures that depend only on old-phase edges (and are
    /// not read by any maintenance rule) as
    /// (class-restricted) matrix products — the paper's use of fast matrix
    /// multiplication during a phase (§5.1). Dense Strassen multiplication is
    /// used while the dimensions are moderate, a sparse product above that.
    fn rebuild_pure_old_structures(&mut self) {
        const DENSE_LIMIT: usize = 1024;
        let st = &self.state;

        // A^{*D}_old · B^{DD}_old  (keys: (u ∈ L1, y ∈ Dense L3)).
        let a_old = st.adj(QRel::A, Some(Tag::Old));
        let b_old = st.adj(QRel::B, Some(Tag::Old));
        let c_old = st.adj(QRel::C, Some(Tag::Old));

        let rows_l1 = CompactIndex::from_vertices(a_old.left_vertices());
        let mid_d2 = CompactIndex::from_vertices(st.dense_l2.iter().copied());
        let cols_d3 = CompactIndex::from_vertices(st.dense_l3.iter().copied());
        let a_mat = build_sparse(&rows_l1, &mid_d2, a_old.iter());
        let b_dd = build_sparse(&mid_d2, &cols_d3, b_old.iter());
        self.structs.abd_oo = product_to_counts(&a_mat, &b_dd, &rows_l1, &cols_d3, DENSE_LIMIT);

        // A^{HS}_old · B^{SS}_old (intermediate for the triple product; the
        // aux table itself stays incrementally maintained because the
        // mixed-phase rules read it during the rollover replay).
        let rows_h1 = CompactIndex::from_vertices(st.high_l1.iter().copied());
        let mid_s2 = CompactIndex::from_vertices(
            a_old
                .iter()
                .filter(|&(u, x, _)| st.high_l1.contains(&u) && st.is_sparse_l2(x))
                .map(|(_, x, _)| x)
                .chain(
                    b_old
                        .iter()
                        .filter(|&(x, _, _)| st.is_sparse_l2(x))
                        .map(|(x, _, _)| x),
                ),
        );
        let cols_s3 = CompactIndex::from_vertices(
            b_old
                .iter()
                .filter(|&(_, y, _)| st.is_sparse_l3(y))
                .map(|(_, y, _)| y)
                .chain(
                    c_old
                        .iter()
                        .filter(|&(y, _, _)| st.is_sparse_l3(y))
                        .map(|(y, _, _)| y),
                ),
        );
        let a_hs = build_sparse(&rows_h1, &mid_s2, a_old.iter());
        let b_ss = build_sparse(&mid_s2, &cols_s3, b_old.iter());
        let ab_hs_mat = multiply(&a_hs, &b_ss, DENSE_LIMIT);
        let cols_h4 = CompactIndex::from_vertices(st.high_l4.iter().copied());
        let c_sh = build_sparse(&cols_s3, &cols_h4, c_old.iter());

        // A^{HS}_old · B^{SS}_old · C^{SH}_old  (keys: (u ∈ High L1, v ∈ High L4)).
        let hss_mat = multiply(&ab_hs_mat, &c_sh, DENSE_LIMIT);
        self.structs.hss3[0][0][0] = sparse_to_counts(&hss_mat, &rows_h1, &cols_h4);
    }
}

/// Builds a sparse matrix from `(left, right, weight)` triples, keeping only
/// entries whose endpoints appear in the row/column indices.
fn build_sparse(
    rows: &CompactIndex,
    cols: &CompactIndex,
    entries: impl Iterator<Item = (VertexId, VertexId, i64)>,
) -> SparseMatrix {
    SparseMatrix::from_triplets(
        rows.len(),
        cols.len(),
        entries.filter_map(|(l, r, w)| Some((rows.index_of(l)?, cols.index_of(r)?, w))),
    )
}

/// Multiplies two sparse matrices, going through the dense (Strassen-capable)
/// kernel when the dimensions are small enough to afford it.
fn multiply(a: &SparseMatrix, b: &SparseMatrix, dense_limit: usize) -> SparseMatrix {
    let max_dim = a.rows().max(a.cols()).max(b.cols());
    if max_dim > 0 && max_dim <= dense_limit {
        let dense = a.to_dense().multiply(&b.to_dense(), MulAlgorithm::Auto);
        SparseMatrix::from_dense(&dense)
    } else {
        a.multiply_sparse(b)
    }
}

/// Converts a product matrix back into vertex-keyed pair counts.
fn sparse_to_counts(m: &SparseMatrix, rows: &CompactIndex, cols: &CompactIndex) -> PairCounts {
    let mut out = PairCounts::new();
    for (r, c, v) in m.iter() {
        out.add(rows.vertex_at(r), cols.vertex_at(c), v);
    }
    out
}

/// Convenience: multiplies and converts in one step.
fn product_to_counts(
    a: &SparseMatrix,
    b: &SparseMatrix,
    rows: &CompactIndex,
    cols: &CompactIndex,
    dense_limit: usize,
) -> PairCounts {
    sparse_to_counts(&multiply(a, b, dense_limit), rows, cols)
}

/// Silence the unused-import lint for DenseMatrix when the dense path is
/// compiled out by the limit logic above (it is used through `to_dense`).
// lint: dead-code marker keeps the DenseMatrix import live in every cfg
#[allow(dead_code)]
fn _dense_marker(_: &DenseMatrix) {}

/// The classification roles of a relation's (left, right) endpoints (§7).
fn endpoint_roles(rel: QRel) -> (state::Role, state::Role) {
    match rel {
        QRel::A => (state::Role::Ep1, state::Role::Mid2),
        QRel::B => (state::Role::Mid2, state::Role::Mid3),
        QRel::C => (state::Role::Mid3, state::Role::Ep4),
    }
}

impl ThreePathEngine for FmmEngine {
    fn apply_update(&mut self, rel: QRel, left: VertexId, right: VertexId, op: UpdateOp) {
        let s = op.sign();
        self.structs
            .apply(&self.state, rel, Tag::New, left, right, s);
        self.state.add_edge_weight(rel, Tag::New, left, right, s);
        self.cur_phase.push((rel, left, right, s));

        // Reclassify the vertices whose degree just changed (§7).
        let (role_l, role_r) = endpoint_roles(rel);
        self.maybe_transition(role_l, left);
        self.maybe_transition(role_r, right);

        // Era rule: thresholds drifted too far from the current m.
        if self
            .state
            .thresholds
            .needs_rebuild(self.state.total_edges())
        {
            self.rebuild_era();
            return;
        }

        // Phase clock (§5.1).
        self.updates_in_phase += 1;
        if self.updates_in_phase >= self.phase_len() {
            self.rollover();
        }
    }

    fn has_edge(&self, rel: QRel, left: VertexId, right: VertexId) -> bool {
        // Membership is answered from the total (untagged) adjacency: an
        // edge deleted in a later phase than its insertion nets to weight 0
        // across the old/new split, exactly as in the current graph.
        self.state.adj(rel, None).weight(left, right) != 0
    }

    fn apply_batch(&mut self, rel: QRel, updates: &[(VertexId, VertexId, UpdateOp)]) {
        // Net per-pair deltas: every maintained structure is multilinear in
        // the tagged signed edge multisets, so applying the net sign once
        // yields the same tables, and cancelled pairs never enter the phase
        // event log (they would otherwise cost rollover replay work later).
        // Class transitions (§7) are settled once per touched vertex at the
        // end of the batch — the rules read *stored* classes, so the tables
        // remain internally consistent mid-batch — and the era/phase clocks
        // tick per batch instead of per update, which is exactly the
        // amortization the paper's phase structure (§5.1) is built around.
        let events = fourcycle_graph::coalesce_updates(updates);
        let (role_l, role_r) = endpoint_roles(rel);
        let mut touched: Vec<(u8, VertexId)> = Vec::with_capacity(events.len() * 2);
        for &(l, r, s) in &events {
            self.structs.apply(&self.state, rel, Tag::New, l, r, s);
            self.state.add_edge_weight(rel, Tag::New, l, r, s);
            self.cur_phase.push((rel, l, r, s));
            // lint: allow(no-as-cast) Role is a fieldless enum, discriminants 0..=3
            touched.push((role_l as u8, l));
            // lint: allow(no-as-cast) Role is a fieldless enum, discriminants 0..=3
            touched.push((role_r as u8, r));
        }
        touched.sort_unstable();
        touched.dedup();
        for (role, w) in touched {
            let role = [
                state::Role::Ep1,
                state::Role::Mid2,
                state::Role::Mid3,
                state::Role::Ep4,
            ][usize::from(role)];
            self.maybe_transition(role, w);
        }

        if self
            .state
            .thresholds
            .needs_rebuild(self.state.total_edges())
        {
            self.rebuild_era();
            return;
        }
        self.updates_in_phase += events.len();
        if self.updates_in_phase >= self.phase_len() {
            self.rollover();
        }
    }

    fn query(&mut self, u: VertexId, v: VertexId) -> i64 {
        self.query_impl(u, v)
    }

    fn work(&self) -> u64 {
        self.structs.work + self.query_work
    }

    fn slow_path_stats(&self) -> SlowPathStats {
        SlowPathStats {
            era_rebuilds: u64::try_from(self.era_rebuilds).unwrap_or(u64::MAX),
            phase_rollovers: u64::try_from(self.rollovers).unwrap_or(u64::MAX),
            class_transitions: self.class_transitions,
        }
    }

    fn name(&self) -> &'static str {
        if self.cfg.use_fmm {
            "fmm-main-dense"
        } else {
            "fmm-main"
        }
    }
}
