//! Phase-tagged graph state and stored degree classes for the main engine.
//!
//! Each of the three relations is kept as three signed adjacency structures:
//! the *total* (current) graph, the *old* multiset (edges accounted to phases
//! older than the previous one) and the *new* multiset (events of the
//! previous and current phase, §5.1). `total = old + new` holds at all times;
//! individual tagged weights may be negative ("negative edges", §3.3).
//!
//! Vertex classes are *stored* rather than derived on demand: the engine
//! reclassifies a vertex explicitly (§7) by replaying its incident edges, so
//! every data-structure rule sees a single consistent classification.

use crate::engine::QRel;
use fourcycle_graph::{BipartiteAdjacency, ClassThresholds, EndpointClass, MiddleClass, VertexId};
use std::collections::{HashMap, HashSet};

/// Phase tag of an edge event (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// Phases older than the previous phase (`P_old`).
    Old,
    /// The previous and current phase (`P_new`).
    New,
}

impl Tag {
    /// Index 0 (old) / 1 (new), used for the phase-split structure arrays.
    pub fn index(self) -> usize {
        match self {
            Tag::Old => 0,
            Tag::New => 1,
        }
    }

    /// Both tags, old first.
    pub const BOTH: [Tag; 2] = [Tag::Old, Tag::New];
}

/// Which classification a vertex is being handled under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `L1` endpoint (classified by degree in `A`).
    Ep1,
    /// `L2` middle (classified by combined degree in `A`, `B`).
    Mid2,
    /// `L3` middle (classified by combined degree in `B`, `C`).
    Mid3,
    /// `L4` endpoint (classified by degree in `C`).
    Ep4,
}

/// A unified class code so transitions can compare endpoint and middle
/// classes with one type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassCode {
    /// Endpoint class (L1/L4).
    Endpoint(EndpointClass),
    /// Middle class (L2/L3).
    Middle(MiddleClass),
}

/// One relation's phase-tagged adjacency.
#[derive(Debug, Default)]
pub struct RelState {
    /// The current graph (weights 0/1 between transitions).
    pub total: BipartiteAdjacency,
    /// Old-phase signed multiset.
    pub old: BipartiteAdjacency,
    /// New-window signed multiset (previous + current phase events).
    pub new: BipartiteAdjacency,
}

/// The engine's graph state: tagged adjacency, thresholds and stored classes.
pub struct GraphState {
    /// Relations indexed by [`QRel::index`].
    pub rels: [RelState; 3],
    /// Degree thresholds of the current era.
    pub thresholds: ClassThresholds,
    ep_l1: HashMap<VertexId, EndpointClass>,
    ep_l4: HashMap<VertexId, EndpointClass>,
    mid_l2: HashMap<VertexId, MiddleClass>,
    mid_l3: HashMap<VertexId, MiddleClass>,
    /// High-degree vertices of `L1` (small set, iterated by rules/queries).
    pub high_l1: HashSet<VertexId>,
    /// High-degree vertices of `L4`.
    pub high_l4: HashSet<VertexId>,
    /// Dense vertices of `L2`.
    pub dense_l2: HashSet<VertexId>,
    /// Dense vertices of `L3`.
    pub dense_l3: HashSet<VertexId>,
}

impl GraphState {
    /// Creates an empty state with the given thresholds.
    pub fn new(thresholds: ClassThresholds) -> Self {
        Self {
            rels: [
                RelState::default(),
                RelState::default(),
                RelState::default(),
            ],
            thresholds,
            ep_l1: HashMap::new(),
            ep_l4: HashMap::new(),
            mid_l2: HashMap::new(),
            mid_l3: HashMap::new(),
            high_l1: HashSet::new(),
            high_l4: HashSet::new(),
            dense_l2: HashSet::new(),
            dense_l3: HashSet::new(),
        }
    }

    /// The requested adjacency: `None` → the total (current) graph,
    /// `Some(tag)` → the tagged multiset.
    pub fn adj(&self, rel: QRel, tag: Option<Tag>) -> &BipartiteAdjacency {
        let r = &self.rels[rel.index()];
        match tag {
            None => &r.total,
            Some(Tag::Old) => &r.old,
            Some(Tag::New) => &r.new,
        }
    }

    /// Adds `delta` to the tagged multiset *and* the total graph.
    pub fn add_edge_weight(&mut self, rel: QRel, tag: Tag, l: VertexId, r: VertexId, delta: i64) {
        let rs = &mut self.rels[rel.index()];
        match tag {
            Tag::Old => rs.old.add(l, r, delta),
            Tag::New => rs.new.add(l, r, delta),
        };
        rs.total.add(l, r, delta);
    }

    /// Moves weight `s` of the pair from the new multiset to the old one
    /// (rollover); the total is unchanged.
    pub fn retag_new_to_old(&mut self, rel: QRel, l: VertexId, r: VertexId, s: i64) {
        let rs = &mut self.rels[rel.index()];
        rs.new.add(l, r, -s);
        rs.old.add(l, r, s);
    }

    /// Total number of edges currently present (the paper's `m`).
    pub fn total_edges(&self) -> usize {
        self.rels.iter().map(|r| r.total.len()).sum()
    }

    /// Every currently present edge as `(rel, left, right)`.
    pub fn current_edges(&self) -> Vec<(QRel, VertexId, VertexId)> {
        let mut out = Vec::with_capacity(self.total_edges());
        for rel in QRel::ALL {
            for (l, r, w) in self.rels[rel.index()].total.iter() {
                debug_assert!(w == 1, "current graph must be simple");
                out.push((rel, l, r));
            }
        }
        out
    }

    // ---- degrees --------------------------------------------------------

    /// Degree of an `L1` vertex in `A`.
    pub fn deg_l1(&self, u: VertexId) -> usize {
        self.rels[QRel::A.index()].total.degree_left(u)
    }

    /// Combined degree of an `L2` vertex in `A` and `B`.
    pub fn deg_l2(&self, x: VertexId) -> usize {
        self.rels[QRel::A.index()].total.degree_right(x)
            + self.rels[QRel::B.index()].total.degree_left(x)
    }

    /// Combined degree of an `L3` vertex in `B` and `C`.
    pub fn deg_l3(&self, y: VertexId) -> usize {
        self.rels[QRel::B.index()].total.degree_right(y)
            + self.rels[QRel::C.index()].total.degree_left(y)
    }

    /// Degree of an `L4` vertex in `C`.
    pub fn deg_l4(&self, v: VertexId) -> usize {
        self.rels[QRel::C.index()].total.degree_right(v)
    }

    // ---- stored classes -------------------------------------------------

    /// Stored class of an `L1` endpoint (Tiny if never classified).
    pub fn ep1(&self, u: VertexId) -> EndpointClass {
        self.ep_l1.get(&u).copied().unwrap_or(EndpointClass::Tiny)
    }

    /// Stored class of an `L4` endpoint.
    pub fn ep4(&self, v: VertexId) -> EndpointClass {
        self.ep_l4.get(&v).copied().unwrap_or(EndpointClass::Tiny)
    }

    /// Stored class of an `L2` middle.
    pub fn mid2(&self, x: VertexId) -> MiddleClass {
        self.mid_l2.get(&x).copied().unwrap_or(MiddleClass::Tiny)
    }

    /// Stored class of an `L3` middle.
    pub fn mid3(&self, y: VertexId) -> MiddleClass {
        self.mid_l3.get(&y).copied().unwrap_or(MiddleClass::Tiny)
    }

    /// `true` if `x ∈ L2` is Sparse (not Tiny, not Dense).
    pub fn is_sparse_l2(&self, x: VertexId) -> bool {
        self.mid2(x) == MiddleClass::Sparse
    }

    /// `true` if `y ∈ L3` is Sparse.
    pub fn is_sparse_l3(&self, y: VertexId) -> bool {
        self.mid3(y) == MiddleClass::Sparse
    }

    /// The class a vertex *should* have given its current degree.
    pub fn desired_class(&self, role: Role, w: VertexId) -> ClassCode {
        match role {
            Role::Ep1 => ClassCode::Endpoint(self.thresholds.endpoint_class(self.deg_l1(w))),
            Role::Ep4 => ClassCode::Endpoint(self.thresholds.endpoint_class(self.deg_l4(w))),
            Role::Mid2 => ClassCode::Middle(self.thresholds.middle_class(self.deg_l2(w))),
            Role::Mid3 => ClassCode::Middle(self.thresholds.middle_class(self.deg_l3(w))),
        }
    }

    /// The class a vertex is currently stored under.
    pub fn stored_class(&self, role: Role, w: VertexId) -> ClassCode {
        match role {
            Role::Ep1 => ClassCode::Endpoint(self.ep1(w)),
            Role::Ep4 => ClassCode::Endpoint(self.ep4(w)),
            Role::Mid2 => ClassCode::Middle(self.mid2(w)),
            Role::Mid3 => ClassCode::Middle(self.mid3(w)),
        }
    }

    /// Overwrites a vertex's stored class (and the High/Dense member sets).
    pub fn set_stored_class(&mut self, role: Role, w: VertexId, class: ClassCode) {
        match (role, class) {
            (Role::Ep1, ClassCode::Endpoint(c)) => {
                self.ep_l1.insert(w, c);
                if c == EndpointClass::High {
                    self.high_l1.insert(w);
                } else {
                    self.high_l1.remove(&w);
                }
            }
            (Role::Ep4, ClassCode::Endpoint(c)) => {
                self.ep_l4.insert(w, c);
                if c == EndpointClass::High {
                    self.high_l4.insert(w);
                } else {
                    self.high_l4.remove(&w);
                }
            }
            (Role::Mid2, ClassCode::Middle(c)) => {
                self.mid_l2.insert(w, c);
                if c == MiddleClass::Dense {
                    self.dense_l2.insert(w);
                } else {
                    self.dense_l2.remove(&w);
                }
            }
            (Role::Mid3, ClassCode::Middle(c)) => {
                self.mid_l3.insert(w, c);
                if c == MiddleClass::Dense {
                    self.dense_l3.insert(w);
                } else {
                    self.dense_l3.remove(&w);
                }
            }
            // lint: allow(no-panic) callers pair each Role with its own class code
            _ => panic!("class code does not match vertex role"),
        }
    }

    /// All non-zero tagged entries incident to `w` in the relations adjoining
    /// its layer, as `(rel, tag, left, right, weight)` — including entries
    /// whose total weight is zero (an edge inserted in an old phase and
    /// deleted in the new window still contributes to phase-split
    /// structures).
    pub fn incident_tagged_entries(
        &self,
        role: Role,
        w: VertexId,
    ) -> Vec<(QRel, Tag, VertexId, VertexId, i64)> {
        let mut out = Vec::new();
        let push_left = |rel: QRel, out: &mut Vec<_>| {
            for tag in Tag::BOTH {
                for (r, wgt) in self.adj(rel, Some(tag)).neighbors_of_left(w) {
                    out.push((rel, tag, w, r, wgt));
                }
            }
        };
        let push_right = |rel: QRel, out: &mut Vec<_>| {
            for tag in Tag::BOTH {
                for (l, wgt) in self.adj(rel, Some(tag)).neighbors_of_right(w) {
                    out.push((rel, tag, l, w, wgt));
                }
            }
        };
        match role {
            Role::Ep1 => push_left(QRel::A, &mut out),
            Role::Mid2 => {
                push_right(QRel::A, &mut out);
                push_left(QRel::B, &mut out);
            }
            Role::Mid3 => {
                push_right(QRel::B, &mut out);
                push_left(QRel::C, &mut out);
            }
            Role::Ep4 => push_right(QRel::C, &mut out),
        }
        out
    }

    /// Pre-sets every vertex's stored class from the degrees implied by the
    /// given edge list (used by the era rebuild, where the final classes are
    /// known before the edges are replayed).
    pub fn preset_classes_from_edges(&mut self, edges: &[(QRel, VertexId, VertexId)]) {
        let mut d1: HashMap<VertexId, usize> = HashMap::new();
        let mut d2: HashMap<VertexId, usize> = HashMap::new();
        let mut d3: HashMap<VertexId, usize> = HashMap::new();
        let mut d4: HashMap<VertexId, usize> = HashMap::new();
        for &(rel, l, r) in edges {
            match rel {
                QRel::A => {
                    *d1.entry(l).or_insert(0) += 1;
                    *d2.entry(r).or_insert(0) += 1;
                }
                QRel::B => {
                    *d2.entry(l).or_insert(0) += 1;
                    *d3.entry(r).or_insert(0) += 1;
                }
                QRel::C => {
                    *d3.entry(l).or_insert(0) += 1;
                    *d4.entry(r).or_insert(0) += 1;
                }
            }
        }
        for (&u, &d) in &d1 {
            self.set_stored_class(
                Role::Ep1,
                u,
                ClassCode::Endpoint(self.thresholds.endpoint_class(d)),
            );
        }
        for (&v, &d) in &d4 {
            self.set_stored_class(
                Role::Ep4,
                v,
                ClassCode::Endpoint(self.thresholds.endpoint_class(d)),
            );
        }
        for (&x, &d) in &d2 {
            self.set_stored_class(
                Role::Mid2,
                x,
                ClassCode::Middle(self.thresholds.middle_class(d)),
            );
        }
        for (&y, &d) in &d3 {
            self.set_stored_class(
                Role::Mid3,
                y,
                ClassCode::Middle(self.thresholds.middle_class(d)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_state() -> GraphState {
        GraphState::new(ClassThresholds::with_delta(100, 1.0 / 24.0, 1.0 / 8.0))
    }

    #[test]
    fn tagged_adjacency_and_retagging() {
        let mut st = small_state();
        st.add_edge_weight(QRel::B, Tag::New, 1, 2, 1);
        assert_eq!(st.adj(QRel::B, Some(Tag::New)).weight(1, 2), 1);
        assert_eq!(st.adj(QRel::B, None).weight(1, 2), 1);
        st.retag_new_to_old(QRel::B, 1, 2, 1);
        assert_eq!(st.adj(QRel::B, Some(Tag::New)).weight(1, 2), 0);
        assert_eq!(st.adj(QRel::B, Some(Tag::Old)).weight(1, 2), 1);
        assert_eq!(st.adj(QRel::B, None).weight(1, 2), 1);
        assert_eq!(st.total_edges(), 1);
    }

    #[test]
    fn negative_edges_keep_tagged_entries() {
        let mut st = small_state();
        st.add_edge_weight(QRel::A, Tag::Old, 1, 2, 1);
        st.add_edge_weight(QRel::A, Tag::New, 1, 2, -1);
        assert_eq!(st.adj(QRel::A, None).weight(1, 2), 0);
        assert_eq!(st.total_edges(), 0);
        // The transition machinery must still see both tagged entries.
        let entries = st.incident_tagged_entries(Role::Ep1, 1);
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn classes_default_to_tiny_and_sets_track_high() {
        let mut st = small_state();
        assert_eq!(st.ep1(7), EndpointClass::Tiny);
        assert_eq!(st.mid3(7), MiddleClass::Tiny);
        st.set_stored_class(Role::Ep1, 7, ClassCode::Endpoint(EndpointClass::High));
        assert!(st.high_l1.contains(&7));
        st.set_stored_class(Role::Ep1, 7, ClassCode::Endpoint(EndpointClass::Low));
        assert!(!st.high_l1.contains(&7));
        st.set_stored_class(Role::Mid2, 9, ClassCode::Middle(MiddleClass::Dense));
        assert!(st.dense_l2.contains(&9));
    }

    #[test]
    fn preset_classes_from_edges_matches_thresholds() {
        let mut st = small_state();
        let mut edges = Vec::new();
        // Vertex 1 in L1 gets a degree above the High threshold.
        for x in 0..(st.thresholds.high_lo as u32 + 1) {
            edges.push((QRel::A, 1u32, 100 + x));
        }
        edges.push((QRel::B, 100, 200));
        st.preset_classes_from_edges(&edges);
        assert_eq!(st.ep1(1), EndpointClass::High);
        assert!(st.high_l1.contains(&1));
        assert_eq!(st.mid2(100), st.thresholds.middle_class(2));
    }

    #[test]
    #[should_panic(expected = "class code does not match")]
    fn mismatched_class_code_panics() {
        let mut st = small_state();
        st.set_stored_class(Role::Ep1, 1, ClassCode::Middle(MiddleClass::Dense));
    }
}
