//! Query answering for the main engine (§5.3, §6.2, §6.3).
//!
//! A query `(u ∈ L1, v ∈ L4)` asks for the number of 3-paths
//! `u –A– x –B– y –C– v`. The answer is assembled as a sum over the middle
//! classes `(class(x), class(y)) ∈ {Tiny, Sparse, Dense}²`, with the
//! mechanism for each term chosen by the endpoint classes exactly as in the
//! paper's case analysis:
//!
//! * a Tiny endpoint is handled by §6.2 (its neighborhood is small enough to
//!   enumerate);
//! * paths through Tiny middles are handled by §6.3;
//! * Dense middles are resolved by iterating the (small) Dense sets and the
//!   Eq 14 tables;
//! * Sparse–Sparse middles use the Eq 12 tables when an endpoint is Medium or
//!   Low, and the phase-split Eq 15 family when both endpoints are High;
//! * Dense–Dense middles for two Low endpoints use the old-phase product /
//!   Eq 13 tables for old `B`-edges and a restricted pair enumeration for
//!   new `B`-edges (Cases 1–4 of Claim 5.9).
//!
//! Every branch adds each path exactly once; the differential tests against
//! the enumeration oracle cover all endpoint-class combinations.

use super::state::Tag;
use super::FmmEngine;
use crate::engine::QRel;
use fourcycle_graph::{EndpointClass as E, MiddleClass as M, VertexId};

impl FmmEngine {
    /// Full query implementation (see module docs).
    pub(crate) fn query_impl(&mut self, u: VertexId, v: VertexId) -> i64 {
        let mut work = 0u64;
        let total = {
            let st = &self.state;
            let s = &self.structs;
            let eu = st.ep1(u);
            let ev = st.ep4(v);

            let a_total = st.adj(QRel::A, None);
            let b_total = st.adj(QRel::B, None);
            let b_new = st.adj(QRel::B, Some(Tag::New));
            let c_total = st.adj(QRel::C, None);

            let mut total = 0i64;

            if eu == E::Tiny || ev == E::Tiny {
                // ---- §6.2: at least one Tiny endpoint -------------------
                let other_small =
                    (eu == E::Tiny || eu == E::Low) && (ev == E::Tiny || ev == E::Low);
                if other_small {
                    // Case TT / TL: enumerate both (small) neighborhoods.
                    for (x, wa) in a_total.neighbors_of_left(u) {
                        for (y, wc) in c_total.neighbors_of_right(v) {
                            work += 1;
                            total += wa * wc * b_total.weight(x, y);
                        }
                    }
                } else if eu == E::Tiny {
                    // Case TM / TH: u's neighborhood is tiny; split by the
                    // class of the L3 middle.
                    for (x, wa) in a_total.neighbors_of_left(u) {
                        for &y in &st.dense_l3 {
                            work += 1;
                            let wb = b_total.weight(x, y);
                            if wb != 0 {
                                total += wa * wb * c_total.weight(y, v);
                            }
                        }
                        work += 2;
                        total += wa * (s.bc_s.get(x, v) + s.bc_t.get(x, v));
                    }
                } else {
                    // Mirror: v is Tiny, u is Medium/High.
                    for (y, wc) in c_total.neighbors_of_right(v) {
                        for &x in &st.dense_l2 {
                            work += 1;
                            let wb = b_total.weight(x, y);
                            if wb != 0 {
                                total += wc * wb * a_total.weight(u, x);
                            }
                        }
                        work += 2;
                        total += wc * (s.ab_s.get(u, y) + s.ab_t.get(u, y));
                    }
                }
                self.query_work += work;
                return total;
            }

            // ---- §6.3: paths through Tiny middles (both endpoints non-Tiny).
            match (eu, ev) {
                (E::High, E::High) => {
                    work += 3;
                    total += s.t3_hh.get(u, v) + s.ts3.get(u, v) + s.st3.get(u, v);
                    for &y in &st.dense_l3 {
                        work += 1;
                        let wc = c_total.weight(y, v);
                        if wc != 0 {
                            total += wc * s.ab_t.get(u, y); // (Tiny, Dense)
                        }
                    }
                    for &x in &st.dense_l2 {
                        work += 1;
                        let wa = a_total.weight(u, x);
                        if wa != 0 {
                            total += wa * s.bc_t.get(x, v); // (Dense, Tiny)
                        }
                    }
                }
                (E::High, E::Medium) => {
                    work += 1;
                    total += s.t3_hm.get(u, v);
                    for &y in &st.dense_l3 {
                        work += 1;
                        let wc = c_total.weight(y, v);
                        if wc != 0 {
                            total += wc * s.ab_t.get(u, y);
                        }
                    }
                    for &x in &st.dense_l2 {
                        work += 1;
                        let wa = a_total.weight(u, x);
                        if wa != 0 {
                            total += wa * s.bc_t.get(x, v);
                        }
                    }
                    for (y, wc) in c_total.neighbors_of_right(v) {
                        work += 1;
                        match st.mid3(y) {
                            M::Sparse => total += wc * s.ab_t.get(u, y), // (T, S)
                            M::Tiny => total += wc * s.ab_s.get(u, y),   // (S, T)
                            M::Dense => {}
                        }
                    }
                }
                (E::Medium, E::High) => {
                    work += 1;
                    total += s.t3_mh.get(u, v);
                    for &y in &st.dense_l3 {
                        work += 1;
                        let wc = c_total.weight(y, v);
                        if wc != 0 {
                            total += wc * s.ab_t.get(u, y);
                        }
                    }
                    for &x in &st.dense_l2 {
                        work += 1;
                        let wa = a_total.weight(u, x);
                        if wa != 0 {
                            total += wa * s.bc_t.get(x, v);
                        }
                    }
                    for (x, wa) in a_total.neighbors_of_left(u) {
                        work += 1;
                        match st.mid2(x) {
                            M::Sparse => total += wa * s.bc_t.get(x, v), // (S, T)
                            M::Tiny => total += wa * s.bc_s.get(x, v),   // (T, S)
                            M::Dense => {}
                        }
                    }
                }
                (E::High, E::Low) => {
                    // (·, Tiny): enumerate tiny L3 neighbors of v and their
                    // (tiny-degree) B-neighbors back towards u.
                    for (y, wc) in c_total.neighbors_of_right(v) {
                        if st.mid3(y) == M::Tiny {
                            for (x, wb) in b_total.neighbors_of_right(y) {
                                work += 1;
                                total += wc * wb * a_total.weight(u, x);
                            }
                        } else {
                            work += 1;
                            total += wc * s.ab_t.get(u, y); // (Tiny, non-Tiny)
                        }
                    }
                }
                (E::Low, E::High) => {
                    for (x, wa) in a_total.neighbors_of_left(u) {
                        if st.mid2(x) == M::Tiny {
                            for (y, wb) in b_total.neighbors_of_left(x) {
                                work += 1;
                                total += wa * wb * c_total.weight(y, v);
                            }
                        } else {
                            work += 1;
                            total += wa * s.bc_t.get(x, v); // (non-Tiny, Tiny)
                        }
                    }
                }
                _ => {
                    // Both endpoints in {Low, Medium}: both neighborhoods can
                    // be walked within the budget.
                    for (x, wa) in a_total.neighbors_of_left(u) {
                        work += 1;
                        total += wa * s.bc_t.get(x, v); // (·, Tiny)
                    }
                    for (y, wc) in c_total.neighbors_of_right(v) {
                        work += 1;
                        if st.mid3(y) != M::Tiny {
                            total += wc * s.ab_t.get(u, y); // (Tiny, non-Tiny)
                        }
                    }
                }
            }

            // ---- §5.3: paths through Sparse/Dense middles. ---------------
            let u_hm = eu == E::High || eu == E::Medium;
            let v_hm = ev == E::High || ev == E::Medium;
            if u_hm && v_hm {
                // Dense–Dense, Dense–Sparse, Sparse–Dense via the Dense sets.
                for &y in &st.dense_l3 {
                    work += 1;
                    let wc = c_total.weight(y, v);
                    if wc != 0 {
                        let dd = if eu == E::High {
                            s.ab_hd.get(u, y)
                        } else {
                            s.ab_md.get(u, y)
                        };
                        total += wc * (dd + s.ab_s.get(u, y)); // (D,D) + (S,D)
                    }
                }
                for &x in &st.dense_l2 {
                    work += 1;
                    let wa = a_total.weight(u, x);
                    if wa != 0 {
                        total += wa * s.bc_s.get(x, v); // (D,S)
                    }
                }
                // Sparse–Sparse.
                if eu == E::Medium {
                    for (x, wa) in a_total.neighbors_of_left(u) {
                        work += 1;
                        if st.mid2(x) == M::Sparse {
                            total += wa * s.bc_s.get(x, v);
                        }
                    }
                } else if ev == E::Medium {
                    for (y, wc) in c_total.neighbors_of_right(v) {
                        work += 1;
                        if st.mid3(y) == M::Sparse {
                            total += wc * s.ab_s.get(u, y);
                        }
                    }
                } else {
                    // High–High: sum over all eight phase combinations
                    // (old-phase product, Eq 15, and the A_old·B_new·C_old
                    // member; Claim 5.8).
                    for p in 0..2 {
                        for q in 0..2 {
                            for r in 0..2 {
                                work += 1;
                                total += s.hss3[p][q][r].get(u, v);
                            }
                        }
                    }
                }
            } else if u_hm {
                // (High/Medium, Low), Claim 5.9 first part.
                for (y, wc) in c_total.neighbors_of_right(v) {
                    work += 1;
                    match st.mid3(y) {
                        M::Dense => {
                            let dd = if eu == E::High {
                                s.ab_hd.get(u, y)
                            } else {
                                s.ab_md.get(u, y)
                            };
                            total += wc * (dd + s.ab_s.get(u, y)); // (D,D) + (S,D)
                        }
                        M::Sparse => total += wc * s.ab_s.get(u, y), // (S,S)
                        M::Tiny => {}
                    }
                }
                for &x in &st.dense_l2 {
                    work += 1;
                    let wa = a_total.weight(u, x);
                    if wa != 0 {
                        total += wa * s.bc_s.get(x, v); // (D,S)
                    }
                }
            } else if v_hm {
                // (Low, High/Medium): mirror.
                for (x, wa) in a_total.neighbors_of_left(u) {
                    work += 1;
                    match st.mid2(x) {
                        M::Dense => {
                            let dd = if ev == E::High {
                                s.bc_dh.get(x, v)
                            } else {
                                s.bc_dm.get(x, v)
                            };
                            total += wa * (dd + s.bc_s.get(x, v)); // (D,D) + (D,S)
                        }
                        M::Sparse => total += wa * s.bc_s.get(x, v), // (S,S)
                        M::Tiny => {}
                    }
                }
                for &y in &st.dense_l3 {
                    work += 1;
                    let wc = c_total.weight(y, v);
                    if wc != 0 {
                        total += wc * s.ab_s.get(u, y); // (S,D)
                    }
                }
            } else {
                // (Low, Low), Claim 5.9 second part.
                for (y, wc) in c_total.neighbors_of_right(v) {
                    work += 1;
                    if st.mid3(y) != M::Tiny {
                        total += wc * s.ab_s.get(u, y); // (S,S) + (S,D)
                    }
                }
                for (x, wa) in a_total.neighbors_of_left(u) {
                    work += 1;
                    if st.mid2(x) == M::Dense {
                        total += wa * s.bc_s.get(x, v); // (D,S)
                    }
                }
                // Dense–Dense by the phase of the B-edge:
                //  * B old (Cases 1–2): stored products A_total·B_old^{DD}
                //    = abd_oo + abd_no, combined with v's C-neighbors;
                //  * B new (Cases 3–4): enumerate the new dense–dense B-edges
                //    reachable from u's dense A-neighbors.
                for (y, wc) in c_total.neighbors_of_right(v) {
                    work += 1;
                    if st.mid3(y) == M::Dense {
                        total += wc * (s.abd_oo.get(u, y) + s.abd_no.get(u, y));
                    }
                }
                for (x, wa) in a_total.neighbors_of_left(u) {
                    if st.mid2(x) != M::Dense {
                        continue;
                    }
                    for (y, wb) in b_new.neighbors_of_left(x) {
                        work += 1;
                        if st.mid3(y) == M::Dense {
                            total += wa * wb * c_total.weight(y, v);
                        }
                    }
                }
            }
            total
        };
        self.query_work += work;
        total
    }
}
