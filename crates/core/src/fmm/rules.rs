//! The data structures of the main algorithm (Tables 2–3, Eq 12–18) and
//! their maintenance rules.
//!
//! Every structure is a signed [`PairCounts`] table; every rule follows the
//! same template: *given one signed, phase-tagged edge event, add (sign ×)
//! the number of pattern completions formed with the other edges currently
//! present*, where "present" means the relevant tagged multiset and the class
//! filters use the currently stored vertex classes. Because each pattern uses
//! at most one edge per relation, a configuration is accounted exactly once —
//! when the last of its edges is processed — independent of the order in
//! which rule application and adjacency mutation are interleaved for a single
//! event (multilinearity), which is what makes the same rules reusable for
//! live updates, phase rollovers, class transitions and era rebuilds.
//!
//! Structure inventory (notation as in the paper; `∗` = any class):
//!
//! | Field | Structure | Paper |
//! |---|---|---|
//! | `ab_s`, `bc_s` | `A^{∗S}·B^{S∗}`, `B^{∗S}·C^{S∗}` | Eq 12 |
//! | `ab_t`, `bc_t` | `A^{∗T}·B^{T∗}`, `B^{∗T}·C^{T∗}` | Eq 16 |
//! | `ab_hd`, `ab_md`, `bc_dh`, `bc_dm` | `A^{HD}·B^{DD}`, `A^{MD}·B^{DD}`, `B^{DD}·C^{DH}`, `B^{DD}·C^{DM}` | Eq 14 |
//! | `t3_hh`, `t3_mh`, `t3_hm` | `A^{HT}·B^{TT}·C^{TH}`, `A^{MT}·B^{TT}·C^{TH}`, `A^{HT}·B^{TT}·C^{TM}` | Eq 17 |
//! | `ts3`, `st3` | `A^{HT}·B^{TS}·C^{SH}`, `A^{HS}·B^{ST}·C^{TH}` | Eq 18 |
//! | `abd_oo`, `abd_no` | `A^{∗D}_{old}·B^{DD}_{old}`, `A^{∗D}_{new}·B^{DD}_{old}` | old-phase product, Eq 13 |
//! | `ab_hs[p][q]`, `bc_sh[q][r]` | `A^{HS}_p·B^{SS}_q`, `B^{SS}_q·C^{SH}_r` | auxiliaries for Eq 15 (Claim 5.6) |
//! | `hss3[p][q][r]` | `A^{HS}_p·B^{SS}_q·C^{SH}_r`, all eight phase combinations | Eq 15 + old-phase product + `A_old·B_new·C_old` |

use super::state::{GraphState, Tag};
use crate::engine::QRel;
use crate::pair_counts::PairCounts;
use fourcycle_graph::{EndpointClass, MiddleClass, VertexId};

/// All maintained pair-count structures of the main engine.
pub struct Structures {
    /// `A^{∗S}·B^{S∗}` — wedges through Sparse `L2`, keyed `(u ∈ L1, y ∈ L3)`.
    pub ab_s: PairCounts,
    /// `B^{∗S}·C^{S∗}` — wedges through Sparse `L3`, keyed `(x ∈ L2, v ∈ L4)`.
    pub bc_s: PairCounts,
    /// `A^{∗T}·B^{T∗}` — wedges through Tiny `L2`.
    pub ab_t: PairCounts,
    /// `B^{∗T}·C^{T∗}` — wedges through Tiny `L3`.
    pub bc_t: PairCounts,
    /// `A^{HD}·B^{DD}` — wedges through Dense `L2` to Dense `L3`, High `L1` rows.
    pub ab_hd: PairCounts,
    /// `A^{MD}·B^{DD}` — Medium `L1` rows.
    pub ab_md: PairCounts,
    /// `B^{DD}·C^{DH}` — Dense wedges to High `L4`.
    pub bc_dh: PairCounts,
    /// `B^{DD}·C^{DM}` — Dense wedges to Medium `L4`.
    pub bc_dm: PairCounts,
    /// `A^{HT}·B^{TT}·C^{TH}`.
    pub t3_hh: PairCounts,
    /// `A^{MT}·B^{TT}·C^{TH}`.
    pub t3_mh: PairCounts,
    /// `A^{HT}·B^{TT}·C^{TM}`.
    pub t3_hm: PairCounts,
    /// `A^{HT}·B^{TS}·C^{SH}`.
    pub ts3: PairCounts,
    /// `A^{HS}·B^{ST}·C^{TH}`.
    pub st3: PairCounts,
    /// `A^{∗D}_{old}·B^{DD}_{old}` — the old-phase dense product (keys `(u, y ∈ D)`).
    pub abd_oo: PairCounts,
    /// `A^{∗D}_{new}·B^{DD}_{old}` (Eq 13).
    pub abd_no: PairCounts,
    /// `A^{HS}_p·B^{SS}_q`, indexed `[p][q]` with 0 = old, 1 = new.
    pub ab_hs: [[PairCounts; 2]; 2],
    /// `B^{SS}_q·C^{SH}_r`, indexed `[q][r]`.
    pub bc_sh: [[PairCounts; 2]; 2],
    /// `A^{HS}_p·B^{SS}_q·C^{SH}_r`, indexed `[p][q][r]`.
    pub hss3: [[[PairCounts; 2]; 2]; 2],
    /// Elementary operations performed by the rules.
    pub work: u64,
    /// When set, updates to `abd_oo` and `hss3[old][old][old]` — the two
    /// structures that depend only on old-phase edges and are never read by
    /// any maintenance rule — are skipped; the caller rebuilds them as matrix
    /// products immediately afterwards (the `use_fmm` rollover path). The
    /// old–old auxiliaries (`ab_hs[0][0]`, `bc_sh[0][0]`) are *not* skipped
    /// because the mixed-phase triple rules read them mid-replay.
    pub skip_pure_old: bool,
}

impl Structures {
    /// Creates empty structures.
    pub fn new() -> Self {
        Self {
            ab_s: PairCounts::new(),
            bc_s: PairCounts::new(),
            ab_t: PairCounts::new(),
            bc_t: PairCounts::new(),
            ab_hd: PairCounts::new(),
            ab_md: PairCounts::new(),
            bc_dh: PairCounts::new(),
            bc_dm: PairCounts::new(),
            t3_hh: PairCounts::new(),
            t3_mh: PairCounts::new(),
            t3_hm: PairCounts::new(),
            ts3: PairCounts::new(),
            st3: PairCounts::new(),
            abd_oo: PairCounts::new(),
            abd_no: PairCounts::new(),
            ab_hs: Default::default(),
            bc_sh: Default::default(),
            hss3: Default::default(),
            work: 0,
            skip_pure_old: false,
        }
    }

    /// Applies the maintenance rules for one signed, tagged edge event.
    /// Does not touch adjacency; the engine owns the ordering of adjacency
    /// mutation vs rule application.
    pub fn apply(
        &mut self,
        st: &GraphState,
        rel: QRel,
        tag: Tag,
        l: VertexId,
        r: VertexId,
        delta: i64,
    ) {
        if delta == 0 {
            return;
        }
        match rel {
            QRel::A => self.apply_a(st, tag, l, r, delta),
            QRel::B => self.apply_b(st, tag, l, r, delta),
            QRel::C => self.apply_c(st, tag, l, r, delta),
        }
    }

    fn apply_a(&mut self, st: &GraphState, tag: Tag, u: VertexId, x: VertexId, d: i64) {
        use EndpointClass as E;
        use MiddleClass as M;
        let cu = st.ep1(u);
        let cx = st.mid2(x);
        let b_total = st.adj(QRel::B, None);
        let c_total = st.adj(QRel::C, None);

        // Eq 12 / Eq 16: wedges through Sparse / Tiny L2.
        if cx == M::Sparse {
            for (y, wb) in b_total.neighbors_of_left(x) {
                self.work += 1;
                self.ab_s.add(u, y, d * wb);
            }
        }
        if cx == M::Tiny {
            for (y, wb) in b_total.neighbors_of_left(x) {
                self.work += 1;
                self.ab_t.add(u, y, d * wb);
            }
        }

        // Eq 14: dense wedges for High/Medium rows.
        if cx == M::Dense && (cu == E::High || cu == E::Medium) {
            for (y, wb) in b_total.neighbors_of_left(x) {
                self.work += 1;
                if st.mid3(y) == M::Dense {
                    if cu == E::High {
                        self.ab_hd.add(u, y, d * wb);
                    } else {
                        self.ab_md.add(u, y, d * wb);
                    }
                }
            }
        }

        // Eq 17: tiny–tiny triples (direct enumeration — x is Tiny, so both
        // loops are over tiny-degree vertices).
        if cx == M::Tiny && (cu == E::High || cu == E::Medium) {
            for (y, wb) in b_total.neighbors_of_left(x) {
                if st.mid3(y) != M::Tiny {
                    continue;
                }
                for (v, wc) in c_total.neighbors_of_left(y) {
                    self.work += 1;
                    match (cu, st.ep4(v)) {
                        (E::High, E::High) => self.t3_hh.add(u, v, d * wb * wc),
                        (E::Medium, E::High) => self.t3_mh.add(u, v, d * wb * wc),
                        (E::High, E::Medium) => self.t3_hm.add(u, v, d * wb * wc),
                        _ => {}
                    }
                }
            }
        }

        // Eq 18 (Claim 6.5): iterate the High L4 set and use the stored
        // wedge tables for the completion counts.
        if cu == E::High && cx == M::Tiny {
            for &v in &st.high_l4 {
                self.work += 1;
                self.ts3.add(u, v, d * self.bc_s.get(x, v));
            }
        }
        if cu == E::High && cx == M::Sparse {
            for &v in &st.high_l4 {
                self.work += 1;
                self.st3.add(u, v, d * self.bc_t.get(x, v));
            }
        }

        // Old-phase / Eq 13 dense products (Claim 5.4): iterate the Dense L3
        // set and check the old B edge.
        if cx == M::Dense {
            let b_old = st.adj(QRel::B, Some(Tag::Old));
            match tag {
                Tag::Old => {
                    if !self.skip_pure_old {
                        for &y in &st.dense_l3 {
                            self.work += 1;
                            let wb = b_old.weight(x, y);
                            if wb != 0 {
                                self.abd_oo.add(u, y, d * wb);
                            }
                        }
                    }
                }
                Tag::New => {
                    for &y in &st.dense_l3 {
                        self.work += 1;
                        let wb = b_old.weight(x, y);
                        if wb != 0 {
                            self.abd_no.add(u, y, d * wb);
                        }
                    }
                }
            }
        }

        // Eq 15 auxiliaries and triples (Claim 5.6).
        if cu == E::High && cx == M::Sparse {
            let p = tag.index();
            for q_tag in Tag::BOTH {
                let q = q_tag.index();
                let b_q = st.adj(QRel::B, Some(q_tag));
                for (y, wb) in b_q.neighbors_of_left(x) {
                    self.work += 1;
                    if st.mid3(y) == M::Sparse {
                        self.ab_hs[p][q].add(u, y, d * wb);
                    }
                }
            }
            for q in 0..2 {
                for r in 0..2 {
                    if self.skip_pure_old && p == 0 && q == 0 && r == 0 {
                        continue;
                    }
                    let updates: Vec<(VertexId, i64)> = self.bc_sh[q][r].row(x).collect();
                    for (v, cnt) in updates {
                        self.work += 1;
                        self.hss3[p][q][r].add(u, v, d * cnt);
                    }
                }
            }
        }
    }

    fn apply_b(&mut self, st: &GraphState, tag: Tag, x: VertexId, y: VertexId, d: i64) {
        use EndpointClass as E;
        use MiddleClass as M;
        let cx = st.mid2(x);
        let cy = st.mid3(y);
        let a_total = st.adj(QRel::A, None);
        let c_total = st.adj(QRel::C, None);

        // Eq 12 / Eq 16.
        if cx == M::Sparse {
            for (u, wa) in a_total.neighbors_of_right(x) {
                self.work += 1;
                self.ab_s.add(u, y, d * wa);
            }
        }
        if cx == M::Tiny {
            for (u, wa) in a_total.neighbors_of_right(x) {
                self.work += 1;
                self.ab_t.add(u, y, d * wa);
            }
        }
        if cy == M::Sparse {
            for (v, wc) in c_total.neighbors_of_left(y) {
                self.work += 1;
                self.bc_s.add(x, v, d * wc);
            }
        }
        if cy == M::Tiny {
            for (v, wc) in c_total.neighbors_of_left(y) {
                self.work += 1;
                self.bc_t.add(x, v, d * wc);
            }
        }

        if cx == M::Dense && cy == M::Dense {
            // Eq 14.
            for (u, wa) in a_total.neighbors_of_right(x) {
                self.work += 1;
                match st.ep1(u) {
                    E::High => self.ab_hd.add(u, y, d * wa),
                    E::Medium => self.ab_md.add(u, y, d * wa),
                    _ => {}
                }
            }
            for (v, wc) in c_total.neighbors_of_left(y) {
                self.work += 1;
                match st.ep4(v) {
                    E::High => self.bc_dh.add(x, v, d * wc),
                    E::Medium => self.bc_dm.add(x, v, d * wc),
                    _ => {}
                }
            }
            // Old-phase dense products: a B event only matters when it is
            // accounted to the old window.
            if tag == Tag::Old {
                if !self.skip_pure_old {
                    for (u, wa) in st.adj(QRel::A, Some(Tag::Old)).neighbors_of_right(x) {
                        self.work += 1;
                        self.abd_oo.add(u, y, d * wa);
                    }
                }
                for (u, wa) in st.adj(QRel::A, Some(Tag::New)).neighbors_of_right(x) {
                    self.work += 1;
                    self.abd_no.add(u, y, d * wa);
                }
            }
        }

        // Eq 17: tiny–tiny triples.
        if cx == M::Tiny && cy == M::Tiny {
            let us: Vec<(VertexId, i64)> = a_total.neighbors_of_right(x).collect();
            let vs: Vec<(VertexId, i64)> = c_total.neighbors_of_left(y).collect();
            for &(u, wa) in &us {
                for &(v, wc) in &vs {
                    self.work += 1;
                    match (st.ep1(u), st.ep4(v)) {
                        (E::High, E::High) => self.t3_hh.add(u, v, d * wa * wc),
                        (E::Medium, E::High) => self.t3_mh.add(u, v, d * wa * wc),
                        (E::High, E::Medium) => self.t3_hm.add(u, v, d * wa * wc),
                        _ => {}
                    }
                }
            }
        }

        // Eq 18.
        if cx == M::Tiny && cy == M::Sparse {
            for (u, wa) in a_total.neighbors_of_right(x) {
                if st.ep1(u) != E::High {
                    continue;
                }
                for &v in &st.high_l4 {
                    self.work += 1;
                    let wc = c_total.weight(y, v);
                    if wc != 0 {
                        self.ts3.add(u, v, d * wa * wc);
                    }
                }
            }
        }
        if cx == M::Sparse && cy == M::Tiny {
            for (v, wc) in c_total.neighbors_of_left(y) {
                if st.ep4(v) != E::High {
                    continue;
                }
                for &u in &st.high_l1 {
                    self.work += 1;
                    let wa = a_total.weight(u, x);
                    if wa != 0 {
                        self.st3.add(u, v, d * wa * wc);
                    }
                }
            }
        }

        // Eq 15 auxiliaries and triples.
        if cx == M::Sparse && cy == M::Sparse {
            let q = tag.index();
            for p_tag in Tag::BOTH {
                let p = p_tag.index();
                for (u, wa) in st.adj(QRel::A, Some(p_tag)).neighbors_of_right(x) {
                    self.work += 1;
                    if st.ep1(u) == E::High {
                        self.ab_hs[p][q].add(u, y, d * wa);
                    }
                }
            }
            for r_tag in Tag::BOTH {
                let r = r_tag.index();
                for (v, wc) in st.adj(QRel::C, Some(r_tag)).neighbors_of_left(y) {
                    self.work += 1;
                    if st.ep4(v) == E::High {
                        self.bc_sh[q][r].add(x, v, d * wc);
                    }
                }
            }
            // Triples: the pairs of High endpoints reachable through the two
            // adjacent edges, per phase tag of each side.
            let mut us: [Vec<(VertexId, i64)>; 2] = [Vec::new(), Vec::new()];
            let mut vs: [Vec<(VertexId, i64)>; 2] = [Vec::new(), Vec::new()];
            for p_tag in Tag::BOTH {
                let a_p = st.adj(QRel::A, Some(p_tag));
                us[p_tag.index()] = st
                    .high_l1
                    .iter()
                    .filter_map(|&u| {
                        let w = a_p.weight(u, x);
                        (w != 0).then_some((u, w))
                    })
                    .collect();
                let c_p = st.adj(QRel::C, Some(p_tag));
                vs[p_tag.index()] = st
                    .high_l4
                    .iter()
                    .filter_map(|&v| {
                        let w = c_p.weight(y, v);
                        (w != 0).then_some((v, w))
                    })
                    .collect();
            }
            let high = u64::try_from(st.high_l1.len() + st.high_l4.len()).unwrap_or(u64::MAX);
            self.work += 2 * high;
            for (p, us_p) in us.iter().enumerate() {
                for (r, vs_r) in vs.iter().enumerate() {
                    if self.skip_pure_old && p == 0 && q == 0 && r == 0 {
                        continue;
                    }
                    for &(u, wa) in us_p {
                        for &(v, wc) in vs_r {
                            self.work += 1;
                            self.hss3[p][q][r].add(u, v, d * wa * wc);
                        }
                    }
                }
            }
        }
    }

    fn apply_c(&mut self, st: &GraphState, tag: Tag, y: VertexId, v: VertexId, d: i64) {
        use EndpointClass as E;
        use MiddleClass as M;
        let cy = st.mid3(y);
        let cv = st.ep4(v);
        let a_total = st.adj(QRel::A, None);
        let b_total = st.adj(QRel::B, None);

        // Eq 12 / Eq 16.
        if cy == M::Sparse {
            for (x, wb) in b_total.neighbors_of_right(y) {
                self.work += 1;
                self.bc_s.add(x, v, d * wb);
            }
        }
        if cy == M::Tiny {
            for (x, wb) in b_total.neighbors_of_right(y) {
                self.work += 1;
                self.bc_t.add(x, v, d * wb);
            }
        }

        // Eq 14.
        if cy == M::Dense && (cv == E::High || cv == E::Medium) {
            for (x, wb) in b_total.neighbors_of_right(y) {
                self.work += 1;
                if st.mid2(x) == M::Dense {
                    if cv == E::High {
                        self.bc_dh.add(x, v, d * wb);
                    } else {
                        self.bc_dm.add(x, v, d * wb);
                    }
                }
            }
        }

        // Eq 17: direct enumeration through the tiny middles.
        if cy == M::Tiny && (cv == E::High || cv == E::Medium) {
            for (x, wb) in b_total.neighbors_of_right(y) {
                if st.mid2(x) != M::Tiny {
                    continue;
                }
                for (u, wa) in a_total.neighbors_of_right(x) {
                    self.work += 1;
                    match (st.ep1(u), cv) {
                        (E::High, E::High) => self.t3_hh.add(u, v, d * wa * wb),
                        (E::Medium, E::High) => self.t3_mh.add(u, v, d * wa * wb),
                        (E::High, E::Medium) => self.t3_hm.add(u, v, d * wa * wb),
                        _ => {}
                    }
                }
            }
        }

        // Eq 18.
        if cy == M::Sparse && cv == E::High {
            for &u in &st.high_l1 {
                self.work += 1;
                self.ts3.add(u, v, d * self.ab_t.get(u, y));
            }
        }
        if cy == M::Tiny && cv == E::High {
            for &u in &st.high_l1 {
                self.work += 1;
                self.st3.add(u, v, d * self.ab_s.get(u, y));
            }
        }

        // Eq 15 auxiliaries and triples.
        if cy == M::Sparse && cv == E::High {
            let r = tag.index();
            for q_tag in Tag::BOTH {
                let q = q_tag.index();
                for (x, wb) in st.adj(QRel::B, Some(q_tag)).neighbors_of_right(y) {
                    self.work += 1;
                    if st.mid2(x) == M::Sparse {
                        self.bc_sh[q][r].add(x, v, d * wb);
                    }
                }
            }
            for p in 0..2 {
                for q in 0..2 {
                    if self.skip_pure_old && p == 0 && q == 0 && r == 0 {
                        continue;
                    }
                    for &u in &st.high_l1 {
                        self.work += 1;
                        let cnt = self.ab_hs[p][q].get(u, y);
                        if cnt != 0 {
                            self.hss3[p][q][r].add(u, v, d * cnt);
                        }
                    }
                }
            }
        }
    }
}

impl Default for Structures {
    fn default() -> Self {
        Self::new()
    }
}
