//! Enumeration oracle engine.
//!
//! Maintains nothing beyond the three adjacency structures and answers a
//! query by enumerating all 2-hop extensions of the query's `L1` endpoint.
//! This is the ground truth every other engine is differential-tested
//! against; its update cost is `O(1)` and its query cost is the number of
//! `A–B` 2-path instances out of `u`, which can be `Θ(m)`.

use crate::engine::{QRel, ThreePathEngine};
use fourcycle_graph::{coalesce_updates, BipartiteAdjacency, UpdateOp, VertexId};

/// The enumeration oracle (no data structures, exhaustive queries).
#[derive(Debug, Default)]
pub struct NaiveEngine {
    rels: [BipartiteAdjacency; 3],
    work: u64,
}

impl NaiveEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty engine sized for roughly `hint` vertices per layer.
    pub fn with_capacity(hint: usize) -> Self {
        Self {
            rels: [
                BipartiteAdjacency::with_capacity(hint),
                BipartiteAdjacency::with_capacity(hint),
                BipartiteAdjacency::with_capacity(hint),
            ],
            work: 0,
        }
    }
}

impl ThreePathEngine for NaiveEngine {
    fn apply_update(&mut self, rel: QRel, left: VertexId, right: VertexId, op: UpdateOp) {
        self.work += 1;
        self.rels[rel.index()].add(left, right, op.sign());
    }

    fn apply_batch(&mut self, rel: QRel, updates: &[(VertexId, VertexId, UpdateOp)]) {
        // The oracle keeps no derived state, so the whole batch reduces to
        // its net per-pair deltas.
        for (l, r, s) in coalesce_updates(updates) {
            self.work += 1;
            self.rels[rel.index()].add(l, r, s);
        }
    }

    fn has_edge(&self, rel: QRel, left: VertexId, right: VertexId) -> bool {
        self.rels[rel.index()].weight(left, right) != 0
    }

    fn query(&mut self, u: VertexId, v: VertexId) -> i64 {
        let a = &self.rels[QRel::A.index()];
        let b = &self.rels[QRel::B.index()];
        let c = &self.rels[QRel::C.index()];
        let mut total = 0i64;
        for (x, wa) in a.neighbors_of_left(u) {
            for (y, wb) in b.neighbors_of_left(x) {
                self.work += 1;
                total += wa * wb * c.weight(y, v);
            }
        }
        total
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_paths_exactly() {
        let mut e = NaiveEngine::new();
        e.apply_update(QRel::A, 1, 2, UpdateOp::Insert);
        e.apply_update(QRel::B, 2, 3, UpdateOp::Insert);
        e.apply_update(QRel::C, 3, 4, UpdateOp::Insert);
        assert_eq!(e.query(1, 4), 1);
        // A second parallel wedge through different middles.
        e.apply_update(QRel::A, 1, 5, UpdateOp::Insert);
        e.apply_update(QRel::B, 5, 6, UpdateOp::Insert);
        e.apply_update(QRel::C, 6, 4, UpdateOp::Insert);
        assert_eq!(e.query(1, 4), 2);
        // Deleting the middle edge of one path removes exactly one path.
        e.apply_update(QRel::B, 2, 3, UpdateOp::Delete);
        assert_eq!(e.query(1, 4), 1);
        assert_eq!(e.query(1, 999), 0);
        assert!(e.work() > 0);
    }
}
