//! The engine interface shared by every counting algorithm.
//!
//! §2.2 ("Equivalent Queries") reduces maintaining the layered 4-cycle count
//! to the following single-rotation problem, which is what a
//! [`ThreePathEngine`] solves:
//!
//! > A 4-layered graph undergoes edge updates in `A`, `B` and `C`. At any
//! > point a query `(u ∈ L1, v ∈ L4)` asks for the number of 3-paths between
//! > `u` and `v` that go through `A`, `B` and `C`.
//!
//! The paper runs four copies of its algorithm, one per relation playing the
//! role of the query matrix `D`; [`crate::LayeredCycleCounter`] does the same
//! with four rotated engine instances.

use fourcycle_graph::{UpdateOp, VertexId};

/// A relation in the *engine's own frame*: the three matrices it maintains
/// data structures over. (The fourth matrix — the query matrix `D` of the
/// paper — is never seen by the engine.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QRel {
    /// The relation between the engine's `L1` and `L2`.
    A,
    /// The relation between the engine's `L2` and `L3`.
    B,
    /// The relation between the engine's `L3` and `L4`.
    C,
}

impl QRel {
    /// All three relations.
    pub const ALL: [QRel; 3] = [QRel::A, QRel::B, QRel::C];

    /// Index 0..=2.
    pub fn index(self) -> usize {
        match self {
            QRel::A => 0,
            QRel::B => 1,
            QRel::C => 2,
        }
    }
}

/// A maintenance-and-query engine for the §2.2 problem.
///
/// Implementations must tolerate arbitrary well-formed fully dynamic streams
/// (no duplicate inserts, no deletes of absent edges — enforced by the
/// counters) and must return *exact* path counts.
pub trait ThreePathEngine {
    /// Applies an edge update to one of the engine's three relations.
    /// `left` is the endpoint in the relation's lower layer (`L1` for `A`,
    /// `L2` for `B`, `L3` for `C`), `right` the endpoint in the higher layer.
    fn apply_update(&mut self, rel: QRel, left: VertexId, right: VertexId, op: UpdateOp);

    /// Returns the number of 3-paths `u –A– x –B– y –C– v` in the current
    /// graph, where `u ∈ L1` and `v ∈ L4`.
    fn query(&mut self, u: VertexId, v: VertexId) -> i64;

    /// Total number of elementary operations performed so far (inner-loop
    /// iterations of maintenance and queries). Used by the scaling
    /// experiments (T4/F1) as a machine-independent cost measure.
    fn work(&self) -> u64;

    /// Short, stable engine name for reports.
    fn name(&self) -> &'static str;
}

/// Selector for constructing engines generically (used by the counters, the
/// experiment harness and the differential tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// [`crate::NaiveEngine`] — enumeration oracle.
    Naive,
    /// [`crate::SimpleEngine`] — Appendix A, `O(n)` updates.
    Simple,
    /// [`crate::ThresholdEngine`] — HHH22-style `O(m^{2/3})` baseline.
    Threshold,
    /// [`crate::FmmEngine`] — the paper's main algorithm (§4–§7) with the
    /// combinatorial rollover path.
    Fmm,
    /// [`crate::FmmEngine`] with the dense (Strassen) rollover path enabled.
    FmmDense,
}

impl EngineKind {
    /// All selectable kinds.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Naive,
        EngineKind::Simple,
        EngineKind::Threshold,
        EngineKind::Fmm,
        EngineKind::FmmDense,
    ];

    /// Builds a fresh engine of this kind.
    pub fn build(self) -> Box<dyn ThreePathEngine> {
        match self {
            EngineKind::Naive => Box::new(crate::NaiveEngine::new()),
            EngineKind::Simple => Box::new(crate::SimpleEngine::new()),
            EngineKind::Threshold => Box::new(crate::ThresholdEngine::new()),
            EngineKind::Fmm => Box::new(crate::FmmEngine::new(crate::FmmConfig::default())),
            EngineKind::FmmDense => Box::new(crate::FmmEngine::new(crate::FmmConfig {
                use_fmm: true,
                ..Default::default()
            })),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Naive => "naive",
            EngineKind::Simple => "simple-appendix-a",
            EngineKind::Threshold => "threshold-m23",
            EngineKind::Fmm => "fmm-main",
            EngineKind::FmmDense => "fmm-main-dense",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qrel_indices_are_distinct() {
        let idx: Vec<usize> = QRel::ALL.iter().map(|r| r.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn engine_kind_builds_every_variant() {
        for kind in EngineKind::ALL {
            let engine = kind.build();
            assert_eq!(engine.name(), kind.name());
            assert_eq!(engine.work(), 0);
        }
    }
}
