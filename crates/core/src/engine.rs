//! The engine interface shared by every counting algorithm.
//!
//! §2.2 ("Equivalent Queries") reduces maintaining the layered 4-cycle count
//! to the following single-rotation problem, which is what a
//! [`ThreePathEngine`] solves:
//!
//! > A 4-layered graph undergoes edge updates in `A`, `B` and `C`. At any
//! > point a query `(u ∈ L1, v ∈ L4)` asks for the number of 3-paths between
//! > `u` and `v` that go through `A`, `B` and `C`.
//!
//! The paper runs four copies of its algorithm, one per relation playing the
//! role of the query matrix `D`; [`crate::LayeredCycleCounter`] does the same
//! with four rotated engine instances.

use crate::error::{BatchError, UpdateError};
use fourcycle_graph::{UpdateOp, VertexId};

/// A relation in the *engine's own frame*: the three matrices it maintains
/// data structures over. (The fourth matrix — the query matrix `D` of the
/// paper — is never seen by the engine.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QRel {
    /// The relation between the engine's `L1` and `L2`.
    A,
    /// The relation between the engine's `L2` and `L3`.
    B,
    /// The relation between the engine's `L3` and `L4`.
    C,
}

impl QRel {
    /// All three relations.
    pub const ALL: [QRel; 3] = [QRel::A, QRel::B, QRel::C];

    /// Index 0..=2.
    pub fn index(self) -> usize {
        match self {
            QRel::A => 0,
            QRel::B => 1,
            QRel::C => 2,
        }
    }
}

/// Counters of the amortized "slow paths" an engine has taken so far.
///
/// Every engine in this crate hides occasional expensive maintenance behind
/// its per-update bound: the threshold engine rebuilds from scratch when `m`
/// drifts by a factor of two (its *era* rule) and re-inserts a vertex's
/// incident edges when it crosses the heavy/light boundary; the main engine
/// additionally rolls its phase window every `m^{1−δ}` updates (§5.1). These
/// events dominate worst-case latency, so workload scenarios that claim to
/// stress them must be able to *prove* they fired — that is what this hook
/// is for (see `fourcycle-workloads`' scenario generators and the
/// `ScenarioRunner` in `fourcycle-bench`).
///
/// ```
/// use fourcycle_core::SlowPathStats;
///
/// let mut total = SlowPathStats::default();
/// total.merge(SlowPathStats {
///     era_rebuilds: 1,
///     phase_rollovers: 3,
///     class_transitions: 7,
/// });
/// assert_eq!(total.era_rebuilds, 1);
/// assert_eq!(total.phase_rollovers, 3);
/// assert_eq!(total.class_transitions, 7);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlowPathStats {
    /// Full rebuilds with fresh thresholds (the factor-2 era rule of both
    /// the threshold engine and the main engine).
    pub era_rebuilds: u64,
    /// Phase-window rollovers of the main engine (§5.1); always zero for
    /// engines without a phase clock.
    pub phase_rollovers: u64,
    /// Vertex degree-class transitions (heavy/light for the threshold
    /// engine, the §7 class flips for the main engine).
    pub class_transitions: u64,
}

impl SlowPathStats {
    /// Accumulates another engine's counters into this one (used by the
    /// counters, which run four rotated engine instances).
    pub fn merge(&mut self, other: SlowPathStats) {
        self.era_rebuilds += other.era_rebuilds;
        self.phase_rollovers += other.phase_rollovers;
        self.class_transitions += other.class_transitions;
    }
}

/// A maintenance-and-query engine for the §2.2 problem.
///
/// Implementations must tolerate arbitrary well-formed fully dynamic streams
/// (no duplicate inserts, no deletes of absent edges — enforced by the
/// counters) and must return *exact* path counts.
///
/// `Send` is a supertrait: the sharded runtime (`fourcycle-runtime`) moves
/// whole counters — and with them every boxed engine — onto shard worker
/// threads, so an engine that grows a `!Send` member (an `Rc`, a raw
/// pointer) must fail to compile *here*, at the engine, rather than deep
/// inside a `thread::spawn` bound. The compile-time assertions in
/// `facade/tests/send_assertions.rs` pin the same property for every
/// concrete engine, counter, view and the service.
pub trait ThreePathEngine: Send {
    /// Applies an edge update to one of the engine's three relations.
    /// `left` is the endpoint in the relation's lower layer (`L1` for `A`,
    /// `L2` for `B`, `L3` for `C`), `right` the endpoint in the higher layer.
    fn apply_update(&mut self, rel: QRel, left: VertexId, right: VertexId, op: UpdateOp);

    /// Applies a batch of updates to one relation.
    ///
    /// Must leave the engine in a state *query-equivalent* to calling
    /// [`apply_update`](Self::apply_update) once per entry, in order. The
    /// default implementation does exactly that; engines override it to
    /// coalesce same-pair deltas and amortize class-transition / rebuild /
    /// rollover bookkeeping over the whole batch, matching the phase
    /// structure of the paper (§5.1). Queries between the updates of a batch
    /// are not observable — callers needing per-update query interleaving
    /// (e.g. the counters' count maintenance) must split batches at the
    /// query points, which is what `LayeredCycleCounter::apply_batch` does.
    fn apply_batch(&mut self, rel: QRel, updates: &[(VertexId, VertexId, UpdateOp)]) {
        for &(left, right, op) in updates {
            self.apply_update(rel, left, right, op);
        }
    }

    /// Whether the engine maintains `rel` at all. Every fully dynamic engine
    /// accepts all three relations (the default); the §3 warm-up engine fixes
    /// `A` and `C` and only accepts `B`.
    fn accepts_updates_to(&self, rel: QRel) -> bool {
        let _ = rel;
        true
    }

    /// Whether the engine's *current* graph contains the edge
    /// `(left, right)` of `rel`. This is the membership test backing the
    /// validated `try_*` entry points; every engine answers it from the
    /// total (untagged) adjacency it already maintains.
    fn has_edge(&self, rel: QRel, left: VertexId, right: VertexId) -> bool;

    /// Validated single-update entry point: rejects duplicate inserts,
    /// deletes of absent edges and updates to relations the engine does not
    /// maintain, *without* touching any state. The raw
    /// [`apply_update`](Self::apply_update) remains the unchecked fast path
    /// for pre-validated streams (the counters validate against their mirror
    /// graph before routing).
    fn try_apply_update(
        &mut self,
        rel: QRel,
        left: VertexId,
        right: VertexId,
        op: UpdateOp,
    ) -> Result<(), UpdateError> {
        if !self.accepts_updates_to(rel) {
            return Err(UpdateError::RelationMismatch);
        }
        match op {
            UpdateOp::Insert if self.has_edge(rel, left, right) => Err(UpdateError::DuplicateEdge),
            UpdateOp::Delete if !self.has_edge(rel, left, right) => Err(UpdateError::MissingEdge),
            _ => {
                self.apply_update(rel, left, right, op);
                Ok(())
            }
        }
    }

    /// Validated, *atomic* batch entry point: the whole batch is checked
    /// first (against the current graph plus the batch's own earlier
    /// updates, so insert-then-delete of the same pair within one batch is
    /// well-formed), and nothing is applied unless every update is valid.
    /// On rejection the returned [`BatchError`] names the first offending
    /// batch index. The raw [`apply_batch`](Self::apply_batch) remains the
    /// unchecked fast path.
    fn try_apply_batch(
        &mut self,
        rel: QRel,
        updates: &[(VertexId, VertexId, UpdateOp)],
    ) -> Result<(), BatchError> {
        if !self.accepts_updates_to(rel) {
            return Err(BatchError::at(0, UpdateError::RelationMismatch));
        }
        crate::error::validate_batch(
            updates,
            |&(l, r, op)| Ok(((l, r), op)),
            |&(l, r, _)| self.has_edge(rel, l, r),
        )?;
        self.apply_batch(rel, updates);
        Ok(())
    }

    /// Returns the number of 3-paths `u –A– x –B– y –C– v` in the current
    /// graph, where `u ∈ L1` and `v ∈ L4`.
    fn query(&mut self, u: VertexId, v: VertexId) -> i64;

    /// Total number of elementary operations performed so far (inner-loop
    /// iterations of maintenance and queries). Used by the scaling
    /// experiments (T4/F1) as a machine-independent cost measure.
    fn work(&self) -> u64;

    /// How often the engine's amortized slow paths (era rebuilds, phase
    /// rollovers, class transitions) have fired. Engines without such
    /// machinery report all-zero counters, which is the default.
    fn slow_path_stats(&self) -> SlowPathStats {
        SlowPathStats::default()
    }

    /// Short, stable engine name for reports.
    fn name(&self) -> &'static str;
}

/// Selector for constructing engines generically (used by the counters, the
/// experiment harness and the differential tests).
///
/// ```
/// use fourcycle_core::{EngineKind, QRel};
/// use fourcycle_graph::UpdateOp;
///
/// // Every kind builds a ready-to-use engine behind the same trait.
/// for kind in EngineKind::ALL {
///     let mut engine = kind.build();
///     engine.apply_update(QRel::A, 1, 2, UpdateOp::Insert);
///     engine.apply_update(QRel::B, 2, 3, UpdateOp::Insert);
///     engine.apply_update(QRel::C, 3, 4, UpdateOp::Insert);
///     assert_eq!(engine.query(1, 4), 1, "{}", engine.name());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// [`crate::NaiveEngine`] — enumeration oracle.
    Naive,
    /// [`crate::SimpleEngine`] — Appendix A, `O(n)` updates.
    Simple,
    /// [`crate::ThresholdEngine`] — HHH22-style `O(m^{2/3})` baseline.
    Threshold,
    /// [`crate::FmmEngine`] — the paper's main algorithm (§4–§7) with the
    /// combinatorial rollover path.
    Fmm,
    /// [`crate::FmmEngine`] with the dense (Strassen) rollover path enabled.
    FmmDense,
}

/// Shared construction options for [`EngineKind::build_with`].
///
/// Previously every `EngineKind::build` call hard-coded an inline
/// `FmmConfig`; this struct centralizes that choice and adds capacity hints
/// for the indexed adjacency rows, so callers that know their workload scale
/// (the counters, the bench harness, a streaming ingestor) can pre-size the
/// vertex interners instead of growing them update by update.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineConfig {
    /// Expected number of distinct vertices per layer (0 = unknown). Used to
    /// pre-size adjacency interners and rows.
    pub capacity_hint: usize,
    /// Configuration of the main (§4–§7) engine. `use_fmm` is forced on for
    /// [`EngineKind::FmmDense`] and off for [`EngineKind::Fmm`].
    pub fmm: crate::FmmConfig,
}

impl EngineConfig {
    /// A configuration carrying only a capacity hint.
    pub fn with_capacity_hint(capacity_hint: usize) -> Self {
        Self {
            capacity_hint,
            ..Default::default()
        }
    }
}

impl EngineKind {
    /// All selectable kinds.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Naive,
        EngineKind::Simple,
        EngineKind::Threshold,
        EngineKind::Fmm,
        EngineKind::FmmDense,
    ];

    /// Builds a fresh engine of this kind with default configuration.
    pub fn build(self) -> Box<dyn ThreePathEngine> {
        self.build_with(&EngineConfig::default())
    }

    /// Builds a fresh engine of this kind from a shared configuration.
    pub fn build_with(self, config: &EngineConfig) -> Box<dyn ThreePathEngine> {
        let hint = config.capacity_hint;
        match self {
            EngineKind::Naive => Box::new(crate::NaiveEngine::with_capacity(hint)),
            EngineKind::Simple => Box::new(crate::SimpleEngine::with_capacity(hint)),
            EngineKind::Threshold => Box::new(crate::ThresholdEngine::with_capacity(hint)),
            EngineKind::Fmm => Box::new(crate::FmmEngine::new(crate::FmmConfig {
                use_fmm: false,
                ..config.fmm
            })),
            EngineKind::FmmDense => Box::new(crate::FmmEngine::new(crate::FmmConfig {
                use_fmm: true,
                ..config.fmm
            })),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Naive => "naive",
            EngineKind::Simple => "simple-appendix-a",
            EngineKind::Threshold => "threshold-m23",
            EngineKind::Fmm => "fmm-main",
            EngineKind::FmmDense => "fmm-main-dense",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qrel_indices_are_distinct() {
        let idx: Vec<usize> = QRel::ALL.iter().map(|r| r.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn engine_kind_builds_every_variant() {
        for kind in EngineKind::ALL {
            let engine = kind.build();
            assert_eq!(engine.name(), kind.name());
            assert_eq!(engine.work(), 0);
        }
    }

    #[test]
    fn build_with_respects_config() {
        let config = EngineConfig {
            capacity_hint: 64,
            fmm: crate::FmmConfig {
                phase_len_override: Some(17),
                ..Default::default()
            },
        };
        for kind in EngineKind::ALL {
            let engine = kind.build_with(&config);
            assert_eq!(engine.name(), kind.name(), "use_fmm forced per kind");
        }
        assert_eq!(EngineConfig::with_capacity_hint(9).capacity_hint, 9);
    }

    #[test]
    fn default_apply_batch_matches_per_update() {
        use fourcycle_graph::UpdateOp::{Delete, Insert};
        let updates = [
            (1u32, 2u32, Insert),
            (1, 3, Insert),
            (2, 3, Insert),
            (1, 2, Delete),
            (1, 2, Insert),
        ];
        let mut batched = crate::NaiveEngine::new();
        // The trait-default path (per-update fallback) through a dyn object.
        let seq: &mut dyn ThreePathEngine = &mut crate::SimpleEngine::new();
        batched.apply_batch(QRel::A, &updates);
        for &(l, r, op) in &updates {
            seq.apply_update(QRel::A, l, r, op);
        }
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(batched.query(u, v), seq.query(u, v));
            }
        }
    }
}
