//! The top-level counters: layered 4-cycles (Theorem 2) and general-graph
//! 4-cycles (Theorem 1, via the §8 reduction).
//!
//! * [`LayeredCycleCounter`] runs four rotated [`ThreePathEngine`] instances,
//!   one per relation playing the role of the query matrix `D` (§2.2: "we can
//!   run 4 copies of this algorithm"). Every update is routed to the three
//!   engines that maintain data structures over that relation, and the count
//!   delta is obtained from the fourth engine's query.
//! * [`FourCycleCounter`] implements §8: a general edge `{u, v}` is
//!   replicated (in both orientations) into all four relations; the number of
//!   new 4-cycles through the edge equals the number of layered 3-paths from
//!   `u ∈ L1` to `v ∈ L4`, queried while the edge is absent from `A`, `B`,
//!   `C` (Claim 8.1 — that is what makes the walks simple paths).

use crate::engine::{EngineConfig, EngineKind, QRel, SlowPathStats, ThreePathEngine};
use crate::error::{BatchError, UpdateError};
use fourcycle_graph::{
    GeneralGraph, GraphUpdate, LayeredGraph, LayeredUpdate, Rel, UpdateOp, VertexId,
};

/// A consistent point-in-time view of a counter (or view / service
/// session): the answer, its cost counters, and the epoch it was taken at.
///
/// `epoch` is the number of updates successfully applied so far — rejected
/// and skipped updates do not advance it — so two snapshots with the same
/// epoch are guaranteed to describe the same graph. Readers (dashboards,
/// the scenario runner, service clients) take one `snapshot()` instead of
/// calling `count()` / `total_edges()` / `work()` separately and risking a
/// writer slipping in between the reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The maintained count (layered 4-cycles, general 4-cycles, or join
    /// size, depending on the structure snapshotted).
    pub count: i64,
    /// Total number of edges / tuples currently present.
    pub total_edges: usize,
    /// Total elementary operations performed so far.
    pub work: u64,
    /// Aggregated amortized slow-path counters.
    pub slow_path: SlowPathStats,
    /// Number of successfully applied updates.
    pub epoch: u64,
}

/// Maintains the exact number of layered 4-cycles of a fully dynamic
/// 4-layered graph.
pub struct LayeredCycleCounter {
    /// `engines[k]` answers queries for updates in relation `Rel::from_index(k)`
    /// and maintains structures over the other three relations.
    engines: [Box<dyn ThreePathEngine>; 4],
    graph: LayeredGraph,
    count: i64,
    kind: EngineKind,
    /// Number of successfully applied updates (rejected ones don't count).
    epoch: u64,
}

impl LayeredCycleCounter {
    /// Creates a counter over an empty graph using the given engine kind.
    pub fn new(kind: EngineKind) -> Self {
        Self::with_config(kind, &EngineConfig::default())
    }

    /// Creates a counter whose four engines are built from a shared
    /// configuration (capacity hints, `FmmConfig`).
    pub fn with_config(kind: EngineKind, config: &EngineConfig) -> Self {
        Self {
            engines: [
                kind.build_with(config),
                kind.build_with(config),
                kind.build_with(config),
                kind.build_with(config),
            ],
            graph: LayeredGraph::new(),
            count: 0,
            kind,
            epoch: 0,
        }
    }

    /// The engine kind driving this counter.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Current number of layered 4-cycles.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// The maintained layered graph (read-only mirror).
    pub fn graph(&self) -> &LayeredGraph {
        &self.graph
    }

    /// Current total number of edges (the paper's `m`).
    pub fn total_edges(&self) -> usize {
        self.graph.total_edges()
    }

    /// Total work performed by the four engines.
    pub fn work(&self) -> u64 {
        self.engines.iter().map(|e| e.work()).sum()
    }

    /// Aggregated slow-path counters (era rebuilds, phase rollovers, class
    /// transitions) of the four engines. Workload scenarios that claim to
    /// stress an amortized slow path assert through this hook that the slow
    /// path actually fired.
    pub fn slow_path_stats(&self) -> SlowPathStats {
        let mut total = SlowPathStats::default();
        for engine in &self.engines {
            total.merge(engine.slow_path_stats());
        }
        total
    }

    /// Number of updates successfully applied so far (skipped / rejected
    /// updates do not advance the epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overwrites the applied-update count. Crash recovery
    /// (`fourcycle-store`) rebuilds a counter's *graph* by re-inserting its
    /// checkpointed edge set, which leaves the epoch at the edge count
    /// rather than the historical number of applied updates; this restores
    /// the recorded value so recovered snapshots are indistinguishable from
    /// uninterrupted replay. Not for general use: the epoch is otherwise an
    /// invariant maintained solely by the apply paths.
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// A consistent point-in-time view: count, edge total, work, slow-path
    /// counters and the epoch they were all taken at.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            count: self.count,
            total_edges: self.graph.total_edges(),
            work: self.work(),
            slow_path: self.slow_path_stats(),
            epoch: self.epoch,
        }
    }

    /// Validates one update against the current graph without touching any
    /// state.
    fn validate(&self, update: &LayeredUpdate) -> Result<(), UpdateError> {
        let present = self.graph.has_edge(update.rel, update.left, update.right);
        match update.op {
            UpdateOp::Insert if present => Err(UpdateError::DuplicateEdge),
            UpdateOp::Delete if !present => Err(UpdateError::MissingEdge),
            _ => Ok(()),
        }
    }

    /// Within engine `rot` (whose query matrix is `Rel::from_index(rot)`),
    /// the role played by relation `rel`, if any.
    fn role_in_rotation(rot: usize, rel: Rel) -> Option<QRel> {
        let offset = (rel.index() + 4 - rot) % 4;
        match offset {
            1 => Some(QRel::A),
            2 => Some(QRel::B),
            3 => Some(QRel::C),
            _ => None,
        }
    }

    /// Number of 3-paths between `u ∈ L1` and `v ∈ L4` through `A`, `B`, `C`
    /// (the query answered by the `D`-rotation engine). Exposed because the
    /// §8 general-graph reduction needs exactly this query.
    pub fn query_paths_through_abc(&mut self, u: VertexId, v: VertexId) -> i64 {
        self.engines[Rel::D.index()].query(u, v)
    }

    /// Applies one layered edge update and returns the new layered 4-cycle
    /// count, or the reason the update was rejected (nothing changes on
    /// rejection).
    ///
    /// ```
    /// use fourcycle_core::{EngineKind, LayeredCycleCounter, UpdateError};
    /// use fourcycle_graph::{LayeredUpdate, Rel};
    ///
    /// let mut counter = LayeredCycleCounter::new(EngineKind::Simple);
    /// for update in [
    ///     LayeredUpdate::insert(Rel::A, 1, 2),
    ///     LayeredUpdate::insert(Rel::B, 2, 3),
    ///     LayeredUpdate::insert(Rel::C, 3, 4),
    /// ] {
    ///     counter.try_apply(update).unwrap();
    /// }
    /// let count = counter.try_apply(LayeredUpdate::insert(Rel::D, 4, 1));
    /// assert_eq!(count, Ok(1)); // A–B–C–D closes one layered 4-cycle
    /// assert_eq!(
    ///     counter.try_apply(LayeredUpdate::insert(Rel::D, 4, 1)),
    ///     Err(UpdateError::DuplicateEdge),
    /// );
    /// assert_eq!(counter.snapshot().epoch, 4);
    /// ```
    pub fn try_apply(&mut self, update: LayeredUpdate) -> Result<i64, UpdateError> {
        self.validate(&update)?;

        // The engine whose query matrix is `update.rel` counts the cycles
        // through the new edge: 3-paths from the edge's right endpoint (its
        // L1 in that rotation) to its left endpoint (its L4).
        let k = update.rel.index();
        let delta = self.engines[k].query(update.right, update.left);
        self.count += update.op.sign() * delta;

        // The other three engines see the edge as part of their data.
        for rot in 0..4 {
            if rot == k {
                continue;
            }
            if let Some(role) = Self::role_in_rotation(rot, update.rel) {
                self.engines[rot].apply_update(role, update.left, update.right, update.op);
            }
        }
        self.graph.apply(&update);
        self.epoch += 1;
        Ok(self.count)
    }

    /// Infallible wrapper over [`try_apply`](Self::try_apply): returns the
    /// new count, or `None` (and changes nothing) if the update was
    /// rejected.
    ///
    /// ```
    /// use fourcycle_core::{EngineKind, LayeredCycleCounter};
    /// use fourcycle_graph::{LayeredUpdate, Rel};
    ///
    /// let mut counter = LayeredCycleCounter::new(EngineKind::Simple);
    /// assert!(counter.apply(LayeredUpdate::insert(Rel::A, 1, 2)).is_some());
    /// assert!(counter.apply(LayeredUpdate::insert(Rel::A, 1, 2)).is_none());
    /// ```
    pub fn apply(&mut self, update: LayeredUpdate) -> Option<i64> {
        self.try_apply(update).ok()
    }

    /// Convenience: applies updates one at a time, returning the final
    /// count. Ill-formed updates are skipped.
    #[deprecated(
        since = "0.2.0",
        note = "use `apply_batch` (same skip semantics, batched engine path) \
                or `try_apply` per update for real errors"
    )]
    pub fn apply_all(&mut self, updates: impl IntoIterator<Item = LayeredUpdate>) -> i64 {
        for u in updates {
            let _ = self.apply(u);
        }
        self.count
    }

    /// Applies a batch of updates through the engines' batch entry points,
    /// returning the final count. Ill-formed updates are skipped (use
    /// [`try_apply_batch`](Self::try_apply_batch) for atomic all-or-nothing
    /// semantics), and the final state and count are identical to sequential
    /// application.
    ///
    /// Count maintenance needs each update's query answered by the engine
    /// whose query matrix is the update's relation, *after* every earlier
    /// batch update that engine maintains. The counter therefore buffers
    /// per-engine sub-batches and flushes an engine lazily, immediately
    /// before querying it; engines never see an update later than a query
    /// that depends on it, and between queries they digest whole runs of
    /// updates at once (coalescing same-pair churn, settling class
    /// transitions and phase bookkeeping once per run).
    ///
    /// ```
    /// use fourcycle_core::{EngineKind, LayeredCycleCounter};
    /// use fourcycle_graph::{LayeredUpdate, Rel};
    ///
    /// let batch = vec![
    ///     LayeredUpdate::insert(Rel::A, 1, 2),
    ///     LayeredUpdate::insert(Rel::B, 2, 3),
    ///     LayeredUpdate::insert(Rel::C, 3, 4),
    ///     LayeredUpdate::insert(Rel::D, 4, 1),
    /// ];
    /// let mut batched = LayeredCycleCounter::new(EngineKind::Threshold);
    /// let mut sequential = LayeredCycleCounter::new(EngineKind::Threshold);
    /// for update in &batch {
    ///     sequential.apply(*update);
    /// }
    /// assert_eq!(batched.apply_batch(&batch), sequential.count());
    /// ```
    pub fn apply_batch(&mut self, updates: &[LayeredUpdate]) -> i64 {
        /// Per-engine buffers of updates not yet applied, one per role
        /// (`QRel`), each in arrival order. Order *across* roles is
        /// immaterial to an engine's final state; see the maintenance-rule
        /// multilinearity note in `fmm::rules`.
        type Pending = [Vec<(VertexId, VertexId, UpdateOp)>; 3];
        let mut pending: [Pending; 4] = Default::default();
        let flush = |engine: &mut Box<dyn ThreePathEngine>, pending: &mut Pending| {
            for rel in QRel::ALL {
                let buf = &mut pending[rel.index()];
                if !buf.is_empty() {
                    engine.apply_batch(rel, buf);
                    buf.clear();
                }
            }
        };

        for update in updates {
            let valid = match update.op {
                UpdateOp::Insert => !self.graph.has_edge(update.rel, update.left, update.right),
                UpdateOp::Delete => self.graph.has_edge(update.rel, update.left, update.right),
            };
            if !valid {
                continue;
            }
            self.epoch += 1;
            let k = update.rel.index();
            flush(&mut self.engines[k], &mut pending[k]);
            let delta = self.engines[k].query(update.right, update.left);
            self.count += update.op.sign() * delta;
            for (rot, engine_pending) in pending.iter_mut().enumerate() {
                if rot == k {
                    continue;
                }
                if let Some(role) = Self::role_in_rotation(rot, update.rel) {
                    engine_pending[role.index()].push((update.left, update.right, update.op));
                }
            }
            self.graph.apply(update);
        }
        for (engine, engine_pending) in self.engines.iter_mut().zip(pending.iter_mut()) {
            flush(engine, engine_pending);
        }
        self.count
    }

    /// Atomic batch application: the whole batch is validated first —
    /// against the current graph *plus the batch's own earlier updates*, so
    /// insert-then-delete of the same edge within one batch is well-formed —
    /// and nothing is applied unless every update is valid. On rejection the
    /// [`BatchError`] attributes the failure to the first offending batch
    /// index. On success the result is identical to
    /// [`apply_batch`](Self::apply_batch).
    pub fn try_apply_batch(&mut self, updates: &[LayeredUpdate]) -> Result<i64, BatchError> {
        crate::error::validate_batch(
            updates,
            |u| Ok(((u.rel, u.left, u.right), u.op)),
            |u| self.graph.has_edge(u.rel, u.left, u.right),
        )?;
        Ok(self.apply_batch(updates))
    }
}

/// Maintains the exact number of 4-cycles of a fully dynamic *general* simple
/// graph (Theorem 1).
pub struct FourCycleCounter {
    layered: LayeredCycleCounter,
    graph: GeneralGraph,
    count: i64,
    /// Number of successfully applied *general* updates (each fans out into
    /// eight layered updates underneath; those do not count here).
    epoch: u64,
}

impl FourCycleCounter {
    /// Creates a counter over an empty graph using the given engine kind.
    pub fn new(kind: EngineKind) -> Self {
        Self::with_config(kind, &EngineConfig::default())
    }

    /// Creates a counter whose engines are built from a shared
    /// configuration.
    pub fn with_config(kind: EngineKind, config: &EngineConfig) -> Self {
        Self {
            layered: LayeredCycleCounter::with_config(kind, config),
            graph: GeneralGraph::new(),
            count: 0,
            epoch: 0,
        }
    }

    /// Current number of 4-cycles.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// The maintained general graph (read-only mirror).
    pub fn graph(&self) -> &GeneralGraph {
        &self.graph
    }

    /// Total engine work performed so far.
    pub fn work(&self) -> u64 {
        self.layered.work()
    }

    /// Aggregated slow-path counters of the underlying layered engines.
    pub fn slow_path_stats(&self) -> SlowPathStats {
        self.layered.slow_path_stats()
    }

    /// Current total number of edges.
    pub fn total_edges(&self) -> usize {
        self.graph.edge_count()
    }

    /// Number of general updates successfully applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overwrites the applied-update count (crash-recovery hook; see
    /// [`LayeredCycleCounter::restore_epoch`]).
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// A consistent point-in-time view: count, edge total, work, slow-path
    /// counters and the epoch they were all taken at.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            count: self.count,
            total_edges: self.graph.edge_count(),
            work: self.work(),
            slow_path: self.slow_path_stats(),
            epoch: self.epoch,
        }
    }

    /// Validates one general update against the current graph without
    /// touching any state.
    fn validate(&self, update: &GraphUpdate) -> Result<(), UpdateError> {
        if update.u == update.v {
            return Err(UpdateError::SelfLoop);
        }
        let present = self.graph.has_edge(update.u, update.v);
        match update.op {
            UpdateOp::Insert if present => Err(UpdateError::DuplicateEdge),
            UpdateOp::Delete if !present => Err(UpdateError::MissingEdge),
            _ => Ok(()),
        }
    }

    /// Inserts the edge `{u, v}` and returns the new 4-cycle count, or the
    /// rejection reason (duplicate edge, self-loop) with nothing changed.
    ///
    /// ```
    /// use fourcycle_core::{EngineKind, FourCycleCounter, UpdateError};
    ///
    /// let mut counter = FourCycleCounter::new(EngineKind::Fmm);
    /// for (u, v) in [(1, 2), (2, 3), (3, 4)] {
    ///     counter.try_insert(u, v).unwrap();
    /// }
    /// assert_eq!(counter.try_insert(4, 1), Ok(1));
    /// assert_eq!(counter.try_insert(4, 1), Err(UpdateError::DuplicateEdge));
    /// assert_eq!(counter.try_insert(5, 5), Err(UpdateError::SelfLoop));
    /// assert_eq!(counter.try_delete(2, 3), Ok(0));
    /// assert_eq!(counter.snapshot().epoch, 5);
    /// ```
    pub fn try_insert(&mut self, u: VertexId, v: VertexId) -> Result<i64, UpdateError> {
        self.validate(&GraphUpdate::insert(u, v))?;
        // Claim 8.1: query while (u, v) is absent from A, B, C — which is the
        // case right now — so the layered 3-path count equals the number of
        // simple 3-paths between u and v in the general graph.
        let delta = self.layered.query_paths_through_abc(u, v);
        self.count += delta;
        self.replicate(u, v, UpdateOp::Insert);
        self.graph.insert(u, v);
        self.epoch += 1;
        Ok(self.count)
    }

    /// Deletes the edge `{u, v}` and returns the new 4-cycle count, or the
    /// rejection reason (missing edge, self-loop) with nothing changed.
    pub fn try_delete(&mut self, u: VertexId, v: VertexId) -> Result<i64, UpdateError> {
        self.validate(&GraphUpdate::delete(u, v))?;
        // §8: delete from A, B, C first so the query sees the graph without
        // the edge, then account for the removed cycles and clear D.
        let (buf, len) =
            Self::replication_updates(&[Rel::A, Rel::B, Rel::C], u, v, UpdateOp::Delete);
        self.layered.apply_batch(&buf[..len]);
        let delta = self.layered.query_paths_through_abc(u, v);
        self.count -= delta;
        self.apply_both_orientations(Rel::D, u, v, UpdateOp::Delete);
        self.graph.delete(u, v);
        self.epoch += 1;
        Ok(self.count)
    }

    /// Infallible wrapper over [`try_insert`](Self::try_insert): returns
    /// `None` if the edge already exists (or is a self-loop).
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> Option<i64> {
        self.try_insert(u, v).ok()
    }

    /// Infallible wrapper over [`try_delete`](Self::try_delete): returns
    /// `None` if the edge is absent.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> Option<i64> {
        self.try_delete(u, v).ok()
    }

    /// Applies a general-graph update; returns the new count or the
    /// rejection reason with nothing changed.
    pub fn try_apply(&mut self, update: GraphUpdate) -> Result<i64, UpdateError> {
        match update.op {
            UpdateOp::Insert => self.try_insert(update.u, update.v),
            UpdateOp::Delete => self.try_delete(update.u, update.v),
        }
    }

    /// Infallible wrapper over [`try_apply`](Self::try_apply): returns
    /// `None` if the update was ill-formed.
    pub fn apply(&mut self, update: GraphUpdate) -> Option<i64> {
        self.try_apply(update).ok()
    }

    /// Atomic batch application: the whole batch is validated first (against
    /// the current graph plus the batch's own earlier updates) and nothing
    /// is applied unless every update is valid. On rejection the
    /// [`BatchError`] attributes the failure to the first offending batch
    /// index.
    pub fn try_apply_batch(&mut self, updates: &[GraphUpdate]) -> Result<i64, BatchError> {
        crate::error::validate_batch(
            updates,
            |u| {
                if u.u == u.v {
                    Err(UpdateError::SelfLoop)
                } else {
                    Ok((u.canonical(), u.op))
                }
            },
            |u| self.graph.has_edge(u.u, u.v),
        )?;
        for update in updates {
            self.try_apply(*update)
                // lint: allow(no-panic) whole batch pre-validated just above
                .expect("batch was validated up front");
        }
        Ok(self.count)
    }

    /// Applies a batch of general-graph updates, returning the final count.
    /// Ill-formed updates are skipped (use
    /// [`try_apply_batch`](Self::try_apply_batch) for atomic all-or-nothing
    /// semantics).
    ///
    /// The §8 reduction is inherently query-interleaved — Claim 8.1 requires
    /// each edge's 3-path query to run while that edge is absent from `A`,
    /// `B`, `C`, so each general update pins a query point between its own
    /// replicated layered updates. The batch entry point therefore processes
    /// updates in order (the layered counter underneath still batches the
    /// replicated maintenance between query points).
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> i64 {
        for update in updates {
            let _ = self.apply(*update);
        }
        self.count
    }

    fn replicate(&mut self, u: VertexId, v: VertexId, op: UpdateOp) {
        // Insertion order D, C, B, A per §8 (the order only matters for the
        // interleaving of query and insertion, which `insert` already fixed by
        // querying first). The eight layered updates go through the layered
        // counter's batch path so the engines digest them as one run.
        let (buf, len) = Self::replication_updates(&[Rel::D, Rel::C, Rel::B, Rel::A], u, v, op);
        self.layered.apply_batch(&buf[..len]);
    }

    /// Both orientations of `{u, v}` for each of `rels`, in a fixed-size
    /// buffer (at most 4 relations × 2 orientations) — this sits on the
    /// per-edge hot path of the §8 reduction, so it must not heap-allocate.
    fn replication_updates(
        rels: &[Rel],
        u: VertexId,
        v: VertexId,
        op: UpdateOp,
    ) -> ([LayeredUpdate; 8], usize) {
        let mut buf = [LayeredUpdate {
            op,
            rel: Rel::A,
            left: u,
            right: v,
        }; 8];
        let mut len = 0;
        for &rel in rels {
            for update in Self::both_orientations(rel, u, v, op) {
                buf[len] = update;
                len += 1;
            }
        }
        (buf, len)
    }

    fn both_orientations(rel: Rel, u: VertexId, v: VertexId, op: UpdateOp) -> [LayeredUpdate; 2] {
        [
            LayeredUpdate {
                op,
                rel,
                left: u,
                right: v,
            },
            LayeredUpdate {
                op,
                rel,
                left: v,
                right: u,
            },
        ]
    }

    fn apply_both_orientations(&mut self, rel: Rel, u: VertexId, v: VertexId, op: UpdateOp) {
        for update in Self::both_orientations(rel, u, v, op) {
            let _ = self.layered.apply(update);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use fourcycle_graph::LayeredUpdate;

    #[test]
    fn layered_counter_matches_brute_force_small_stream() {
        let mut counter = LayeredCycleCounter::new(EngineKind::Simple);
        let updates = [
            LayeredUpdate::insert(Rel::A, 1, 2),
            LayeredUpdate::insert(Rel::B, 2, 3),
            LayeredUpdate::insert(Rel::C, 3, 4),
            LayeredUpdate::insert(Rel::D, 4, 1),
            LayeredUpdate::insert(Rel::A, 1, 5),
            LayeredUpdate::insert(Rel::B, 5, 3),
            LayeredUpdate::delete(Rel::B, 2, 3),
            LayeredUpdate::insert(Rel::B, 2, 3),
            LayeredUpdate::insert(Rel::D, 4, 6),
        ];
        for u in updates {
            let count = counter.apply(u).expect("well-formed update");
            assert_eq!(count, counter.graph().count_layered_4cycles_brute_force());
        }
        assert_eq!(counter.kind(), EngineKind::Simple);
        assert!(counter.total_edges() > 0);
    }

    #[test]
    fn layered_counter_rejects_ill_formed_updates() {
        let mut counter = LayeredCycleCounter::new(EngineKind::Naive);
        assert!(counter.apply(LayeredUpdate::insert(Rel::A, 1, 2)).is_some());
        assert!(counter.apply(LayeredUpdate::insert(Rel::A, 1, 2)).is_none());
        assert!(counter.apply(LayeredUpdate::delete(Rel::B, 9, 9)).is_none());
        assert_eq!(counter.count(), 0);
    }

    #[test]
    fn general_counter_counts_k4_and_deletions() {
        let mut counter = FourCycleCounter::new(EngineKind::Naive);
        // Build K4: 3 four-cycles.
        let vertices = [1u32, 2, 3, 4];
        for i in 0..4 {
            for j in (i + 1)..4 {
                counter.insert(vertices[i], vertices[j]);
                assert_eq!(counter.count(), counter.graph().count_4cycles_brute_force());
            }
        }
        assert_eq!(counter.count(), 3);
        // Remove one edge: a single 4-cycle remains.
        counter.delete(1, 2);
        assert_eq!(counter.count(), counter.graph().count_4cycles_brute_force());
        assert_eq!(counter.count(), 1);
        // Duplicate operations are rejected without corrupting the count.
        assert!(counter.insert(1, 3).is_none());
        assert!(counter.delete(1, 2).is_none());
        assert!(counter.insert(5, 5).is_none());
        assert_eq!(counter.count(), 1);
    }

    #[test]
    fn general_counter_bipartite_complete_graph() {
        // K_{3,3} has C(3,2)^2 = 9 four-cycles.
        let mut counter = FourCycleCounter::new(EngineKind::Simple);
        for u in [1u32, 2, 3] {
            for v in [10u32, 11, 12] {
                counter.insert(u, v);
            }
        }
        assert_eq!(counter.count(), 9);
        assert_eq!(counter.count(), counter.graph().count_4cycles_brute_force());
    }
}
