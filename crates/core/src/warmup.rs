//! The warm-up algorithm of §3: counting 4-cycles when `A` and `C` are fixed.
//!
//! Under Assumption 3 the only edge updates arrive in `B` (and the query
//! matrix `D`). The algorithm:
//!
//! * partitions `L1`/`L4` into High / Medium / Low by their (fixed) degree in
//!   `A` / `C` (thresholds `m^{2/3−ε1}` and `m^{1/3+ε1}`),
//! * splits the stream of `B`-updates into **chunks** of `m^{2/3−ε1}` updates,
//! * classifies `L2`/`L3` vertices per chunk as Dense/Sparse by their degree
//!   *within the chunk* (threshold `m^{1/3−ε2}`),
//! * and maintains the data structures of Table 1 over all completed chunks
//!   (`B_{<i}`), answering the part of a query that goes through the current
//!   (incomplete) chunk by lazy evaluation over its edge list (§3.3).
//!
//! Engineering note (DESIGN.md §2.3): the paper computes a completed chunk's
//! contributions *during* the next chunk (spread over its updates, using fast
//! rectangular matrix multiplication for the `A^{H∗}·B_i·C^{∗H}` and
//! `A^{L∗}·B_{i,DD}` products) so that the update time is worst-case. We fold
//! a chunk's contributions eagerly at the moment it completes — the same
//! total work, amortized — and keep lazy evaluation only for the current
//! incomplete chunk. Of Eq (4)'s six low-degree structures we store the four
//! a query actually reads (`A^{L∗}·B_{DD/SS/SD}` and `B_{DS}·C^{∗L}`).
//!
//! The engine deliberately rejects updates to `A` or `C`: Assumption 3 is
//! what the main algorithm relies on when it uses this engine as a
//! subroutine, and the standalone benchmarks construct it with the fixed
//! relations up front.

use crate::engine::{QRel, ThreePathEngine};
use crate::pair_counts::PairCounts;
use fourcycle_graph::{BipartiteAdjacency, UpdateOp, VertexId};
use std::collections::HashMap;

/// Endpoint classes of the warm-up algorithm (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WClass {
    Low,
    Medium,
    High,
}

/// The §3 engine: `A`, `C` fixed, `B` fully dynamic.
#[derive(Debug)]
pub struct WarmupEngine {
    a: BipartiteAdjacency,
    c: BipartiteAdjacency,
    /// Degree thresholds for L1/L4 classes.
    medium_lo: usize,
    high_lo: usize,
    /// Number of B-updates per chunk (`⌈m^{2/3−ε1}⌉`).
    chunk_len: usize,
    /// Per-chunk Dense/Sparse threshold (`⌈m^{1/3−ε2}⌉`).
    dense_threshold: usize,
    /// Signed B-updates of the current (incomplete) chunk.
    current_chunk: Vec<(VertexId, VertexId, i64)>,
    /// Total (chunk-independent) `B` adjacency, maintained solely to answer
    /// the membership test behind the validated `try_*` entry points.
    b_total: BipartiteAdjacency,
    /// `A^{H∗}·B_{<}` — wedges from High `L1` vertices through `L2`.
    ah_b: PairCounts,
    /// `A^{M∗}·B_{<}`.
    am_b: PairCounts,
    /// `B_{<}·C^{∗H}` — wedges from `L2` to High `L4` vertices.
    b_ch: PairCounts,
    /// `B_{<}·C^{∗M}`.
    b_cm: PairCounts,
    /// `A^{H∗}·B_{<}·C^{∗H}` — 3-paths between High/High endpoint pairs.
    ah_b_ch: PairCounts,
    /// `A^{L∗}·B_{<,DD}`, `A^{L∗}·B_{<,SS}`, `A^{L∗}·B_{<,SD}` (Eq 4).
    al_b_dd: PairCounts,
    al_b_ss: PairCounts,
    al_b_sd: PairCounts,
    /// `B_{<,DS}·C^{∗L}` (Eq 4).
    b_ds_cl: PairCounts,
    work: u64,
    chunks_folded: usize,
}

impl WarmupEngine {
    /// Creates the engine from the fixed relations `A` and `C`.
    ///
    /// `m_hint` is the edge-count scale used for the thresholds (the paper's
    /// `m`; when the engine is used as a subroutine this is the full graph's
    /// edge count). `eps1`/`eps2` are the §3.4 parameters.
    // lint: degree-band cutoffs are ceil()ed f64 powers of m, clamped below
    #[allow(clippy::cast_possible_truncation)]
    pub fn new(
        a_edges: impl IntoIterator<Item = (VertexId, VertexId)>,
        c_edges: impl IntoIterator<Item = (VertexId, VertexId)>,
        m_hint: usize,
        eps1: f64,
        eps2: f64,
    ) -> Self {
        let mut a = BipartiteAdjacency::new();
        for (u, x) in a_edges {
            a.add(u, x, 1);
        }
        let mut c = BipartiteAdjacency::new();
        for (y, v) in c_edges {
            c.add(y, v, 1);
        }
        // lint: allow(no-as-cast) degree-band cutoffs are m^x f64 math (§4)
        let m = (m_hint.max(1)) as f64;
        // lint: allow(no-as-cast) band floor, clamped to >= 1 below
        let medium_lo = (m.powf(1.0 / 3.0 + eps1).ceil() as usize).max(1);
        // lint: allow(no-as-cast) band floor, clamped below
        let high_lo = (m.powf(2.0 / 3.0 - eps1).ceil() as usize).max(medium_lo + 1);
        // lint: allow(no-as-cast) chunk length, clamped below
        let chunk_len = (m.powf(2.0 / 3.0 - eps1).ceil() as usize).max(4);
        // lint: allow(no-as-cast) dense cutoff, clamped below
        let dense_threshold = (m.powf(1.0 / 3.0 - eps2).ceil() as usize).max(1);
        Self {
            a,
            c,
            medium_lo,
            high_lo,
            chunk_len,
            dense_threshold,
            current_chunk: Vec::new(),
            b_total: BipartiteAdjacency::new(),
            ah_b: PairCounts::new(),
            am_b: PairCounts::new(),
            b_ch: PairCounts::new(),
            b_cm: PairCounts::new(),
            ah_b_ch: PairCounts::new(),
            al_b_dd: PairCounts::new(),
            al_b_ss: PairCounts::new(),
            al_b_sd: PairCounts::new(),
            b_ds_cl: PairCounts::new(),
            work: 0,
            chunks_folded: 0,
        }
    }

    /// Number of completed (folded) chunks so far.
    pub fn chunks_folded(&self) -> usize {
        self.chunks_folded
    }

    /// The chunk length in use.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    fn class_l1(&self, u: VertexId) -> WClass {
        Self::classify(self.a.degree_left(u), self.medium_lo, self.high_lo)
    }

    fn class_l4(&self, v: VertexId) -> WClass {
        Self::classify(self.c.degree_right(v), self.medium_lo, self.high_lo)
    }

    fn classify(deg: usize, medium_lo: usize, high_lo: usize) -> WClass {
        if deg >= high_lo {
            WClass::High
        } else if deg >= medium_lo {
            WClass::Medium
        } else {
            WClass::Low
        }
    }

    /// Folds the just-completed chunk into the `B_{<}` structures (§3.2).
    fn fold_chunk(&mut self) {
        // Per-chunk Dense/Sparse classification of L2/L3 vertices by the
        // number of chunk updates incident to them (§3.1).
        let mut deg_l2: HashMap<VertexId, usize> = HashMap::new();
        let mut deg_l3: HashMap<VertexId, usize> = HashMap::new();
        for &(x, y, _) in &self.current_chunk {
            *deg_l2.entry(x).or_insert(0) += 1;
            *deg_l3.entry(y).or_insert(0) += 1;
        }
        let dense_l2 = |x: &VertexId, map: &HashMap<VertexId, usize>| {
            map.get(x).copied().unwrap_or(0) >= self.dense_threshold
        };

        let chunk = std::mem::take(&mut self.current_chunk);
        for (x, y, s) in chunk {
            let x_dense = dense_l2(&x, &deg_l2);
            let y_dense = dense_l2(&y, &deg_l3);

            // Contributions of the wedge (·, x) –B– y.
            let a_nbrs: Vec<(VertexId, i64)> = self.a.neighbors_of_right(x).collect();
            for &(u, wa) in &a_nbrs {
                self.work += 1;
                match self.class_l1(u) {
                    WClass::High => self.ah_b.add(u, y, s * wa),
                    WClass::Medium => self.am_b.add(u, y, s * wa),
                    WClass::Low => {
                        if x_dense && y_dense {
                            self.al_b_dd.add(u, y, s * wa);
                        } else if !x_dense && !y_dense {
                            self.al_b_ss.add(u, y, s * wa);
                        } else if !x_dense && y_dense {
                            self.al_b_sd.add(u, y, s * wa);
                        }
                    }
                }
            }

            // Contributions of the wedge x –B– y, (·).
            let c_nbrs: Vec<(VertexId, i64)> = self.c.neighbors_of_left(y).collect();
            for &(v, wc) in &c_nbrs {
                self.work += 1;
                match self.class_l4(v) {
                    WClass::High => self.b_ch.add(x, v, s * wc),
                    WClass::Medium => self.b_cm.add(x, v, s * wc),
                    WClass::Low => {
                        if x_dense && !y_dense {
                            self.b_ds_cl.add(x, v, s * wc);
                        }
                    }
                }
            }

            // 3-path contributions for High/High endpoint pairs
            // (`A^{H∗}·B_i·C^{∗H}`; the paper computes these with rectangular
            // FMM, we enumerate the High neighbors on both sides).
            for &(u, wa) in &a_nbrs {
                if self.class_l1(u) != WClass::High {
                    continue;
                }
                for &(v, wc) in &c_nbrs {
                    if self.class_l4(v) != WClass::High {
                        continue;
                    }
                    self.work += 1;
                    self.ah_b_ch.add(u, v, s * wa * wc);
                }
            }
        }
        self.chunks_folded += 1;
    }
}

impl ThreePathEngine for WarmupEngine {
    fn apply_update(&mut self, rel: QRel, left: VertexId, right: VertexId, op: UpdateOp) {
        assert_eq!(
            rel,
            QRel::B,
            "WarmupEngine assumes A and C are fixed (Assumption 3, §3.1); only B may change"
        );
        self.b_total.add(left, right, op.sign());
        self.current_chunk.push((left, right, op.sign()));
        if self.current_chunk.len() >= self.chunk_len {
            self.fold_chunk();
        }
    }

    fn accepts_updates_to(&self, rel: QRel) -> bool {
        // Assumption 3 (§3.1): `A` and `C` are fixed for the engine's
        // lifetime; only `B` is dynamic.
        rel == QRel::B
    }

    fn has_edge(&self, rel: QRel, left: VertexId, right: VertexId) -> bool {
        let adj = match rel {
            QRel::A => &self.a,
            QRel::B => &self.b_total,
            QRel::C => &self.c,
        };
        adj.weight(left, right) != 0
    }

    fn apply_batch(&mut self, rel: QRel, updates: &[(VertexId, VertexId, UpdateOp)]) {
        assert_eq!(
            rel,
            QRel::B,
            "WarmupEngine assumes A and C are fixed (Assumption 3, §3.1); only B may change"
        );
        // The engine is already chunk-structured (§3.2): a batch extends the
        // current chunk with its net signed events — both the folded
        // structures and the §3.3 lazy query sum are linear in the chunk's
        // events, so cancelled pairs can be dropped — folding whenever a
        // chunk boundary is crossed.
        for (l, r, s) in fourcycle_graph::coalesce_updates(updates) {
            self.b_total.add(l, r, s);
            self.current_chunk.push((l, r, s));
            if self.current_chunk.len() >= self.chunk_len {
                self.fold_chunk();
            }
        }
    }

    fn query(&mut self, u: VertexId, v: VertexId) -> i64 {
        let mut total = 0i64;

        // Lazy evaluation over the current incomplete chunk (§3.3).
        for &(x, y, s) in &self.current_chunk {
            self.work += 1;
            total += s * self.a.weight(u, x) * self.c.weight(y, v);
        }

        // Paths through completed chunks, by endpoint classes.
        match (self.class_l1(u), self.class_l4(v)) {
            (WClass::High, WClass::High) => {
                self.work += 1;
                total += self.ah_b_ch.get(u, v);
            }
            (WClass::High, _) => {
                for (y, wc) in self.c.neighbors_of_right(v) {
                    self.work += 1;
                    total += wc * self.ah_b.get(u, y);
                }
            }
            (WClass::Medium, WClass::High) => {
                for (x, wa) in self.a.neighbors_of_left(u) {
                    self.work += 1;
                    total += wa * self.b_ch.get(x, v);
                }
            }
            (WClass::Medium, _) => {
                for (y, wc) in self.c.neighbors_of_right(v) {
                    self.work += 1;
                    total += wc * self.am_b.get(u, y);
                }
            }
            (WClass::Low, WClass::High) => {
                for (x, wa) in self.a.neighbors_of_left(u) {
                    self.work += 1;
                    total += wa * self.b_ch.get(x, v);
                }
            }
            (WClass::Low, WClass::Medium) => {
                for (x, wa) in self.a.neighbors_of_left(u) {
                    self.work += 1;
                    total += wa * self.b_cm.get(x, v);
                }
            }
            (WClass::Low, WClass::Low) => {
                for (y, wc) in self.c.neighbors_of_right(v) {
                    self.work += 1;
                    total += wc
                        * (self.al_b_dd.get(u, y)
                            + self.al_b_ss.get(u, y)
                            + self.al_b_sd.get(u, y));
                }
                for (x, wa) in self.a.neighbors_of_left(u) {
                    self.work += 1;
                    total += wa * self.b_ds_cl.get(x, v);
                }
            }
        }
        total
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        "warmup-fixed-ac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use fourcycle_graph::UpdateOp::{Delete, Insert};

    /// Builds a fixed A/C bipartite structure with a couple of high-degree
    /// vertices, then streams B updates across several chunk boundaries,
    /// cross-checking every query against the oracle.
    #[test]
    fn agrees_with_naive_across_chunks() {
        let mut a_edges = Vec::new();
        let mut c_edges = Vec::new();
        // Vertex 0 in L1 is high degree, 1 is medium-ish, the rest low.
        for x in 0..30u32 {
            a_edges.push((0u32, x));
        }
        for x in 0..6u32 {
            a_edges.push((1u32, x));
        }
        a_edges.push((2, 0));
        a_edges.push((3, 5));
        // L4 vertex 100 high degree, 101 medium, others low.
        for y in 0..30u32 {
            c_edges.push((y, 100u32));
        }
        for y in 0..6u32 {
            c_edges.push((y, 101u32));
        }
        c_edges.push((0, 102));
        c_edges.push((7, 103));

        let m_hint = a_edges.len() + c_edges.len();
        let mut warmup = WarmupEngine::new(
            a_edges.clone(),
            c_edges.clone(),
            m_hint,
            1.0 / 24.0,
            5.0 / 24.0,
        );
        let mut naive = NaiveEngine::new();
        for &(u, x) in &a_edges {
            naive.apply_update(QRel::A, u, x, Insert);
        }
        for &(y, v) in &c_edges {
            naive.apply_update(QRel::C, y, v, Insert);
        }

        // Stream B updates: inserts with periodic deletions, enough to cross
        // several chunk boundaries. Only well-formed updates are applied
        // (no duplicate inserts, no deletes of absent edges).
        let mut present: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut step = 0u32;
        for round in 0..4u32 {
            for x in 0..12u32 {
                for y in 0..6u32 {
                    let is_present = present.contains(&(x, y));
                    let op = if is_present && (x + y + round) % 3 == 0 {
                        Delete
                    } else if !is_present {
                        Insert
                    } else {
                        continue;
                    };
                    match op {
                        Insert => {
                            present.insert((x, y));
                        }
                        Delete => {
                            present.remove(&(x, y));
                        }
                    }
                    warmup.apply_update(QRel::B, x, y, op);
                    naive.apply_update(QRel::B, x, y, op);
                    step += 1;
                    if step.is_multiple_of(9) {
                        for u in [0u32, 1, 2, 3, 4] {
                            for v in [100u32, 101, 102, 103, 104] {
                                assert_eq!(
                                    warmup.query(u, v),
                                    naive.query(u, v),
                                    "round {round} step {step} query ({u},{v})"
                                );
                            }
                        }
                    }
                }
            }
        }
        assert!(
            warmup.chunks_folded() > 0,
            "the stream must cross a chunk boundary"
        );
    }

    #[test]
    #[should_panic(expected = "A and C are fixed")]
    fn rejects_updates_to_a() {
        let mut warmup = WarmupEngine::new([(1, 2)], [(3, 4)], 10, 1.0 / 24.0, 5.0 / 24.0);
        warmup.apply_update(QRel::A, 1, 5, Insert);
    }
}
