//! Fully dynamic 4-cycle counting — the algorithms of Assadi & Shah
//! (PODS 2025), *"An Improved Fully Dynamic Algorithm for Counting 4-Cycles
//! in General Graphs using Fast Matrix Multiplication"*, plus every baseline
//! the paper compares against.
//!
//! # Problem
//!
//! Maintain the exact number of (simple) 4-cycles of a graph under an
//! arbitrary stream of edge insertions and deletions, answering after every
//! update. §2.2 of the paper reduces this to the following layered query
//! problem, which all engines in this crate implement ([`ThreePathEngine`]):
//!
//! > Given a 4-layered graph with relations `A (L1–L2)`, `B (L2–L3)`,
//! > `C (L3–L4)` undergoing edge updates, answer queries `(u ∈ L1, v ∈ L4)`
//! > for the number of 3-paths `u –A– x –B– y –C– v`.
//!
//! # Engines
//!
//! | Engine | Paper | Update time | Notes |
//! |---|---|---|---|
//! | [`NaiveEngine`] | — | `O(m)` | enumeration; test oracle |
//! | [`SimpleEngine`] | Appendix A | `O(n)` | all-pairs wedge counts |
//! | [`ThresholdEngine`] | §1 ("previous work", HHH22-style) | `O(m^{2/3})` | one heavy/light threshold |
//! | [`WarmupEngine`] | §3 | `O(m^{2/3−ε1})` | `A`, `C` fixed; chunked `B` |
//! | [`FmmEngine`] | §4–§7 | `O(m^{2/3−ε})` | phases + degree classes + old-phase matrix products |
//!
//! # Counters
//!
//! * [`LayeredCycleCounter`] — maintains the layered 4-cycle count
//!   (Theorem 2) by running four rotated engine instances, one per relation
//!   playing the role of the query matrix `D`.
//! * [`FourCycleCounter`] — maintains the 4-cycle count of a *general* graph
//!   (Theorem 1) through the §8 reduction.
//! * [`TriangleCounter`] — a dynamic triangle-count baseline, included
//!   because the paper's narrative contrasts the `Θ(m^{1/2})` triangle bound
//!   with the 4-cycle bounds.
//!
//! # Cost accounting
//!
//! Every engine counts the elementary operations it performs
//! ([`ThreePathEngine::work`]); the experiment harness fits scaling exponents
//! to these counts (experiment T4) because wall-clock differences of
//! `m^{0.01}` are invisible at laptop scale while operation counts are exact.

// Unit tests keep their unwrap/cast freedoms; the workspace clippy
// lints target only compiled production code (ADR-010).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod counter;
pub mod engine;
pub mod error;
pub mod fmm;
pub mod naive;
pub mod pair_counts;
pub mod simple;
pub mod threshold;
pub mod triangle;
pub mod warmup;

pub use counter::{FourCycleCounter, LayeredCycleCounter, Snapshot};
pub use engine::{EngineConfig, EngineKind, QRel, SlowPathStats, ThreePathEngine};
pub use error::{BatchError, UpdateError};
pub use fmm::{FmmConfig, FmmEngine};
pub use naive::NaiveEngine;
pub use pair_counts::PairCounts;
pub use simple::SimpleEngine;
pub use threshold::ThresholdEngine;
pub use triangle::TriangleCounter;
pub use warmup::WarmupEngine;
