//! Randomized differential tests: every engine against the enumeration
//! oracle, and every counter against the brute-force counters, on fully
//! dynamic streams that exercise degree-class transitions, phase rollovers,
//! era rebuilds and both rollover paths of the main engine.
//!
//! Seeds are fixed so failures are reproducible.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use fourcycle_core::{
    EngineKind, FmmConfig, FmmEngine, FourCycleCounter, LayeredCycleCounter, NaiveEngine, QRel,
    SimpleEngine, ThreePathEngine, ThresholdEngine,
};
use fourcycle_graph::{GraphUpdate, LayeredUpdate, Rel, UpdateOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A well-formed random layered update stream over a small vertex universe
/// (small so that collisions, hubs and class transitions happen often).
struct LayeredStream {
    rng: SmallRng,
    present: HashSet<(QRel, u32, u32)>,
    n_l1: u32,
    n_l2: u32,
    n_l3: u32,
    n_l4: u32,
    delete_prob: f64,
    /// Probability of picking a designated hub endpoint, to force high-degree
    /// vertices and class transitions.
    hub_prob: f64,
}

impl LayeredStream {
    fn new(seed: u64, sizes: (u32, u32, u32, u32), delete_prob: f64, hub_prob: f64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            present: HashSet::new(),
            n_l1: sizes.0,
            n_l2: sizes.1,
            n_l3: sizes.2,
            n_l4: sizes.3,
            delete_prob,
            hub_prob,
        }
    }

    fn pick(&mut self, n: u32) -> u32 {
        if self.rng.gen_bool(self.hub_prob) {
            // Hubs are the low-numbered vertices.
            self.rng.gen_range(0..n.clamp(1, 2))
        } else {
            self.rng.gen_range(0..n)
        }
    }

    /// Next well-formed update `(rel, left, right, op)`.
    fn next(&mut self) -> (QRel, u32, u32, UpdateOp) {
        loop {
            let rel = match self.rng.gen_range(0..3) {
                0 => QRel::A,
                1 => QRel::B,
                _ => QRel::C,
            };
            let (nl, nr) = match rel {
                QRel::A => (self.n_l1, self.n_l2),
                QRel::B => (self.n_l2, self.n_l3),
                QRel::C => (self.n_l3, self.n_l4),
            };
            let l = self.pick(nl);
            let r = self.pick(nr);
            let key = (rel, l, r);
            let exists = self.present.contains(&key);
            if exists && self.rng.gen_bool(self.delete_prob) {
                self.present.remove(&key);
                return (rel, l, r, UpdateOp::Delete);
            }
            if !exists {
                self.present.insert(key);
                return (rel, l, r, UpdateOp::Insert);
            }
        }
    }
}

/// Runs `steps` updates through the engine and the oracle, checking a grid of
/// queries every `check_every` steps.
fn run_differential(
    mut engine: Box<dyn ThreePathEngine>,
    seed: u64,
    sizes: (u32, u32, u32, u32),
    steps: usize,
    check_every: usize,
    delete_prob: f64,
    hub_prob: f64,
) {
    let mut oracle = NaiveEngine::new();
    let mut stream = LayeredStream::new(seed, sizes, delete_prob, hub_prob);
    let query_us: Vec<u32> = (0..sizes.0.min(5)).collect();
    let query_vs: Vec<u32> = (0..sizes.3.min(5)).collect();
    for step in 0..steps {
        let (rel, l, r, op) = stream.next();
        engine.apply_update(rel, l, r, op);
        oracle.apply_update(rel, l, r, op);
        if step % check_every == 0 || step + 1 == steps {
            for &u in &query_us {
                for &v in &query_vs {
                    assert_eq!(
                        engine.query(u, v),
                        oracle.query(u, v),
                        "engine {} disagrees at step {step}, query ({u},{v}), seed {seed}",
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn simple_engine_matches_oracle() {
    run_differential(
        Box::new(SimpleEngine::new()),
        11,
        (8, 10, 10, 8),
        600,
        7,
        0.3,
        0.5,
    );
}

#[test]
fn threshold_engine_matches_oracle_dense_universe() {
    run_differential(
        Box::new(ThresholdEngine::new()),
        12,
        (6, 8, 8, 6),
        700,
        9,
        0.3,
        0.5,
    );
}

#[test]
fn threshold_engine_matches_oracle_sparse_universe() {
    run_differential(
        Box::new(ThresholdEngine::new()),
        13,
        (20, 24, 24, 20),
        700,
        11,
        0.2,
        0.2,
    );
}

#[test]
fn fmm_engine_matches_oracle_default_config() {
    run_differential(
        Box::new(FmmEngine::new(FmmConfig::default())),
        14,
        (8, 10, 10, 8),
        700,
        9,
        0.3,
        0.5,
    );
}

#[test]
fn fmm_engine_matches_oracle_with_forced_rollovers() {
    let cfg = FmmConfig {
        phase_len_override: Some(13),
        ..Default::default()
    };
    run_differential(
        Box::new(FmmEngine::new(cfg)),
        15,
        (8, 10, 10, 8),
        800,
        9,
        0.3,
        0.5,
    );
}

#[test]
fn fmm_engine_matches_oracle_with_dense_rollover_path() {
    let cfg = FmmConfig {
        use_fmm: true,
        phase_len_override: Some(17),
        ..Default::default()
    };
    run_differential(
        Box::new(FmmEngine::new(cfg)),
        16,
        (8, 10, 10, 8),
        800,
        9,
        0.3,
        0.5,
    );
}

#[test]
fn fmm_engine_matches_oracle_current_omega_parameters() {
    let cfg = FmmConfig {
        phase_len_override: Some(23),
        ..FmmConfig::current_omega()
    };
    run_differential(
        Box::new(FmmEngine::new(cfg)),
        17,
        (10, 14, 14, 10),
        700,
        11,
        0.25,
        0.4,
    );
}

#[test]
fn fmm_engine_matches_oracle_larger_sparse_universe() {
    run_differential(
        Box::new(FmmEngine::new(FmmConfig::default())),
        18,
        (30, 40, 40, 30),
        900,
        17,
        0.2,
        0.15,
    );
}

#[test]
fn fmm_engine_insert_only_then_delete_everything() {
    // Growing then fully shrinking stream: exercises era rebuilds in both
    // directions and the negative-edge bookkeeping.
    let cfg = FmmConfig {
        phase_len_override: Some(11),
        ..Default::default()
    };
    let mut engine = FmmEngine::new(cfg);
    let mut oracle = NaiveEngine::new();
    let mut edges = Vec::new();
    let mut rng = SmallRng::seed_from_u64(19);
    let mut present = HashSet::new();
    for _ in 0..300 {
        let rel = match rng.gen_range(0..3) {
            0 => QRel::A,
            1 => QRel::B,
            _ => QRel::C,
        };
        let l = rng.gen_range(0..10u32);
        let r = rng.gen_range(0..10u32);
        if present.insert((rel, l, r)) {
            edges.push((rel, l, r));
            engine.apply_update(rel, l, r, UpdateOp::Insert);
            oracle.apply_update(rel, l, r, UpdateOp::Insert);
        }
    }
    for &(rel, l, r) in &edges {
        engine.apply_update(rel, l, r, UpdateOp::Delete);
        oracle.apply_update(rel, l, r, UpdateOp::Delete);
    }
    for u in 0..10u32 {
        for v in 0..10u32 {
            assert_eq!(engine.query(u, v), 0, "graph is empty again");
            assert_eq!(oracle.query(u, v), 0);
        }
    }
    assert!(
        engine.rollovers() > 0,
        "the stream must have crossed phase boundaries"
    );
}

#[test]
fn fmm_dense_and_combinatorial_rollover_paths_agree() {
    let cfg_a = FmmConfig {
        phase_len_override: Some(19),
        ..Default::default()
    };
    let cfg_b = FmmConfig {
        use_fmm: true,
        phase_len_override: Some(19),
        ..Default::default()
    };
    let mut a = FmmEngine::new(cfg_a);
    let mut b = FmmEngine::new(cfg_b);
    let mut stream = LayeredStream::new(20, (8, 10, 10, 8), 0.3, 0.5);
    for step in 0..600 {
        let (rel, l, r, op) = stream.next();
        a.apply_update(rel, l, r, op);
        b.apply_update(rel, l, r, op);
        if step % 13 == 0 {
            for u in 0..5u32 {
                for v in 0..5u32 {
                    assert_eq!(a.query(u, v), b.query(u, v), "step {step}, query ({u},{v})");
                }
            }
        }
    }
    assert!(b.rollovers() > 0);
}

#[test]
fn layered_counter_matches_brute_force_for_all_engines() {
    for kind in [
        EngineKind::Simple,
        EngineKind::Threshold,
        EngineKind::Fmm,
        EngineKind::FmmDense,
    ] {
        let mut counter = LayeredCycleCounter::new(kind);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut present: HashSet<(Rel, u32, u32)> = HashSet::new();
        for step in 0..500 {
            let rel = Rel::ALL[rng.gen_range(0..4)];
            let l = rng.gen_range(0..8u32);
            let r = rng.gen_range(0..8u32);
            let key = (rel, l, r);
            let update = if present.contains(&key) && rng.gen_bool(0.35) {
                present.remove(&key);
                LayeredUpdate::delete(rel, l, r)
            } else if !present.contains(&key) {
                present.insert(key);
                LayeredUpdate::insert(rel, l, r)
            } else {
                continue;
            };
            counter.apply(update).expect("well-formed update");
            if step % 25 == 0 {
                assert_eq!(
                    counter.count(),
                    counter.graph().count_layered_4cycles_brute_force(),
                    "engine {} at step {step}",
                    kind.name()
                );
            }
        }
        assert_eq!(
            counter.count(),
            counter.graph().count_layered_4cycles_brute_force()
        );
    }
}

#[test]
fn general_counter_matches_brute_force_for_all_engines() {
    for kind in [EngineKind::Simple, EngineKind::Threshold, EngineKind::Fmm] {
        let mut counter = FourCycleCounter::new(kind);
        let mut rng = SmallRng::seed_from_u64(22);
        let mut present: HashSet<(u32, u32)> = HashSet::new();
        for step in 0..260 {
            let mut u = rng.gen_range(0..12u32);
            let mut v = rng.gen_range(0..12u32);
            if u == v {
                continue;
            }
            if u > v {
                std::mem::swap(&mut u, &mut v);
            }
            let update = if present.contains(&(u, v)) && rng.gen_bool(0.35) {
                present.remove(&(u, v));
                GraphUpdate::delete(u, v)
            } else if !present.contains(&(u, v)) {
                present.insert((u, v));
                GraphUpdate::insert(u, v)
            } else {
                continue;
            };
            counter.apply(update).expect("well-formed update");
            if step % 20 == 0 {
                assert_eq!(
                    counter.count(),
                    counter.graph().count_4cycles_brute_force(),
                    "engine {} at step {step}",
                    kind.name()
                );
            }
        }
        assert_eq!(counter.count(), counter.graph().count_4cycles_brute_force());
    }
}

/// Streams with very few `L1`/`L4` vertices and strong hubs: this is what
/// pushes vertices above the `m^{2/3−ε}` High/Dense thresholds, exercising
/// the Eq 14/15 structures, the old-phase dense products and the High–High /
/// Low–Low query cases. The test asserts that the classes were actually
/// populated, so it cannot silently degrade into a Low/Tiny-only run.
#[test]
fn fmm_engine_matches_oracle_with_high_and_dense_vertices() {
    let cfg = FmmConfig {
        phase_len_override: Some(37),
        ..Default::default()
    };
    let mut engine = FmmEngine::new(cfg);
    let mut oracle = NaiveEngine::new();
    let mut stream = LayeredStream::new(23, (4, 60, 60, 4), 0.25, 0.7);
    for step in 0..1500 {
        let (rel, l, r, op) = stream.next();
        engine.apply_update(rel, l, r, op);
        oracle.apply_update(rel, l, r, op);
        if step % 23 == 0 || step == 1499 {
            for u in 0..4u32 {
                for v in 0..4u32 {
                    assert_eq!(
                        engine.query(u, v),
                        oracle.query(u, v),
                        "step {step} query ({u},{v})"
                    );
                }
            }
            // Also query across a spread of L4 vertices (mixed classes).
            for v in [0u32, 1, 5, 17] {
                assert_eq!(
                    engine.query(0, v),
                    oracle.query(0, v),
                    "step {step} query (0,{v})"
                );
            }
        }
    }
    let (state, _) = engine.debug_state();
    assert!(
        !state.high_l1.is_empty(),
        "stream must create High L1 vertices"
    );
    assert!(
        !state.high_l4.is_empty(),
        "stream must create High L4 vertices"
    );
    assert!(
        !state.dense_l2.is_empty(),
        "stream must create Dense L2 vertices"
    );
    assert!(
        !state.dense_l3.is_empty(),
        "stream must create Dense L3 vertices"
    );
    assert!(engine.rollovers() > 0);
}

/// Same skewed regime with the dense (matrix-product) rollover path.
#[test]
fn fmm_dense_rollover_matches_oracle_with_high_and_dense_vertices() {
    let cfg = FmmConfig {
        use_fmm: true,
        phase_len_override: Some(41),
        ..Default::default()
    };
    let mut engine = FmmEngine::new(cfg);
    let mut oracle = NaiveEngine::new();
    let mut stream = LayeredStream::new(24, (4, 60, 60, 4), 0.25, 0.7);
    for step in 0..1500 {
        let (rel, l, r, op) = stream.next();
        engine.apply_update(rel, l, r, op);
        oracle.apply_update(rel, l, r, op);
        if step % 29 == 0 || step == 1499 {
            for u in 0..4u32 {
                for v in 0..4u32 {
                    assert_eq!(
                        engine.query(u, v),
                        oracle.query(u, v),
                        "step {step} query ({u},{v})"
                    );
                }
            }
        }
    }
    let (state, _) = engine.debug_state();
    assert!(!state.high_l1.is_empty() && !state.dense_l2.is_empty());
    assert!(engine.rollovers() > 0);
}

/// Threshold baseline in the same skewed regime (heavy vertices present).
#[test]
fn threshold_engine_matches_oracle_with_heavy_vertices() {
    run_differential(
        Box::new(ThresholdEngine::new()),
        25,
        (4, 60, 60, 4),
        1200,
        19,
        0.25,
        0.7,
    );
}
