//! Fixed-bucket log-linear latency histogram.
//!
//! The layout is the classic log-linear ("HDR-lite") scheme: values below
//! 16 get one exact bucket each; every octave above that is split into 8
//! sub-buckets, bounding the relative error of any recorded value by
//! 1/8 = 12.5% while keeping the bucket count fixed and small. With 64-bit
//! values that is `16 + 60 * 8 = 496` buckets — about 4 KiB of counters per
//! histogram, cheap enough to keep one per shard per pipeline stage.
//!
//! Recording is a single relaxed atomic increment per sample (plus a
//! saturating sum and a `fetch_max`): no locks, no allocation, safe to call
//! from every shard worker concurrently. Reads go through
//! [`Histogram::snapshot`], which copies the counters into a plain
//! [`HistogramSnapshot`] for merging and percentile queries.
//!
//! Percentiles use the nearest-rank rule (see [`nearest_rank`]) — the same
//! rule the bench harness's `LatencySummary` applies to exact samples — and
//! report the *floor* of the bucket holding the ranked sample, so a
//! reported percentile is always a value less than or equal to an actually
//! observed sample, never an interpolated fiction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 16 exact buckets for values `0..16`, then 8
/// sub-buckets for each of the 60 octaves `[16, 2^64)`.
pub const BUCKETS: usize = 496;

/// Sub-buckets per octave above the exact range.
const SUB_BUCKETS: u64 = 8;

/// Maps a value to its bucket index. Values below 16 map exactly
/// (`bucket_index(v) == v`); larger values land in the sub-bucket of their
/// octave given by the 3 bits below the leading bit.
// lint: results are < BUCKETS = 496, which fits every usize width
#[allow(clippy::cast_possible_truncation)]
pub fn bucket_index(value: u64) -> usize {
    if value < 16 {
        // lint: allow(no-as-cast) value < 16 fits every usize width
        return value as usize;
    }
    let exp = 63 - u64::from(value.leading_zeros()); // >= 4
    let sub = (value >> (exp - 3)) & (SUB_BUCKETS - 1);
    // lint: allow(no-as-cast) result < BUCKETS = 496, fits every usize width
    (16 + (exp - 4) * SUB_BUCKETS + sub) as usize
}

/// Lowest value that maps to bucket `index` — the inverse of
/// [`bucket_index`] on bucket boundaries. Percentile queries report this
/// floor, so results round *down* to an observed magnitude.
pub fn bucket_floor(index: usize) -> u64 {
    debug_assert!(index < BUCKETS);
    if index < 16 {
        return u64::try_from(index).unwrap_or(u64::MAX);
    }
    let index = u64::try_from(index).unwrap_or(u64::MAX);
    let exp = 4 + (index - 16) / SUB_BUCKETS;
    let sub = (index - 16) % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << (exp - 3)
}

/// Largest value that maps to bucket `index` (inclusive upper bound, as a
/// Prometheus `le` label wants it).
pub fn bucket_ceil(index: usize) -> u64 {
    if index + 1 < BUCKETS {
        bucket_floor(index + 1) - 1
    } else {
        u64::MAX
    }
}

/// Nearest-rank selection: the 1-based rank of the `q`-quantile among
/// `count` sorted samples, `⌈q·count⌉` clamped to `[1, count]`. Returns 0
/// when `count` is 0 (no sample to pick).
///
/// This is the single percentile rule in the workspace: the bench
/// harness's `LatencySummary` applies it to exact `f64` samples, and
/// [`HistogramSnapshot::percentile`] applies it to bucket counts, so both
/// report the same observed sample on shared fixtures.
// lint: f64 rank math; >2^53 counts clamp to [1, count] below
#[allow(clippy::cast_possible_truncation)]
pub fn nearest_rank(count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    // lint: allow(no-as-cast) f64 rank math; >2^53 counts clamp to [1, count]
    let rank = (q * count as f64).ceil() as u64;
    rank.clamp(1, count)
}

/// Saturating add on an atomic counter: sticks at `u64::MAX` instead of
/// wrapping. Mirrors the runtime's `ShardMetrics` discipline.
fn saturating_fetch_add(cell: &AtomicU64, delta: u64) {
    if delta == 0 {
        return;
    }
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(delta))
    });
}

/// Concurrent fixed-bucket histogram. `Histogram::default()` is empty;
/// recording never blocks and never allocates.
///
/// The sample count is *derived* from the bucket counters (their sum), so
/// a snapshot's `count()` always equals the sum of its buckets even when
/// taken mid-record; only `sum`/`max` can trail by in-flight samples.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            // lint: allow(no-panic) Vec of length BUCKETS always converts
            .unwrap_or_else(|_| unreachable!("fixed-size bucket vector"));
        Self {
            buckets,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. One relaxed increment, one saturating add, one
    /// `fetch_max` — no locks.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, value);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records `n` samples of `total / n` each — the smear used for stage
    /// boundaries measured once per group: every slot still contributes
    /// exactly one sample, keeping stage counts equal to command counts.
    /// No-op when `n` is 0.
    pub fn record_each(&self, total: u64, n: u64) {
        if n == 0 {
            return;
        }
        let each = total / n;
        self.buckets[bucket_index(each)].fetch_add(n, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, each.saturating_mul(n));
        self.max.fetch_max(each, Ordering::Relaxed);
    }

    /// Copies the counters into an immutable snapshot for merging and
    /// percentile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("sum", &snap.sum)
            .field("max", &snap.max)
            .finish()
    }
}

/// Immutable copy of a [`Histogram`]'s counters. Cheap to merge and query;
/// all derived statistics are integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Saturating sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed). 0 when empty.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (all counters zero) — the identity for
    /// [`merge`](Self::merge).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total number of recorded samples: the sum of the bucket counters
    /// (saturating).
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Integer mean (`sum / count`), 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Folds another snapshot into this one: bucket-wise saturating adds,
    /// saturating sum, max of maxes. Merging per-shard snapshots is exactly
    /// equivalent to having recorded all samples into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`), reported as the floor of
    /// the bucket holding the ranked sample. Returns 0 when empty. For the
    /// overall maximum prefer [`max`](Self::max), which is exact.
    pub fn percentile(&self, q: f64) -> u64 {
        let rank = nearest_rank(self.count(), q);
        if rank == 0 {
            return 0;
        }
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_floor(index);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile shorthand.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bucket mapping is total, monotone, and exact below 16; floors are
    /// the true inverse on bucket boundaries.
    #[test]
    fn bucket_index_and_floor_agree_on_boundaries() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
        for index in 0..BUCKETS {
            let floor = bucket_floor(index);
            assert_eq!(bucket_index(floor), index, "floor of bucket {index}");
            let ceil = bucket_ceil(index);
            assert_eq!(bucket_index(ceil), index, "ceil of bucket {index}");
            if index + 1 < BUCKETS {
                assert!(bucket_floor(index + 1) > floor, "floors monotone");
                assert_eq!(bucket_index(ceil + 1), index + 1, "ceil+1 next bucket");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    /// Any value's bucket floor is within 12.5% below the value.
    #[test]
    fn relative_error_is_bounded() {
        for &v in &[16u64, 17, 100, 1_000, 12_345, 1 << 20, u64::MAX / 3] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v);
            // floor > v - v/8  <=>  error < 12.5%
            assert!(floor >= v - v / 8, "floor {floor} too far below {v}");
        }
    }

    /// Empty histogram: all statistics are zero, percentiles included.
    #[test]
    fn empty_histogram_reports_zeroes() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(
            (snap.count(), snap.sum, snap.max, snap.mean()),
            (0, 0, 0, 0)
        );
        assert_eq!((snap.p50(), snap.p90(), snap.p99()), (0, 0, 0));
        assert_eq!(snap, HistogramSnapshot::empty());
    }

    /// A single sample is every percentile (nearest-rank picks it at any
    /// quantile) and the exact max.
    #[test]
    fn single_sample_dominates_every_percentile() {
        let hist = Histogram::new();
        hist.record(700);
        let snap = hist.snapshot();
        assert_eq!((snap.count(), snap.sum, snap.max), (1, 700, 700));
        let floor = bucket_floor(bucket_index(700));
        assert_eq!(snap.percentile(0.0), floor);
        assert_eq!(snap.p50(), floor);
        assert_eq!(snap.p99(), floor);
        assert_eq!(snap.percentile(1.0), floor);
    }

    /// `u64::MAX` lands in the last bucket without overflow; sum saturates
    /// instead of wrapping.
    #[test]
    fn extreme_values_saturate() {
        let hist = Histogram::new();
        hist.record(u64::MAX);
        hist.record(u64::MAX);
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.sum, u64::MAX, "sum saturates");
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.buckets[BUCKETS - 1], 2);
        assert_eq!(snap.p99(), bucket_floor(BUCKETS - 1));
    }

    /// Merging snapshots of disjoint ranges equals recording all samples
    /// into one histogram — counts, sums, maxes, and every percentile.
    #[test]
    fn merge_of_disjoint_ranges_matches_combined_recording() {
        let low = Histogram::new();
        let high = Histogram::new();
        let combined = Histogram::new();
        for v in 0..200u64 {
            low.record(v);
            combined.record(v);
        }
        for v in (10_000..10_200u64).map(|v| v * 7) {
            high.record(v);
            combined.record(v);
        }
        let mut merged = low.snapshot();
        merged.merge(&high.snapshot());
        assert_eq!(merged, combined.snapshot());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.percentile(q), combined.snapshot().percentile(q));
        }
    }

    /// Nearest-rank on tiny windows: with two samples the median is the
    /// lower one — pinned to match `LatencySummary`'s rule.
    #[test]
    fn nearest_rank_matches_latency_summary_rule() {
        assert_eq!(nearest_rank(0, 0.5), 0);
        assert_eq!(nearest_rank(1, 0.5), 1);
        assert_eq!(nearest_rank(2, 0.5), 1); // p50 of 2 = lower sample
        assert_eq!(nearest_rank(2, 0.9), 2);
        assert_eq!(nearest_rank(100, 0.99), 99);
        assert_eq!(nearest_rank(100, 1.0), 100);
        assert_eq!(nearest_rank(100, 0.0), 1);
    }

    /// `record_each` smears a group total into n equal samples: count rises
    /// by n, every sample is total/n.
    #[test]
    fn record_each_keeps_counts_equal_to_slots() {
        let hist = Histogram::new();
        hist.record_each(1_000, 4);
        hist.record_each(0, 3);
        hist.record_each(50, 0); // no-op
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 7);
        assert_eq!(snap.sum, 1_000);
        assert_eq!(snap.max, 250);
        assert_eq!(snap.buckets[bucket_index(250)], 4);
        assert_eq!(snap.buckets[0], 3);
    }

    /// Percentiles walk cumulative bucket counts correctly across a known
    /// distribution.
    #[test]
    fn percentiles_walk_buckets_in_order() {
        let hist = Histogram::new();
        for _ in 0..90 {
            hist.record(10);
        }
        for _ in 0..9 {
            hist.record(1_000);
        }
        hist.record(100_000);
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.p50(), 10);
        assert_eq!(snap.p90(), 10); // rank 90 is the last of the 10s
        assert_eq!(snap.p99(), bucket_floor(bucket_index(1_000)));
        assert_eq!(snap.percentile(1.0), bucket_floor(bucket_index(100_000)));
        assert_eq!(snap.max, 100_000);
    }
}
