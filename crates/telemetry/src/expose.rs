//! Rendering a [`TelemetrySnapshot`] for the outside world.
//!
//! Two dialects, matching the server's existing `stats` conventions:
//!
//! - **Prometheus-style text** ([`render_prometheus`]): `# HELP`/`# TYPE`
//!   comments, one cumulative-histogram series per (stage, shard) with
//!   `le` labels at occupied bucket boundaries plus `+Inf`, and plain
//!   counters/gauges. Every sample value is an integer.
//! - **All-integer JSON** ([`render_json`], [`render_events_json`]): the
//!   workspace's machine-diffing dialect — no floats, parseable by the
//!   in-tree `fourcycle_store::json` reader.
//!
//! [`validate_prometheus`] is a lightweight checker used by tests and the
//! CI telemetry-smoke step: it verifies line shapes, label syntax, and
//! that each histogram series is cumulative with a matching `_count`.

use crate::hist::{bucket_ceil, BUCKETS};
use crate::ring::Event;
use crate::{Stage, TelemetrySnapshot};

/// Metric name of the per-stage latency histogram family.
pub const STAGE_METRIC: &str = "fourcycle_stage_latency_nanos";

/// Renders the Prometheus-style text exposition.
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# HELP {STAGE_METRIC} Per-stage request latency in nanoseconds\n"
    ));
    out.push_str(&format!("# TYPE {STAGE_METRIC} histogram\n"));
    for (shard, stages) in snapshot.shards.iter().enumerate() {
        for stage in Stage::ALL {
            let hist = &stages[stage.index()];
            let labels = format!("stage=\"{}\",shard=\"{shard}\"", stage.name());
            let mut cumulative = 0u64;
            for (index, &n) in hist.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative = cumulative.saturating_add(n);
                // The last bucket's ceiling is u64::MAX; fold it into +Inf.
                if index + 1 < BUCKETS {
                    out.push_str(&format!(
                        "{STAGE_METRIC}_bucket{{{labels},le=\"{}\"}} {cumulative}\n",
                        bucket_ceil(index)
                    ));
                }
            }
            let count = hist.count();
            out.push_str(&format!(
                "{STAGE_METRIC}_bucket{{{labels},le=\"+Inf\"}} {count}\n"
            ));
            out.push_str(&format!("{STAGE_METRIC}_sum{{{labels}}} {}\n", hist.sum));
            out.push_str(&format!("{STAGE_METRIC}_count{{{labels}}} {count}\n"));
        }
    }
    for (help, name, value) in [
        (
            "Total events emitted into the ring",
            "fourcycle_events_emitted_total",
            snapshot.events_emitted,
        ),
        (
            "Events dropped due to emit-side contention",
            "fourcycle_events_dropped_total",
            snapshot.events_dropped,
        ),
    ] {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        out.push_str(&format!("{name} {value}\n"));
    }
    out.push_str("# HELP fourcycle_events_buffered Events currently buffered in the ring\n");
    out.push_str("# TYPE fourcycle_events_buffered gauge\n");
    out.push_str(&format!(
        "fourcycle_events_buffered {}\n",
        snapshot.events_buffered
    ));
    if !snapshot.counters.is_empty() {
        out.push_str("# HELP fourcycle_counter_total Named registry counters\n");
        out.push_str("# TYPE fourcycle_counter_total counter\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!(
                "fourcycle_counter_total{{name=\"{}\"}} {value}\n",
                sanitize_label(name)
            ));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("# HELP fourcycle_gauge Named registry gauges\n");
        out.push_str("# TYPE fourcycle_gauge gauge\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!(
                "fourcycle_gauge{{name=\"{}\"}} {value}\n",
                sanitize_label(name)
            ));
        }
    }
    out
}

/// Renders the all-integer JSON document: one object per (shard, stage)
/// with count/sum/max/mean and nearest-rank p50/p90/p99, plus counters,
/// gauges, and ring statistics.
pub fn render_json(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::from("{\n  \"stages\": [\n");
    let mut first = true;
    for (shard, stages) in snapshot.shards.iter().enumerate() {
        for stage in Stage::ALL {
            let hist = &stages[stage.index()];
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"shard\": {shard}, \"stage\": \"{}\", \"count\": {}, \"sum\": {}, \
                 \"max\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                stage.name(),
                hist.count(),
                hist.sum,
                hist.max,
                hist.mean(),
                hist.p50(),
                hist.p90(),
                hist.p99(),
            ));
        }
    }
    out.push_str("\n  ],\n");
    for (key, entries) in [
        ("counters", &snapshot.counters),
        ("gauges", &snapshot.gauges),
    ] {
        out.push_str(&format!("  \"{key}\": {{"));
        for (i, (name, value)) in entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {value}", sanitize_label(name)));
        }
        out.push_str("},\n");
    }
    out.push_str(&format!(
        "  \"events\": {{\"emitted\": {}, \"dropped\": {}, \"buffered\": {}}}\n}}",
        snapshot.events_emitted, snapshot.events_dropped, snapshot.events_buffered
    ));
    out
}

/// Renders drained ring events as an all-integer JSON document:
/// `{"events": [...]}` with one object per event, oldest first.
pub fn render_events_json(events: &[Event]) -> String {
    let mut out = String::from("{\n  \"events\": [\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"seq\": {}, \"at_nanos\": {}, \"shard\": {}, \"kind\": \"{}\", \
             \"a\": {}, \"b\": {}}}",
            event.seq,
            event.at_nanos,
            event.shard,
            event.kind.name(),
            event.a,
            event.b
        ));
    }
    out.push_str("\n  ]\n}");
    out
}

/// Keeps label values inside the safe `[a-z A-Z 0-9 _]` alphabet so the
/// exposition never needs escaping.
fn sanitize_label(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Validates a Prometheus-style exposition: every line is a comment or a
/// `name{labels} integer` / `name integer` sample, `_bucket` series are
/// cumulative (non-decreasing within a series) and closed by a matching
/// `_count`. Returns the first problem found.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut series: Option<(String, u64)> = None; // (bucket series key, last cumulative)
    let mut inf_seen: Option<(String, u64)> = None; // (series key, +Inf value)
    for (number, line) in text.lines().enumerate() {
        let describe = |msg: &str| format!("line {}: {msg}: {line}", number + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| describe("no sample value"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| describe("sample value is not an unsigned integer"))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| describe("unterminated label set"))?;
                for pair in labels.split(',') {
                    let (_, label_value) = pair
                        .split_once('=')
                        .ok_or_else(|| describe("label without '='"))?;
                    if !(label_value.starts_with('"') && label_value.ends_with('"')) {
                        return Err(describe("unquoted label value"));
                    }
                }
                (name, labels)
            }
            None => (name_and_labels, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(describe("bad metric name"));
        }
        if name.ends_with("_bucket") {
            let key = format!(
                "{name}{{{}}}",
                labels
                    .split(',')
                    .filter(|pair| !pair.starts_with("le="))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            if let Some((ref prev_key, prev)) = series {
                if *prev_key == key && value < prev {
                    return Err(describe("bucket series not cumulative"));
                }
            }
            series = Some((key.clone(), value));
            if labels.split(',').any(|pair| pair == "le=\"+Inf\"") {
                inf_seen = Some((key, value));
            }
        } else if name.ends_with("_count") {
            if let Some((_, inf)) = inf_seen.take() {
                if value != inf {
                    return Err(describe("_count disagrees with +Inf bucket"));
                }
            }
            series = None;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;
    use crate::{Telemetry, TelemetryConfig};

    fn sample_snapshot() -> TelemetrySnapshot {
        let tel = Telemetry::new(TelemetryConfig::enabled(), 2);
        for v in [3u64, 100, 5_000, 250_000] {
            tel.stage(0, Stage::Apply).record(v);
        }
        tel.stage(1, Stage::QueueWait).record_each(1_000, 4);
        tel.registry().counter("loadgen_requests").add(8);
        tel.registry().gauge("mailbox_depth").set(64);
        tel.ring().emit(0, EventKind::GroupCommit, 4, 900);
        tel.snapshot()
    }

    /// The exposition passes its own validator and carries the stage
    /// series with correct counts.
    #[test]
    fn prometheus_rendering_validates_and_counts() {
        let snapshot = sample_snapshot();
        let text = snapshot.render_prometheus();
        validate_prometheus(&text).unwrap();
        assert!(text.contains("fourcycle_stage_latency_nanos_count{stage=\"apply\",shard=\"0\"} 4"));
        assert!(text
            .contains("fourcycle_stage_latency_nanos_count{stage=\"queue_wait\",shard=\"1\"} 4"));
        assert!(text.contains("le=\"+Inf\"} 4"));
        assert!(text.contains("fourcycle_counter_total{name=\"loadgen_requests\"} 8"));
        assert!(text.contains("fourcycle_gauge{name=\"mailbox_depth\"} 64"));
        assert!(text.contains("fourcycle_events_emitted_total 1"));
    }

    /// The validator actually rejects malformed expositions.
    #[test]
    fn validator_rejects_bad_lines() {
        assert!(validate_prometheus("metric_name 1.5").is_err());
        assert!(validate_prometheus("metric{le=\"10\" 3").is_err());
        assert!(validate_prometheus("met ric 3").is_err());
        let shrinking = "m_bucket{stage=\"a\",le=\"10\"} 5\nm_bucket{stage=\"a\",le=\"20\"} 3\n";
        assert!(validate_prometheus(shrinking).is_err());
        let mismatched = "m_bucket{le=\"+Inf\"} 5\nm_count 4\n";
        assert!(validate_prometheus(mismatched).is_err());
        assert!(validate_prometheus("# comment only\n").is_ok());
    }

    /// The JSON document is all-integer (no '.', no floats) and contains
    /// a row per (shard, stage).
    #[test]
    fn json_rendering_is_all_integer() {
        let snapshot = sample_snapshot();
        let json = snapshot.render_json();
        assert!(!json.contains('.'), "floats leaked into JSON: {json}");
        let rows = json.matches("\"stage\": ").count();
        assert_eq!(rows, 2 * Stage::COUNT);
        assert!(json.contains("\"loadgen_requests\": 8"));
        assert!(json.contains("\"emitted\": 1"));
    }

    /// Drained events render with their kind names and payloads.
    #[test]
    fn events_render_to_json() {
        let tel = Telemetry::new(TelemetryConfig::enabled(), 1);
        tel.ring().emit(0, EventKind::ChaosFault, 1, 0);
        tel.ring().emit(crate::NO_SHARD, EventKind::ConnOpen, 7, 0);
        let events = tel.ring().drain();
        let json = render_events_json(&events);
        assert!(json.contains("\"kind\": \"chaos_fault\""));
        assert!(json.contains("\"kind\": \"conn_open\""));
        assert!(json.contains(&format!("\"shard\": {}", u32::MAX)));
        assert!(!json.contains('.'));
        assert_eq!(render_events_json(&[]), "{\n  \"events\": [\n\n  ]\n}");
    }
}
