//! Bounded structured event ring.
//!
//! Shard workers, the journal, the chaos layer, and the server connection
//! loop all emit small fixed-size [`Event`] records into one shared ring.
//! Two properties matter on the hot path:
//!
//! - **Emitting never blocks.** The buffer is guarded by a mutex, but
//!   writers only ever `try_lock` it: if a drainer (or another writer)
//!   holds the lock, the event is counted as dropped and the worker moves
//!   on. A shard worker can never stall behind an observer.
//! - **The ring is bounded.** When full, the oldest event is overwritten;
//!   memory use is fixed at construction.
//!
//! Sequence numbers come from a dedicated atomic, so gaps in drained
//! output reveal both overwrites and contention drops. Timestamps are
//! nanoseconds of monotonic time since the ring was created — comparable
//! within one process, deliberately not wall-clock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// `shard` value for events that are not tied to any shard (connection
/// lifecycle on the server's accept loop).
pub const NO_SHARD: u32 = u32::MAX;

/// Payload codes for [`EventKind::RecoveryPhase`] events (the `a` field).
/// `b` carries the number of WAL commands replayed in that phase (for
/// [`TORN_TAIL_TRUNCATED`](recovery_phase::TORN_TAIL_TRUNCATED): the
/// truncated byte count).
pub mod recovery_phase {
    /// A checkpoint image was loaded and the WAL tail replayed on top.
    pub const CHECKPOINT_TAIL: u64 = 0;
    /// No usable checkpoint: the full WAL was replayed from scratch.
    pub const FULL_REPLAY: u64 = 1;
    /// The WAL was behind its checkpoint (crash between checkpoint fsync
    /// and WAL truncation); the checkpoint alone is authoritative.
    pub const WAL_BEHIND_CHECKPOINT: u64 = 2;
    /// A torn final WAL line was truncated away before resuming appends.
    pub const TORN_TAIL_TRUNCATED: u64 = 3;
}

/// Payload codes for [`EventKind::ChaosFault`] events (the `a` field):
/// which journal operation the injected fault fired on. `b` is 1 for a
/// torn (partial) write, 0 for a clean error.
pub mod chaos_op {
    /// Fault fired on a WAL append.
    pub const APPEND: u64 = 0;
    /// Fault fired on an fsync point (sync or group commit).
    pub const FSYNC: u64 = 1;
    /// Fault fired on a checkpoint write.
    pub const CHECKPOINT: u64 = 2;
}

/// What happened. Payload field meaning (`a`, `b`) is per-kind and
/// documented on each variant; all payloads are plain integers so events
/// render into the all-integer JSON dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A request's end-to-end latency exceeded the configured threshold.
    /// `a` = total nanoseconds, `b` = threshold nanoseconds.
    SlowRequest,
    /// A journal group commit fsynced. `a` = appends covered by the fsync,
    /// `b` = fsync duration in nanoseconds.
    GroupCommit,
    /// A checkpoint image was written. `a` = sessions imaged, `b` = write
    /// duration in nanoseconds.
    CheckpointWrite,
    /// A recovery phase ran while opening a shard. `a` = phase code (see
    /// [`recovery_phase`]), `b` = WAL commands replayed.
    RecoveryPhase,
    /// An injected chaos fault fired. `a` = operation code (see
    /// [`chaos_op`]), `b` = 1 if the fault was a torn write, else 0.
    ChaosFault,
    /// A server connection was accepted. `a` = connection id.
    ConnOpen,
    /// A server connection finished. `a` = connection id.
    ConnClose,
}

impl EventKind {
    /// All kinds, in declaration order — for exhaustive rendering/tests.
    pub const ALL: [EventKind; 7] = [
        EventKind::SlowRequest,
        EventKind::GroupCommit,
        EventKind::CheckpointWrite,
        EventKind::RecoveryPhase,
        EventKind::ChaosFault,
        EventKind::ConnOpen,
        EventKind::ConnClose,
    ];

    /// Stable snake_case name used in JSON rendering.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SlowRequest => "slow_request",
            EventKind::GroupCommit => "group_commit",
            EventKind::CheckpointWrite => "checkpoint_write",
            EventKind::RecoveryPhase => "recovery_phase",
            EventKind::ChaosFault => "chaos_fault",
            EventKind::ConnOpen => "conn_open",
            EventKind::ConnClose => "conn_close",
        }
    }
}

/// One ring entry: fixed-size, all-integer, self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (1-based, gap-free at emission; gaps in a
    /// drain mean overwritten or dropped events).
    pub seq: u64,
    /// Monotonic nanoseconds since the ring was created.
    pub at_nanos: u64,
    /// Originating shard, or [`NO_SHARD`].
    pub shard: u32,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (per-kind meaning, see [`EventKind`]).
    pub a: u64,
    /// Second payload word (per-kind meaning, see [`EventKind`]).
    pub b: u64,
}

struct RingInner {
    capacity: usize,
    started: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<VecDeque<Event>>,
}

/// Shared handle to the bounded event ring. Cloning shares the same
/// buffer; equality is identity (two handles are equal iff they are the
/// same ring), matching the `FaultPlan` convention so configs carrying a
/// ring stay `PartialEq`.
#[derive(Clone)]
pub struct EventRing {
    inner: Arc<RingInner>,
}

impl PartialEq for EventRing {
    /// Identity comparison: a config carries *this* ring, not an equal one.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.inner.capacity)
            .field("emitted", &self.emitted())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Arc::new(RingInner {
                capacity,
                started: Instant::now(),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                buf: Mutex::new(VecDeque::with_capacity(capacity)),
            }),
        }
    }

    /// Emits an event. Never blocks: if the buffer lock is contended the
    /// event is dropped (and counted); if the ring is full the oldest
    /// event is overwritten. Always assigns a sequence number.
    pub fn emit(&self, shard: u32, kind: EventKind, a: u64, b: u64) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = Event {
            seq,
            at_nanos: clamped_nanos(self.inner.started.elapsed()),
            shard,
            kind,
            a,
            b,
        };
        match self.inner.buf.try_lock() {
            Ok(mut buf) => {
                if buf.len() == self.inner.capacity {
                    buf.pop_front();
                }
                buf.push_back(event);
            }
            Err(_) => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns all buffered events, oldest first. Blocks only
    /// the drainer (writers that race a drain drop their event rather than
    /// wait), so live traffic keeps flowing while an observer drains.
    pub fn drain(&self) -> Vec<Event> {
        match self.inner.buf.lock() {
            Ok(mut buf) => buf.drain(..).collect(),
            Err(poisoned) => poisoned.into_inner().drain(..).collect(),
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        match self.inner.buf.lock() {
            Ok(buf) => buf.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of buffered events.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Total events ever emitted (including overwritten and dropped ones).
    pub fn emitted(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Events dropped because a writer found the buffer lock contended.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

fn clamped_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequence numbers are 1-based and strictly increasing; payloads and
    /// kinds round-trip through the buffer.
    #[test]
    fn events_carry_seq_kind_and_payload() {
        let ring = EventRing::new(8);
        ring.emit(0, EventKind::GroupCommit, 5, 123);
        ring.emit(1, EventKind::SlowRequest, 1_000, 500);
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(
            (
                events[0].seq,
                events[0].shard,
                events[0].kind,
                events[0].a,
                events[0].b
            ),
            (1, 0, EventKind::GroupCommit, 5, 123)
        );
        assert_eq!(events[1].seq, 2);
        assert!(events[1].at_nanos >= events[0].at_nanos, "monotonic stamps");
        assert!(ring.is_empty(), "drain empties the ring");
        assert_eq!(ring.emitted(), 2);
        assert_eq!(ring.dropped(), 0);
    }

    /// A full ring overwrites its oldest entries: the last `capacity`
    /// events survive, with their original sequence numbers.
    #[test]
    fn full_ring_overwrites_oldest() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.emit(0, EventKind::ConnOpen, i, 0);
        }
        let events = ring.drain();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        assert_eq!(ring.emitted(), 10);
    }

    /// Concurrent emitters and a drainer make progress together; every
    /// emission is accounted for as drained, still-buffered, overwritten,
    /// or dropped — and nothing deadlocks.
    #[test]
    fn concurrent_emit_and_drain_never_block_writers() {
        let ring = EventRing::new(64);
        let writers = 4;
        let per_writer = 2_000u64;
        let mut drained = Vec::new();
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        ring.emit(w, EventKind::SlowRequest, i, 0);
                    }
                });
            }
            for _ in 0..200 {
                drained.extend(ring.drain());
                std::thread::yield_now();
            }
        });
        drained.extend(ring.drain());
        let total = writers as u64 * per_writer;
        assert_eq!(ring.emitted(), total);
        assert!(drained.len() as u64 <= total);
        // Drained sequence numbers are strictly increasing (drains observe
        // a consistent order even with overwrites in between).
        for pair in drained.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    /// Handles compare by identity, not by content.
    #[test]
    fn equality_is_identity() {
        let a = EventRing::new(4);
        let b = EventRing::new(4);
        let a2 = a.clone();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    /// Every kind has a distinct stable name.
    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EventKind::ALL.len());
    }
}
