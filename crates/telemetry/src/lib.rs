//! Telemetry: per-stage latency histograms, named counters/gauges, and a
//! bounded structured event ring (design rationale in ADR-009).
//!
//! This crate is deliberately dependency-free (std only) and sits below
//! every other `fourcycle` crate so that the store, runtime, server, and
//! bench layers can all contribute to one registry:
//!
//! - [`hist::Histogram`] — fixed-bucket log-linear latency histogram,
//!   lock-free on the record path, with nearest-rank percentiles shared
//!   with the bench harness via [`hist::nearest_rank`].
//! - [`Stage`] — the six pipeline stages a request passes through; the
//!   runtime records one sample per stage per delivered command, so every
//!   stage histogram's count equals the `commands` counter exactly.
//! - [`ring::EventRing`] — bounded, overwrite-oldest, never blocks a
//!   writer; captures slow requests, group commits, checkpoint writes,
//!   recovery phases, chaos fault injections, and connection lifecycle.
//! - [`expose`] — Prometheus-style text exposition and the workspace's
//!   all-integer JSON dialect, both rendered from a [`TelemetrySnapshot`].
//!
//! The whole subsystem is gated by [`TelemetryConfig`]: when disabled the
//! runtime holds no `Telemetry` at all and the hot path pays a single
//! branch per request (an `Option` check on submit and one per group in
//! the shard worker).

// Unit tests keep their unwrap/cast freedoms; the workspace clippy
// lints target only compiled production code (ADR-010).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod expose;
pub mod hist;
pub mod ring;

pub use hist::{nearest_rank, Histogram, HistogramSnapshot};
pub use ring::{Event, EventKind, EventRing, NO_SHARD};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The stages a request passes through between arriving at a shard
/// mailbox and its reply being sent. Every delivered command contributes
/// exactly one sample to each stage's histogram (zero-valued where a
/// stage does not apply), so per-stage counts stay equal to the runtime's
/// `commands` counter — a cheap cross-check that no sample is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Time between `submit` enqueueing the job and the shard worker
    /// starting its group (mailbox wait + group-commit hold).
    QueueWait,
    /// Group assembly and partitioning into barrier/segment slots.
    Dispatch,
    /// Engine apply (the service executing the command, journal excluded).
    Apply,
    /// WAL append (record + policy-driven fsync on the append path).
    JournalAppend,
    /// Wait for the group-commit fsync (zero unless group commit holds
    /// replies).
    FsyncWait,
    /// Delivering the response to the caller's ticket.
    Reply,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;

    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::Dispatch,
        Stage::Apply,
        Stage::JournalAppend,
        Stage::FsyncWait,
        Stage::Reply,
    ];

    /// Stable snake_case name used in metric labels and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Dispatch => "dispatch",
            Stage::Apply => "apply",
            Stage::JournalAppend => "journal_append",
            Stage::FsyncWait => "fsync_wait",
            Stage::Reply => "reply",
        }
    }

    /// Dense index in `0..Stage::COUNT`, in pipeline order.
    pub fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::Dispatch => 1,
            Stage::Apply => 2,
            Stage::JournalAppend => 3,
            Stage::FsyncWait => 4,
            Stage::Reply => 5,
        }
    }
}

/// Whether and how to collect telemetry. `Default` is disabled: the
/// runtime then allocates nothing and the hot path pays one branch per
/// request (pinned by the PR 9 bench guard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    enabled: bool,
    slow_request_nanos: u64,
    ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl TelemetryConfig {
    /// Telemetry off: no histograms, no ring, one branch per request.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            slow_request_nanos: 10_000_000,
            ring_capacity: 1024,
        }
    }

    /// Telemetry on with defaults: 10 ms slow-request threshold, 1024
    /// ring slots.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Sets the end-to-end latency above which a request emits a
    /// [`EventKind::SlowRequest`] event.
    pub fn slow_request_threshold(mut self, threshold: Duration) -> Self {
        self.slow_request_nanos = u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX);
        self
    }

    /// Sets the event ring capacity (minimum 1).
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity.max(1);
        self
    }

    /// True when telemetry collection is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The slow-request threshold in nanoseconds.
    pub fn slow_request_nanos(&self) -> u64 {
        self.slow_request_nanos
    }

    /// The event ring capacity.
    pub fn events_capacity(&self) -> usize {
        self.ring_capacity
    }
}

/// Handle to a named monotonic counter. Cloneable; adds are relaxed and
/// saturating.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta`, saturating at `u64::MAX`.
    pub fn add(&self, delta: u64) {
        if delta == 0 {
            return;
        }
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(delta))
            });
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a named gauge (set-to-current-value semantics).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named counters and gauges. Registration takes a lock once per name;
/// the returned handles update lock-free thereafter, so hot paths should
/// register up front and keep the handle.
#[derive(Default, Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

impl Registry {
    /// Returns the counter registered under `name`, creating it at zero on
    /// first use. The same name always yields the same underlying cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Counter(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    /// Returns the gauge registered under `name`, creating it at zero on
    /// first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Gauge(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    fn snapshot_of(map: &Mutex<BTreeMap<String, Arc<AtomicU64>>>) -> Vec<(String, u64)> {
        let map = map.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }
}

/// The live telemetry registry: per-shard stage histograms, named
/// counters/gauges, and the event ring. One instance per runtime; layers
/// share it through an `Arc`.
#[derive(Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    /// `stages[shard][stage.index()]`.
    stages: Vec<Vec<Histogram>>,
    registry: Registry,
    ring: EventRing,
}

impl Telemetry {
    /// Creates a registry for `shards` shards under `config`.
    pub fn new(config: TelemetryConfig, shards: usize) -> Self {
        let stages = (0..shards)
            .map(|_| (0..Stage::COUNT).map(|_| Histogram::new()).collect())
            .collect();
        Self {
            config,
            stages,
            registry: Registry::default(),
            ring: EventRing::new(config.events_capacity()),
        }
    }

    /// The configuration this registry was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Number of shards the registry tracks.
    pub fn shards(&self) -> usize {
        self.stages.len()
    }

    /// The histogram for one stage on one shard.
    pub fn stage(&self, shard: usize, stage: Stage) -> &Histogram {
        &self.stages[shard][stage.index()]
    }

    /// The shared event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The named counter/gauge registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Called once per delivered request with its end-to-end latency:
    /// emits a [`EventKind::SlowRequest`] event when over the threshold.
    pub fn note_request_done(&self, shard: u32, total_nanos: u64) {
        let threshold = self.config.slow_request_nanos();
        if total_nanos > threshold {
            self.ring
                .emit(shard, EventKind::SlowRequest, total_nanos, threshold);
        }
    }

    /// Copies every histogram, counter, and ring statistic into an
    /// immutable [`TelemetrySnapshot`]. Buffered events stay in the ring
    /// (use [`EventRing::drain`] to consume them).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            shards: self
                .stages
                .iter()
                .map(|stages| stages.iter().map(Histogram::snapshot).collect())
                .collect(),
            counters: Registry::snapshot_of(&self.registry.counters),
            gauges: Registry::snapshot_of(&self.registry.gauges),
            events_emitted: self.ring.emitted(),
            events_dropped: self.ring.dropped(),
            events_buffered: u64::try_from(self.ring.len()).unwrap_or(u64::MAX),
        }
    }
}

/// Point-in-time copy of a [`Telemetry`] registry, ready for rendering
/// (see [`expose`]) or cross-shard aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// `shards[shard][stage.index()]` — one histogram per stage per shard.
    pub shards: Vec<Vec<HistogramSnapshot>>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Total events ever emitted into the ring.
    pub events_emitted: u64,
    /// Events dropped due to writer-side lock contention.
    pub events_dropped: u64,
    /// Events buffered in the ring at snapshot time.
    pub events_buffered: u64,
}

impl TelemetrySnapshot {
    /// The histogram for one stage on one shard.
    pub fn stage(&self, shard: usize, stage: Stage) -> &HistogramSnapshot {
        &self.shards[shard][stage.index()]
    }

    /// One stage merged across all shards — equivalent to having recorded
    /// every shard's samples into a single histogram.
    pub fn stage_total(&self, stage: Stage) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::empty();
        for shard in &self.shards {
            total.merge(&shard[stage.index()]);
        }
        total
    }

    /// Value of a named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Prometheus-style text exposition. See [`expose::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        expose::render_prometheus(self)
    }

    /// All-integer JSON document. See [`expose::render_json`].
    pub fn render_json(&self) -> String {
        expose::render_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stage metadata is dense, ordered, and uniquely named.
    #[test]
    fn stage_index_and_names_are_dense() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let names: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stage::COUNT);
    }

    /// Config defaults and builders round-trip.
    #[test]
    fn config_builders_round_trip() {
        assert!(!TelemetryConfig::default().is_enabled());
        let config = TelemetryConfig::enabled()
            .slow_request_threshold(Duration::from_micros(250))
            .ring_capacity(16);
        assert!(config.is_enabled());
        assert_eq!(config.slow_request_nanos(), 250_000);
        assert_eq!(config.events_capacity(), 16);
        assert_eq!(TelemetryConfig::enabled().slow_request_nanos(), 10_000_000);
    }

    /// Counters and gauges: same name, same cell; snapshots sorted.
    #[test]
    fn registry_handles_share_cells() {
        let registry = Registry::default();
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let gauge = registry.gauge("depth");
        gauge.set(7);
        gauge.set(5);
        assert_eq!(gauge.get(), 5);
        let tel = Telemetry::new(TelemetryConfig::enabled(), 1);
        tel.registry().counter("zzz").inc();
        tel.registry().counter("aaa").add(2);
        let snap = tel.snapshot();
        assert_eq!(
            snap.counters,
            vec![("aaa".to_string(), 2), ("zzz".to_string(), 1)]
        );
        assert_eq!(snap.counter("aaa"), Some(2));
        assert_eq!(snap.counter("missing"), None);
    }

    /// Per-shard stage recording aggregates correctly in `stage_total`.
    #[test]
    fn stage_total_merges_across_shards() {
        let tel = Telemetry::new(TelemetryConfig::enabled(), 3);
        tel.stage(0, Stage::Apply).record(100);
        tel.stage(1, Stage::Apply).record(200);
        tel.stage(2, Stage::Apply).record_each(900, 3);
        tel.stage(1, Stage::QueueWait).record(5);
        let snap = tel.snapshot();
        assert_eq!(snap.stage(0, Stage::Apply).count(), 1);
        let total = snap.stage_total(Stage::Apply);
        assert_eq!(total.count(), 5);
        assert_eq!(total.sum, 100 + 200 + 900);
        assert_eq!(snap.stage_total(Stage::QueueWait).count(), 1);
        assert_eq!(snap.stage_total(Stage::Reply).count(), 0);
    }

    /// Slow-request gate: only latencies over the threshold emit events.
    #[test]
    fn slow_requests_emit_only_over_threshold() {
        let config = TelemetryConfig::enabled().slow_request_threshold(Duration::from_nanos(1_000));
        let tel = Telemetry::new(config, 1);
        tel.note_request_done(0, 999);
        tel.note_request_done(0, 1_000);
        assert!(tel.ring().is_empty());
        tel.note_request_done(0, 1_001);
        let events = tel.ring().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::SlowRequest);
        assert_eq!((events[0].a, events[0].b), (1_001, 1_000));
    }
}
