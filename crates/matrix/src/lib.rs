//! Integer matrix arithmetic for the `fourcycle` workspace.
//!
//! The main algorithm of Assadi & Shah (PODS 2025) relies on *fast matrix
//! multiplication* (FMM): during every phase of `m^{1−δ}` updates it must be
//! able to multiply the (sub)matrices of the old phase so that path counts
//! between all relevant vertex pairs are available by the time the phase
//! rolls over (§5.1, Eq 9). This crate is the substrate that plays the role
//! of the FMM library:
//!
//! * [`DenseMatrix`] — row-major `i64` matrices with naive, blocked and
//!   Strassen multiplication ([`MulAlgorithm`]), including rectangular
//!   products (the paper uses `ω(a,b,c)` rectangular bounds in §3).
//! * [`SparseMatrix`] — row-list sparse matrices with sparse–sparse and
//!   sparse–dense products, used for the combinatorial fallback path and for
//!   building class-restricted submatrices out of adjacency lists.
//! * [`CompactIndex`] — a bijection between arbitrary `u32` vertex ids and
//!   dense `0..k` matrix indices, used when extracting the class-restricted
//!   submatrices (`A^{HS}_old`, `B^{DD}_old`, …) of §5.
//! * [`MatMulJob`] — an *incremental* multiplication job that performs a
//!   bounded amount of work per call. The paper spreads each old-phase
//!   product over the updates of the following phase to keep the update time
//!   worst-case rather than amortized; `MatMulJob` is the implementation of
//!   that schedule.
//!
//! Counting semantics: all products are exact integer products. When the
//! operands are (signed) biadjacency matrices, `(A·B)[i][j]` is exactly the
//! signed number of 2-paths from `i` to `j`, which is the quantity every data
//! structure in the paper stores.

// Unit tests keep their unwrap/cast freedoms; the workspace clippy
// lints target only compiled production code (ADR-010).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod compact;
pub mod dense;
pub mod job;
pub mod sparse;

pub use compact::CompactIndex;
pub use dense::{DenseMatrix, MulAlgorithm};
pub use job::{JobStatus, MatMulJob};
pub use sparse::SparseMatrix;
