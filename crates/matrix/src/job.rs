//! Incremental (de-amortized) matrix multiplication.
//!
//! §5.1 of the paper: "A phase should be long enough so that in the time it
//! takes to process all the edge updates in a phase, we are able to multiply
//! two square matrices of dimension `m^{2/3+2ε}`." The algorithm therefore
//! *spreads* the old-phase products over the updates of the next phase — each
//! update performs `O(m^{2/3−ε})` steps of the pending multiplication
//! (Algorithm 2, Step 2). [`MatMulJob`] implements exactly that schedule: it
//! owns the operands, performs a bounded number of scalar
//! multiply–accumulate operations per [`MatMulJob::advance`] call, and hands
//! out the finished product once complete.
//!
//! The production engine (`fourcycle-core::fmm`) can either run the job
//! eagerly at the rollover (amortized accounting) or pump it per update
//! (worst-case accounting); benchmarks compare the two (experiment F3).

use crate::dense::DenseMatrix;

/// Progress state of a [`MatMulJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Work remains; keep calling [`MatMulJob::advance`].
    InProgress,
    /// The product is fully computed and can be taken.
    Done,
}

/// An incrementally evaluated product `A · B`.
#[derive(Debug, Clone)]
pub struct MatMulJob {
    a: DenseMatrix,
    b: DenseMatrix,
    out: DenseMatrix,
    /// Next (row, inner) position to process, in row-major (i, k) order.
    cursor: usize,
    total_steps: usize,
    work_done: u64,
}

impl MatMulJob {
    /// Creates a job computing `a · b`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn new(a: DenseMatrix, b: DenseMatrix) -> Self {
        assert_eq!(a.cols(), b.rows(), "dimension mismatch");
        let out = DenseMatrix::zeros(a.rows(), b.cols());
        let total_steps = a.rows() * a.cols();
        Self {
            a,
            b,
            out,
            cursor: 0,
            total_steps,
            work_done: 0,
        }
    }

    /// Performs up to `budget` scalar multiply–accumulate "units" of work.
    /// One unit is one `(i, k)` pair, i.e. one row-scaled accumulation of
    /// length `b.cols()` (skipped quickly when `a[i][k] == 0`).
    ///
    /// Returns the status after the work.
    pub fn advance(&mut self, budget: usize) -> JobStatus {
        let mut remaining = budget;
        while remaining > 0 && self.cursor < self.total_steps {
            let i = self.cursor / self.a.cols();
            let k = self.cursor % self.a.cols();
            let coeff = self.a.get(i, k);
            if coeff != 0 {
                for c in 0..self.b.cols() {
                    let v = self.b.get(k, c);
                    if v != 0 {
                        self.out.add_entry(i, c, coeff * v);
                    }
                }
                self.work_done += u64::try_from(self.b.cols()).unwrap_or(u64::MAX);
            } else {
                self.work_done += 1;
            }
            self.cursor += 1;
            remaining -= 1;
        }
        self.status()
    }

    /// Runs the job to completion and returns the product.
    pub fn finish(mut self) -> DenseMatrix {
        while self.status() == JobStatus::InProgress {
            self.advance(usize::MAX / 2);
        }
        self.out
    }

    /// Current status.
    pub fn status(&self) -> JobStatus {
        if self.cursor >= self.total_steps {
            JobStatus::Done
        } else {
            JobStatus::InProgress
        }
    }

    /// Fraction of `(i, k)` pairs processed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total_steps == 0 {
            1.0
        } else {
            // lint: allow(no-as-cast) progress ratio; f64 rounding is fine
            self.cursor as f64 / self.total_steps as f64
        }
    }

    /// Total scalar work performed so far (for the work-count experiments).
    pub fn work_done(&self) -> u64 {
        self.work_done
    }

    /// Takes the finished product.
    ///
    /// # Panics
    /// Panics if the job is not [`JobStatus::Done`].
    pub fn into_result(self) -> DenseMatrix {
        assert_eq!(self.status(), JobStatus::Done, "job not finished");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::MulAlgorithm;

    fn sample(rows: usize, cols: usize, seed: i64) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |r, c| ((r * 7 + c * 3) as i64 + seed) % 4 - 1)
    }

    #[test]
    fn incremental_result_matches_direct_product() {
        let a = sample(23, 17, 1);
        let b = sample(17, 29, 2);
        let expected = a.multiply(&b, MulAlgorithm::Naive);

        let mut job = MatMulJob::new(a, b);
        let mut rounds = 0;
        while job.advance(10) == JobStatus::InProgress {
            rounds += 1;
            assert!(rounds < 1_000, "job must terminate");
        }
        assert!(job.progress() >= 1.0);
        assert_eq!(job.into_result(), expected);
    }

    #[test]
    fn finish_runs_to_completion() {
        let a = sample(9, 9, 3);
        let b = sample(9, 9, 4);
        let expected = a.multiply(&b, MulAlgorithm::Naive);
        assert_eq!(MatMulJob::new(a, b).finish(), expected);
    }

    #[test]
    fn empty_job_is_done_immediately() {
        let job = MatMulJob::new(DenseMatrix::zeros(0, 5), DenseMatrix::zeros(5, 3));
        assert_eq!(job.status(), JobStatus::Done);
        assert_eq!(job.progress(), 1.0);
        assert_eq!(job.into_result(), DenseMatrix::zeros(0, 3));
    }

    #[test]
    #[should_panic(expected = "job not finished")]
    fn taking_unfinished_result_panics() {
        let a = sample(8, 8, 5);
        let b = sample(8, 8, 6);
        let mut job = MatMulJob::new(a, b);
        job.advance(1);
        let _ = job.into_result();
    }

    #[test]
    fn work_counter_increases() {
        let a = sample(6, 6, 7);
        let b = sample(6, 6, 8);
        let mut job = MatMulJob::new(a, b);
        job.advance(3);
        let early = job.work_done();
        job.advance(100);
        assert!(job.work_done() > early);
    }
}
