//! Vertex-id ↔ matrix-index compaction.
//!
//! The matrices the main algorithm multiplies at a phase rollover are indexed
//! by *class-restricted vertex sets* ("the High vertices of `L1`", "the Dense
//! vertices of `L3`", …), not by raw vertex ids. The paper repeatedly notes
//! that restricting to non-zero-degree vertices "effectively reduces the
//! dimension for computational purposes" (§3.2); [`CompactIndex`] is that
//! reduction: a bijection between an arbitrary set of `u32` vertex ids and
//! the dense range `0..len`.

use std::collections::HashMap;

/// A bijection between vertex ids and dense matrix indices.
#[derive(Debug, Clone, Default)]
pub struct CompactIndex {
    to_index: HashMap<u32, usize>,
    to_vertex: Vec<u32>,
}

impl CompactIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index over the given vertices (duplicates are collapsed;
    /// insertion order determines indices).
    pub fn from_vertices(vertices: impl IntoIterator<Item = u32>) -> Self {
        let mut index = Self::new();
        for v in vertices {
            index.insert(v);
        }
        index
    }

    /// Inserts a vertex (no-op if already present) and returns its index.
    pub fn insert(&mut self, v: u32) -> usize {
        if let Some(&i) = self.to_index.get(&v) {
            return i;
        }
        let i = self.to_vertex.len();
        self.to_index.insert(v, i);
        self.to_vertex.push(v);
        i
    }

    /// Index of a vertex, if present.
    pub fn index_of(&self, v: u32) -> Option<usize> {
        self.to_index.get(&v).copied()
    }

    /// Vertex at a dense index.
    pub fn vertex_at(&self, i: usize) -> u32 {
        self.to_vertex[i]
    }

    /// Number of vertices in the index.
    pub fn len(&self) -> usize {
        self.to_vertex.len()
    }

    /// `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.to_vertex.is_empty()
    }

    /// Iterates over `(index, vertex)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.to_vertex.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut idx = CompactIndex::new();
        assert_eq!(idx.insert(42), 0);
        assert_eq!(idx.insert(7), 1);
        assert_eq!(idx.insert(42), 0, "reinsert returns existing index");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.index_of(7), Some(1));
        assert_eq!(idx.index_of(13), None);
        assert_eq!(idx.vertex_at(0), 42);
    }

    #[test]
    fn from_vertices_collapses_duplicates() {
        let idx = CompactIndex::from_vertices([5, 5, 9, 5, 1]);
        assert_eq!(idx.len(), 3);
        let pairs: Vec<_> = idx.iter().collect();
        assert_eq!(pairs, vec![(0, 5), (1, 9), (2, 1)]);
        assert!(!idx.is_empty());
        assert!(CompactIndex::new().is_empty());
    }
}
