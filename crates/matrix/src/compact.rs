//! Vertex-id ↔ matrix-index compaction.
//!
//! The matrices the main algorithm multiplies at a phase rollover are indexed
//! by *class-restricted vertex sets* ("the High vertices of `L1`", "the Dense
//! vertices of `L3`", …), not by raw vertex ids. The paper repeatedly notes
//! that restricting to non-zero-degree vertices "effectively reduces the
//! dimension for computational purposes" (§3.2); [`CompactIndex`] is that
//! reduction: a bijection between an arbitrary set of `u32` vertex ids and
//! the dense range `0..len`.
//!
//! Since the indexed-adjacency refactor the type lives in `fourcycle-graph`
//! (it also backs the flat adjacency rows there); this module re-exports it
//! so matrix-side callers keep their import path.

pub use fourcycle_graph::CompactIndex;
