//! Dense row-major integer matrices with naive, blocked and Strassen
//! multiplication.
//!
//! The entries are `i64`: path counts are integers and, because of the
//! "negative edge" convention (§3.3 of the paper), they may temporarily be
//! negative, so an integer (rather than boolean or float) representation is
//! required. Products of biadjacency matrices over graphs with at most a few
//! million edges stay far below `i64` overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Multiplication algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulAlgorithm {
    /// Triple loop, `O(n1·n2·n3)`.
    Naive,
    /// Cache-blocked triple loop (same asymptotics, better constants).
    Blocked,
    /// Strassen's algorithm above a size cutoff (the first "fast" matrix
    /// multiplication, ω ≈ 2.807; stands in for the FMM oracle the paper
    /// assumes).
    Strassen,
    /// Pick automatically based on the operand shapes.
    Auto,
}

/// A dense row-major matrix of `i64`.
#[derive(Clone, PartialEq, Eq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Block edge length used by the blocked multiplication.
const BLOCK: usize = 64;
/// Below this dimension Strassen falls back to the blocked kernel.
const STRASSEN_CUTOFF: usize = 128;

impl DenseMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from a generator function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Creates a matrix from nested row vectors (rows must have equal length).
    pub fn from_rows(rows: &[Vec<i64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> i64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: i64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Adds `delta` to the entry at `(r, c)`.
    #[inline]
    pub fn add_entry(&mut self, r: usize, c: usize, delta: i64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += delta;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[i64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }

    /// `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }

    /// The transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Multiplies `self · rhs` using the requested algorithm.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn multiply(&self, rhs: &DenseMatrix, algo: MulAlgorithm) -> DenseMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        match algo {
            MulAlgorithm::Naive => self.mul_naive(rhs),
            MulAlgorithm::Blocked => self.mul_blocked(rhs),
            MulAlgorithm::Strassen => self.mul_strassen(rhs),
            MulAlgorithm::Auto => {
                let min_dim = self.rows.min(self.cols).min(rhs.cols);
                if min_dim >= STRASSEN_CUTOFF {
                    self.mul_strassen(rhs)
                } else if min_dim >= 16 {
                    self.mul_blocked(rhs)
                } else {
                    self.mul_naive(rhs)
                }
            }
        }
    }

    fn mul_naive(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    fn mul_blocked(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        let (n1, n2, n3) = (self.rows, self.cols, rhs.cols);
        for ii in (0..n1).step_by(BLOCK) {
            for kk in (0..n2).step_by(BLOCK) {
                for jj in (0..n3).step_by(BLOCK) {
                    let i_end = (ii + BLOCK).min(n1);
                    let k_end = (kk + BLOCK).min(n2);
                    let j_end = (jj + BLOCK).min(n3);
                    for i in ii..i_end {
                        for k in kk..k_end {
                            let a = self.get(i, k);
                            if a == 0 {
                                continue;
                            }
                            let rhs_row = &rhs.data[k * n3 + jj..k * n3 + j_end];
                            let out_row = &mut out.data[i * n3 + jj..i * n3 + j_end];
                            for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                                *o += a * b;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn mul_strassen(&self, rhs: &DenseMatrix) -> DenseMatrix {
        // Pad all dimensions to the next power of two so the recursion splits
        // evenly, then strip the padding. Rectangular products are handled by
        // padding to a common square size: the asymptotic penalty is bounded
        // because the recursion bottoms out at STRASSEN_CUTOFF and falls back
        // to the blocked kernel.
        let n = self
            .rows
            .max(self.cols)
            .max(rhs.cols)
            .next_power_of_two()
            .max(1);
        if n <= STRASSEN_CUTOFF {
            return self.mul_blocked(rhs);
        }
        let a = self.padded(n, n);
        let b = rhs.padded(n, n);
        let c = strassen_square(&a, &b);
        c.cropped(self.rows, rhs.cols)
    }

    fn padded(&self, rows: usize, cols: usize) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols]
                .copy_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
        }
        out
    }

    fn cropped(&self, rows: usize, cols: usize) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            out.data[r * cols..(r + 1) * cols]
                .copy_from_slice(&self.data[r * self.cols..r * self.cols + cols]);
        }
        out
    }

    fn quadrant(&self, qr: usize, qc: usize) -> DenseMatrix {
        let half = self.rows / 2;
        let mut out = DenseMatrix::zeros(half, half);
        for r in 0..half {
            for c in 0..half {
                out.set(r, c, self.get(qr * half + r, qc * half + c));
            }
        }
        out
    }

    fn assemble(
        q11: &DenseMatrix,
        q12: &DenseMatrix,
        q21: &DenseMatrix,
        q22: &DenseMatrix,
    ) -> DenseMatrix {
        let half = q11.rows;
        let n = half * 2;
        let mut out = DenseMatrix::zeros(n, n);
        for r in 0..half {
            for c in 0..half {
                out.set(r, c, q11.get(r, c));
                out.set(r, c + half, q12.get(r, c));
                out.set(r + half, c, q21.get(r, c));
                out.set(r + half, c + half, q22.get(r, c));
            }
        }
        out
    }
}

fn strassen_square(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = a.rows;
    debug_assert!(n.is_power_of_two());
    if n <= STRASSEN_CUTOFF {
        return a.mul_blocked(b);
    }
    let a11 = a.quadrant(0, 0);
    let a12 = a.quadrant(0, 1);
    let a21 = a.quadrant(1, 0);
    let a22 = a.quadrant(1, 1);
    let b11 = b.quadrant(0, 0);
    let b12 = b.quadrant(0, 1);
    let b21 = b.quadrant(1, 0);
    let b22 = b.quadrant(1, 1);

    let m1 = strassen_square(&(a11.clone() + a22.clone()), &(b11.clone() + b22.clone()));
    let m2 = strassen_square(&(a21.clone() + a22.clone()), &b11);
    let m3 = strassen_square(&a11, &(b12.clone() - b22.clone()));
    let m4 = strassen_square(&a22, &(b21.clone() - b11.clone()));
    let m5 = strassen_square(&(a11.clone() + a12.clone()), &b22);
    let m6 = strassen_square(&(a21 - a11), &(b11 + b12));
    let m7 = strassen_square(&(a12 - a22), &(b21 + b22));

    let c11 = m1.clone() + m4.clone() - m5.clone() + m7;
    let c12 = m3.clone() + m5;
    let c21 = m2.clone() + m4;
    let c22 = m1 - m2 + m3 + m6;
    DenseMatrix::assemble(&c11, &c12, &c21, &c22)
}

impl Add for DenseMatrix {
    type Output = DenseMatrix;
    fn add(mut self, rhs: DenseMatrix) -> DenseMatrix {
        self += rhs;
        self
    }
}

impl AddAssign for DenseMatrix {
    fn add_assign(&mut self, rhs: DenseMatrix) {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl Sub for DenseMatrix {
    type Output = DenseMatrix;
    fn sub(mut self, rhs: DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, seed: i64) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |r, c| {
            ((r as i64 * 31 + c as i64 * 17 + seed) % 7) - 3
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample(5, 5, 1);
        let id = DenseMatrix::identity(5);
        assert_eq!(a.multiply(&id, MulAlgorithm::Naive), a);
        assert_eq!(id.multiply(&a, MulAlgorithm::Naive), a);
    }

    #[test]
    fn known_small_product() {
        let a = DenseMatrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        let b = DenseMatrix::from_rows(&[vec![5, 6], vec![7, 8]]);
        let c = a.multiply(&b, MulAlgorithm::Naive);
        assert_eq!(c, DenseMatrix::from_rows(&[vec![19, 22], vec![43, 50]]));
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let a = sample(37, 91, 2);
        let b = sample(91, 53, 3);
        assert_eq!(
            a.multiply(&b, MulAlgorithm::Naive),
            a.multiply(&b, MulAlgorithm::Blocked)
        );
    }

    #[test]
    fn strassen_matches_naive_square() {
        let a = sample(150, 150, 4);
        let b = sample(150, 150, 5);
        assert_eq!(
            a.multiply(&b, MulAlgorithm::Naive),
            a.multiply(&b, MulAlgorithm::Strassen)
        );
    }

    #[test]
    fn strassen_matches_naive_rectangular() {
        let a = sample(140, 33, 6);
        let b = sample(33, 160, 7);
        assert_eq!(
            a.multiply(&b, MulAlgorithm::Naive),
            a.multiply(&b, MulAlgorithm::Strassen)
        );
    }

    #[test]
    fn auto_matches_naive() {
        let a = sample(20, 65, 8);
        let b = sample(65, 12, 9);
        assert_eq!(
            a.multiply(&b, MulAlgorithm::Naive),
            a.multiply(&b, MulAlgorithm::Auto)
        );
    }

    #[test]
    fn transpose_involution_and_product_rule() {
        let a = sample(9, 13, 10);
        let b = sample(13, 6, 11);
        assert_eq!(a.transpose().transpose(), a);
        // (A·B)^T = B^T · A^T
        let lhs = a.multiply(&b, MulAlgorithm::Naive).transpose();
        let rhs = b.transpose().multiply(&a.transpose(), MulAlgorithm::Naive);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = sample(8, 8, 12);
        let b = sample(8, 8, 13);
        let sum = a.clone() + b.clone();
        assert_eq!(sum - b, a);
    }

    #[test]
    fn nnz_and_zero() {
        let z = DenseMatrix::zeros(4, 4);
        assert!(z.is_zero());
        assert_eq!(z.nnz(), 0);
        let id = DenseMatrix::identity(4);
        assert_eq!(id.nnz(), 4);
        assert!(!id.is_zero());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        let _ = a.multiply(&b, MulAlgorithm::Naive);
    }
}
