//! Row-list sparse matrices.
//!
//! The class-restricted submatrices of the paper (`A^{HS}_old`, `B^{DD}_old`,
//! …) are extremely sparse relative to their nominal dimensions: the number
//! of non-zero entries is bounded by the number of edges in the relevant
//! phase. [`SparseMatrix`] stores each row as a sorted `(col, value)` list,
//! which is the natural output of walking adjacency lists, and supports the
//! sparse–sparse and sparse–dense products used by the combinatorial
//! ("non-FMM") rollover path of the main engine.

use crate::dense::DenseMatrix;
use std::collections::HashMap;

/// A sparse `rows × cols` matrix of `i64`, stored as per-row `(col, value)`
/// lists sorted by column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_entries: Vec<Vec<(usize, i64)>>,
    nnz: usize,
}

impl SparseMatrix {
    /// Creates an empty `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_entries: vec![Vec::new(); rows],
            nnz: 0,
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets; duplicate positions
    /// are summed and zero sums dropped.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, i64)>,
    ) -> Self {
        let mut acc: Vec<HashMap<usize, i64>> = vec![HashMap::new(); rows];
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet out of bounds");
            *acc[r].entry(c).or_insert(0) += v;
        }
        let mut out = Self::zeros(rows, cols);
        for (r, row) in acc.into_iter().enumerate() {
            let mut entries: Vec<(usize, i64)> = row.into_iter().filter(|&(_, v)| v != 0).collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            out.nnz += entries.len();
            out.row_entries[r] = entries;
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The entries of row `r`.
    pub fn row(&self, r: usize) -> &[(usize, i64)] {
        &self.row_entries[r]
    }

    /// Value at `(r, c)` (0 if absent).
    pub fn get(&self, r: usize, c: usize) -> i64 {
        self.row_entries[r]
            .binary_search_by_key(&c, |&(col, _)| col)
            .map(|idx| self.row_entries[r][idx].1)
            .unwrap_or(0)
    }

    /// Iterates over all `(row, col, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        self.row_entries
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |&(c, v)| (r, c, v)))
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Builds a sparse matrix from a dense one.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        Self::from_triplets(
            dense.rows(),
            dense.cols(),
            (0..dense.rows()).flat_map(|r| {
                (0..dense.cols()).filter_map(move |c| {
                    let v = dense.get(r, c);
                    (v != 0).then_some((r, c, v))
                })
            }),
        )
    }

    /// Sparse–sparse product `self · rhs`.
    ///
    /// Cost is `Σ_k nnz(row i of self) · nnz(row k of rhs)`, i.e. proportional
    /// to the number of 2-path *instances*, which is exactly the cost model
    /// the paper's combinatorial maintenance claims use.
    pub fn multiply_sparse(&self, rhs: &SparseMatrix) -> SparseMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut triplets: Vec<(usize, usize, i64)> = Vec::new();
        for r in 0..self.rows {
            if self.row_entries[r].is_empty() {
                continue;
            }
            let mut acc: HashMap<usize, i64> = HashMap::new();
            for &(k, a) in &self.row_entries[r] {
                for &(c, b) in &rhs.row_entries[k] {
                    *acc.entry(c).or_insert(0) += a * b;
                }
            }
            triplets.extend(
                acc.into_iter()
                    .filter(|&(_, v)| v != 0)
                    .map(|(c, v)| (r, c, v)),
            );
        }
        SparseMatrix::from_triplets(self.rows, rhs.cols, triplets)
    }

    /// Sparse–dense product producing a dense result.
    pub fn multiply_dense(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.rows(), "dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols());
        for r in 0..self.rows {
            for &(k, a) in &self.row_entries[r] {
                for c in 0..rhs.cols() {
                    let b = rhs.get(k, c);
                    if b != 0 {
                        out.add_entry(r, c, a * b);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::MulAlgorithm;

    fn sample_dense(rows: usize, cols: usize, seed: i64) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |r, c| {
            let v = (r as i64 * 13 + c as i64 * 7 + seed) % 5;
            if v == 0 || v == 3 {
                0
            } else {
                v - 2
            }
        })
    }

    #[test]
    fn triplets_merge_and_drop_zeros() {
        let m = SparseMatrix::from_triplets(3, 3, [(0, 1, 2), (0, 1, -2), (1, 2, 5), (2, 0, 1)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 0);
        assert_eq!(m.get(1, 2), 5);
        assert_eq!(m.get(2, 0), 1);
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample_dense(6, 9, 1);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.to_dense(), d);
        assert_eq!(s.nnz(), d.nnz());
    }

    #[test]
    fn sparse_product_matches_dense() {
        let a = sample_dense(14, 23, 2);
        let b = sample_dense(23, 11, 3);
        let sa = SparseMatrix::from_dense(&a);
        let sb = SparseMatrix::from_dense(&b);
        let expected = a.multiply(&b, MulAlgorithm::Naive);
        assert_eq!(sa.multiply_sparse(&sb).to_dense(), expected);
        assert_eq!(sa.multiply_dense(&b), expected);
    }

    #[test]
    fn iter_reports_all_entries() {
        let m = SparseMatrix::from_triplets(2, 4, [(0, 3, 1), (1, 0, -2)]);
        let mut triples: Vec<_> = m.iter().collect();
        triples.sort_unstable();
        assert_eq!(triples, vec![(0, 3, 1), (1, 0, -2)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplets_bounds_checked() {
        let _ = SparseMatrix::from_triplets(2, 2, [(2, 0, 1)]);
    }
}
