//! Property-based tests for the matrix substrate.
//!
//! These certify the algebraic identities the counting engines rely on: all
//! multiplication algorithms agree, products are associative and distribute
//! over addition (which is what makes the "negative edge" / signed-chunk
//! aggregation of §3.3 sound), and the incremental job computes the same
//! product as the direct call.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use fourcycle_matrix::{DenseMatrix, MatMulJob, MulAlgorithm, SparseMatrix};
use proptest::prelude::*;

/// Strategy producing a small dense matrix with entries in `[-3, 3]`.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-3i64..=3, rows * cols)
        .prop_map(move |data| DenseMatrix::from_fn(rows, cols, |r, c| data[r * cols + c]))
}

/// Strategy producing compatible dimension triples (kept small: the point is
/// shape coverage, not scale).
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_agree((n1, n2, n3) in dims(), seed in 0u64..1000) {
        let a = DenseMatrix::from_fn(n1, n2, |r, c| ((r * 31 + c * 17) as i64 + seed as i64) % 5 - 2);
        let b = DenseMatrix::from_fn(n2, n3, |r, c| ((r * 13 + c * 7) as i64 + seed as i64) % 5 - 2);
        let naive = a.multiply(&b, MulAlgorithm::Naive);
        prop_assert_eq!(&naive, &a.multiply(&b, MulAlgorithm::Blocked));
        prop_assert_eq!(&naive, &a.multiply(&b, MulAlgorithm::Strassen));
        prop_assert_eq!(&naive, &a.multiply(&b, MulAlgorithm::Auto));
    }

    #[test]
    fn product_is_associative(a in matrix(5, 4), b in matrix(4, 6), c in matrix(6, 3)) {
        let left = a.multiply(&b, MulAlgorithm::Naive).multiply(&c, MulAlgorithm::Naive);
        let right = a.multiply(&b.multiply(&c, MulAlgorithm::Naive), MulAlgorithm::Naive);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn product_distributes_over_addition(a in matrix(4, 5), b in matrix(5, 4), c in matrix(5, 4)) {
        // A·(B+C) = A·B + A·C — the identity behind summing per-chunk /
        // per-phase data structures (§3.2: "we add it to the one of B_{<i-1}").
        let lhs = a.multiply(&(b.clone() + c.clone()), MulAlgorithm::Naive);
        let rhs = a.multiply(&b, MulAlgorithm::Naive) + a.multiply(&c, MulAlgorithm::Naive);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn sparse_and_dense_products_agree(a in matrix(6, 7), b in matrix(7, 5)) {
        let sa = SparseMatrix::from_dense(&a);
        let sb = SparseMatrix::from_dense(&b);
        let expected = a.multiply(&b, MulAlgorithm::Naive);
        prop_assert_eq!(sa.multiply_sparse(&sb).to_dense(), expected.clone());
        prop_assert_eq!(sa.multiply_dense(&b), expected);
    }

    #[test]
    fn incremental_job_matches_direct(a in matrix(6, 6), b in matrix(6, 6), budget in 1usize..20) {
        let expected = a.multiply(&b, MulAlgorithm::Naive);
        let mut job = MatMulJob::new(a, b);
        while job.advance(budget) == fourcycle_matrix::JobStatus::InProgress {}
        prop_assert_eq!(job.into_result(), expected);
    }

    #[test]
    fn sparse_roundtrip(a in matrix(7, 9)) {
        prop_assert_eq!(SparseMatrix::from_dense(&a).to_dense(), a);
    }
}
