//! Prints the paper's parameter and constraint tables (Theorems 1–2, §3.4,
//! §4, Appendix B) straight from the `complexity` crate — the same numbers
//! the `experiments` binary reports as tables T1–T3.
//!
//! ```text
//! cargo run --example parameter_report
//! ```

use fourcycle::complexity::verify::{all_satisfied, Regime};
use fourcycle::complexity::{
    solve_main, solve_warmup, update_time_exponent, verify_main, verify_warmup, IdealModel,
    OMEGA_CURRENT_BEST,
};

fn main() {
    println!("Theorem 1/2 — update-time exponents 2/3 − ε:");
    for (label, omega) in [
        ("ω = 2 (best possible)", 2.0),
        ("ω = 2.371339 (current best)", OMEGA_CURRENT_BEST),
        ("ω = 2.5", 2.5),
        ("ω = 3 (schoolbook)", 3.0),
    ] {
        let p = solve_main(omega);
        println!(
            "  {label:<28} ε = {:<9.7} δ = {:<9.7} update time O(m^{:.5})",
            p.eps,
            p.delta,
            update_time_exponent(omega)
        );
    }

    println!("\n§3.4 — warm-up parameters under the ideal rectangular bounds:");
    let w = solve_warmup(&IdealModel, 1.0 / 24.0);
    println!("  ε1 = {:.7} (paper: 1/24 = {:.7})", w.eps1, 1.0 / 24.0);
    println!("  ε2 = {:.7} (paper: 5/24 = {:.7})", w.eps2, 5.0 / 24.0);

    println!("\nAppendix B — constraint verification:");
    for (label, checks) in [
        ("main, current ω", verify_main(Regime::CurrentBest)),
        ("main, ideal ω", verify_main(Regime::Ideal)),
        (
            "warm-up, current bounds",
            verify_warmup(Regime::CurrentBest),
        ),
        ("warm-up, ideal bounds", verify_warmup(Regime::Ideal)),
    ] {
        println!(
            "  {label:<26} {}",
            if all_satisfied(&checks) {
                "all constraints satisfied"
            } else {
                "VIOLATION"
            }
        );
        for c in checks {
            println!("    {:<55} {:>14.10} ≤ {:>14.10}", c.name, c.lhs, c.rhs);
        }
    }
}
