//! Durable sessions: journal a service's command traffic, "crash", and
//! recover — first through the store API, then through a journaled
//! sharded runtime restart.
//!
//! ```text
//! cargo run -p fourcycle --example durable_session
//! ```

use fourcycle::core::EngineKind;
use fourcycle::runtime::{RuntimeConfig, ShardedRuntime};
use fourcycle::service::{parse_script, GraphId, Request, Response};
use fourcycle::store::{JournalConfig, JournalStore};

fn main() {
    let dir = std::env::temp_dir().join("fourcycle-durable-session-example");
    let _ = std::fs::remove_dir_all(&dir);

    // --- 1. A journaled single service -----------------------------------
    let store = JournalStore::open(
        JournalConfig::new(&dir).checkpoint_every(4),
        1,
        Default::default(),
    )
    .unwrap();
    let mut service = store.open_shard(0).unwrap();
    let script = "
        create g1
        layered g1 A+1:2 B+2:3 C+3:4 D+4:1   # one 4-cycle
        layered g1 A-1:2                      # break it ...
        layered g1 A+1:2                      # ... and close it again
    ";
    for request in parse_script(script).unwrap() {
        service.execute(&request).unwrap();
    }
    let before = service.snapshot(GraphId(1)).unwrap();
    println!(
        "before crash: count={}, edges={}, epoch={}",
        before.count, before.total_edges, before.epoch
    );
    drop(service); // the "crash" — memory is gone, the journal is not

    let recovered = store.recover_shard(0).unwrap();
    let after = recovered.snapshot(GraphId(1)).unwrap();
    println!(
        "recovered:    count={}, edges={}, epoch={}",
        after.count, after.total_edges, after.epoch
    );
    assert_eq!(
        (before.count, before.total_edges, before.epoch),
        (after.count, after.total_edges, after.epoch)
    );

    // --- 2. The same journal dir drives a whole runtime ------------------
    let runtime_dir = std::env::temp_dir().join("fourcycle-durable-runtime-example");
    let _ = std::fs::remove_dir_all(&runtime_dir);
    let config = || {
        RuntimeConfig::new()
            .shards(2)
            .engine(EngineKind::Threshold)
            .journal_dir(&runtime_dir)
    };
    let runtime = ShardedRuntime::try_start(config()).unwrap();
    for request in parse_script("create g7\nlayered g7 A+1:2 B+2:3 C+3:4 D+4:1").unwrap() {
        runtime.call(request).unwrap();
    }
    runtime.shutdown();

    // Restart on the same directory: every shard recovers before serving.
    let revived = ShardedRuntime::try_start(config()).unwrap();
    match revived
        .call(Request::GetSnapshot { id: GraphId(7) })
        .unwrap()
    {
        Response::Snapshot { snapshot, .. } => {
            println!(
                "runtime restart: count={}, epoch={}",
                snapshot.count, snapshot.epoch
            );
            assert_eq!((snapshot.count, snapshot.epoch), (1, 4));
        }
        other => panic!("expected snapshot, got {other:?}"),
    }
    revived.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&runtime_dir);
    println!("durable session example finished");
}
