//! Incremental view maintenance of a cyclic join count (§1, Fig. 1):
//! four binary relations `A(L1,L2) ⋈ B(L2,L3) ⋈ C(L3,L4) ⋈ D(L4,L1)` receive
//! tuple insertions and deletions and the view `COUNT(*)` over their cyclic
//! join is kept up to date after every update.
//!
//! ```text
//! cargo run --release --example database_join
//! ```

use fourcycle::graph::Rel;
use fourcycle::ivm::{BinaryJoinCountView, CyclicJoinCountView};
use fourcycle::workloads::{LayeredStreamConfig, LayeredStreamKind};

fn main() {
    // Part 1 — the warm-up of Fig. 1: |A ⋈ B| on the paper's example data.
    let mut binary = BinaryJoinCountView::new();
    for (l1, l2) in [(1, 1), (1, 2), (1, 3), (2, 2), (3, 2)] {
        binary.insert_a(l1, l2);
    }
    for (l2, l3) in [(1, 1), (2, 1), (3, 1), (3, 3)] {
        binary.insert_b(l2, l3);
    }
    println!("Fig. 1 example: |A ⋈ B| = {} (paper: 6)", binary.count());

    // Part 2 — the cyclic 4-relation join maintained by the main algorithm,
    // under a skewed (Zipf-like) tuple stream.
    let mut view = CyclicJoinCountView::with_main_algorithm();
    let stream = LayeredStreamConfig {
        layer_size: 128,
        updates: 3_000,
        delete_prob: 0.25,
        kind: LayeredStreamKind::Relational,
        seed: 7,
    }
    .generate();

    println!("\ntuples  |A⋈B⋈C⋈D|");
    for (i, update) in stream.iter().enumerate() {
        view.apply(*update);
        if (i + 1) % 500 == 0 {
            println!("{:>6}  {:>10}", view.total_tuples(), view.count());
        }
    }
    assert_eq!(view.count(), view.recompute_from_scratch());
    println!("\nincrementally maintained count equals full recomputation");

    // Ad-hoc updates through the relational API.
    let before = view.count();
    view.insert(Rel::A, 1, 1);
    view.insert(Rel::B, 1, 1);
    view.insert(Rel::C, 1, 1);
    view.insert(Rel::D, 1, 1);
    println!(
        "after adding the all-ones tuple to each relation: {} (was {before})",
        view.count()
    );
}
