//! Sliding-window 4-cycle counting: every edge expires after a fixed number
//! of updates, the classic streaming-window regime. Compares the per-update
//! work of the Appendix-A algorithm, the O(m^{2/3}) baseline and the paper's
//! main algorithm on the same window.
//!
//! ```text
//! cargo run --release --example streaming_window
//! ```

use fourcycle::core::{EngineKind, FourCycleCounter};
use fourcycle::workloads::{GeneralStreamConfig, GeneralStreamKind};

fn main() {
    let stream = GeneralStreamConfig {
        vertices: 256,
        updates: 4_000,
        kind: GeneralStreamKind::SlidingWindow { window: 600 },
        seed: 11,
        ..Default::default()
    }
    .generate();

    println!("engine              final count   total work (ops)   work/update");
    let mut final_counts = Vec::new();
    for kind in [EngineKind::Simple, EngineKind::Threshold, EngineKind::Fmm] {
        let mut counter = FourCycleCounter::new(kind);
        for update in &stream {
            counter.apply(*update);
        }
        println!(
            "{:<18}  {:>11}  {:>17}  {:>12.1}",
            kind.name(),
            counter.count(),
            counter.work(),
            counter.work() as f64 / stream.len() as f64,
        );
        final_counts.push(counter.count());
    }
    assert!(
        final_counts.windows(2).all(|w| w[0] == w[1]),
        "all engines agree"
    );
    println!("\nall engines report the same exact count over the sliding window");
}
