//! Quick tour of the service layer: multi-tenant sessions, typed errors,
//! atomic batches, epoch-consistent snapshots, and the serialized command
//! format.
//!
//! ```text
//! cargo run -p fourcycle --example service_quickstart
//! ```

use fourcycle::core::EngineKind;
use fourcycle::graph::{GraphUpdate, LayeredUpdate, Rel};
use fourcycle::service::{
    parse_script, CycleCountService, GraphId, Request, SessionSpec, WorkloadMode,
};

fn main() {
    // One service, many tenants. The builder sets the default session spec;
    // individual sessions may override it.
    let mut service = CycleCountService::builder()
        .engine(EngineKind::Fmm)
        .mode(WorkloadMode::General)
        .build();

    let social = GraphId(1); // general graph: 4-cycles in a friendship graph
    let warehouse = GraphId(2); // cyclic join: |A ⋈ B ⋈ C ⋈ D|
    service.create_session(social).expect("fresh id");
    service
        .create_session_with(
            warehouse,
            SessionSpec {
                kind: EngineKind::Threshold,
                config: Default::default(),
                mode: WorkloadMode::Join,
            },
        )
        .expect("fresh id");

    // Tenant 1: a general graph, updated through typed single calls.
    for (u, v) in [(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)] {
        service
            .try_apply_general(social, GraphUpdate::insert(u, v))
            .expect("fresh edges");
    }
    // Errors are values, not silent no-ops:
    let err = service
        .try_apply_general(social, GraphUpdate::insert(1, 2))
        .unwrap_err();
    println!("duplicate insert rejected: {err}");

    // Tenant 2: tuple traffic as one atomic batch. A rejected batch names
    // the offending index and changes nothing.
    let batch: Vec<LayeredUpdate> = vec![
        LayeredUpdate::insert(Rel::A, 10, 20),
        LayeredUpdate::insert(Rel::B, 20, 30),
        LayeredUpdate::insert(Rel::C, 30, 40),
        LayeredUpdate::insert(Rel::D, 40, 10),
    ];
    let count = service
        .try_apply_layered_batch(warehouse, &batch)
        .expect("well-formed batch");
    println!("warehouse join count after batch: {count}");

    // Epoch-consistent reads: one snapshot, no racing a writer between
    // separate count()/work() calls.
    for id in service.ids() {
        let snap = service.snapshot(id).expect("live session");
        println!(
            "{id}: count={} edges={} epoch={} work={}",
            snap.count, snap.total_edges, snap.epoch, snap.work
        );
    }

    // The same traffic can arrive as a serialized command stream.
    let script = "
        create g3 layered simple
        layered g3 A+1:2 B+2:3 C+3:4 D+4:1
        snapshot g3
    ";
    let responses = service
        .execute_all(&parse_script(script).expect("valid script"))
        .expect("valid commands");
    println!("script responses: {responses:?}");

    // Programmatic command values work identically (replayable traffic).
    let response = service
        .execute(&Request::Count { id: GraphId(3) })
        .expect("live session");
    println!("command-driven count: {response:?}");
}
