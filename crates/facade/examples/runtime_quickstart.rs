//! Quick tour of the sharded runtime: thread-per-shard execution of
//! service traffic, blocking and pipelined calls, script replay,
//! backpressure, and the per-shard statistics report.
//!
//! ```text
//! cargo run -p fourcycle --release --example runtime_quickstart
//! ```

use fourcycle::core::EngineKind;
use fourcycle::graph::{LayeredUpdate, Rel};
use fourcycle::runtime::{RuntimeConfig, ScriptSource, ShardedRuntime};
use fourcycle::service::{GraphId, Request, Response};
use std::thread;

fn square(base: u32) -> Vec<LayeredUpdate> {
    vec![
        LayeredUpdate::insert(Rel::A, base + 1, base + 2),
        LayeredUpdate::insert(Rel::B, base + 2, base + 3),
        LayeredUpdate::insert(Rel::C, base + 3, base + 4),
        LayeredUpdate::insert(Rel::D, base + 4, base + 1),
    ]
}

fn main() {
    // A runtime with 2 shard workers, each owning its own
    // CycleCountService; graphs are routed by hash(GraphId), so tenants
    // spread over the shards and their traffic executes concurrently.
    let runtime = ShardedRuntime::start(
        RuntimeConfig::new()
            .shards(2)
            .mailbox_depth(16) // bounded: submitters block when a shard lags
            .engine(EngineKind::Threshold),
    );

    // --- blocking calls, from several client threads at once -----------
    thread::scope(|scope| {
        for tenant in 0..4u64 {
            let runtime = &runtime;
            scope.spawn(move || {
                let id = GraphId(tenant);
                runtime
                    .call(Request::CreateGraph { id, spec: None })
                    .expect("fresh id");
                runtime
                    .call(Request::ApplyLayeredBatch {
                        id,
                        updates: square(0),
                    })
                    .expect("well-formed batch");
            });
        }
    });

    // --- fire-collect pipelining ----------------------------------------
    // submit() returns immediately; drain() collects outcomes in
    // submission order while all shards work in parallel.
    let mut pipeline = runtime.pipeline();
    for tenant in 0..4u64 {
        pipeline.submit(Request::GetSnapshot {
            id: GraphId(tenant),
        });
    }
    for outcome in pipeline.drain() {
        if let Response::Snapshot { id, snapshot } = outcome.expect("live sessions") {
            println!(
                "{id}: count={} edges={} epoch={}",
                snapshot.count, snapshot.total_edges, snapshot.epoch
            );
        }
    }

    // --- serialized traffic, replayed concurrently ----------------------
    // The PR 3 command text format feeds straight into the executor.
    let script = "
        create g100 layered simple
        layered g100 A+1:2 B+2:3 C+3:4 D+4:1
        count g100
        list
    ";
    let source = ScriptSource::parse(script).expect("well-formed script");
    let outcomes = source.replay_pipelined(&runtime);
    println!("script: {:?}", outcomes.last().unwrap().as_ref().unwrap());

    // --- graceful shutdown: drain mailboxes, join workers, final report -
    let report = runtime.shutdown();
    println!("\nper-shard statistics:\n{report}");
    assert_eq!(report.totals.rejected, 0);
}
