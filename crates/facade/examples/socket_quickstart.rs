//! Quick tour of the network front door: a `fourcycle-server` on a
//! loopback port, driven by the blocking wire client — single calls,
//! pipelining, wire errors and the retry contract, the `stats` document,
//! and graceful shutdown.
//!
//! ```text
//! cargo run -p fourcycle --release --example socket_quickstart
//! ```

use fourcycle::core::EngineKind;
use fourcycle::runtime::{RuntimeConfig, ShardedRuntime};
use fourcycle::server::{Client, ClientError, Server, ServerConfig, WireError};
use fourcycle::service::{GraphId, Request, Response};
use std::thread;

fn main() {
    // A sharded runtime behind a TCP listener. Port 0 = OS-assigned, so
    // the example never collides with anything; a deployment would pass
    // ServerConfig::new().addr("0.0.0.0:4444").
    let runtime = ShardedRuntime::start(
        RuntimeConfig::new()
            .shards(2)
            .mailbox_depth(16)
            .engine(EngineKind::Threshold),
    );
    let server = Server::start(ServerConfig::new(), runtime).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // --- one client per thread, blocking calls --------------------------
    thread::scope(|scope| {
        for tenant in 1..=4u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let id = GraphId(tenant);
                client
                    .call(&Request::CreateGraph { id, spec: None })
                    .expect("fresh id");
                // One 4-cycle through the layered relations A→B→C→D.
                let line = format!("layered g{tenant} A+1:2 B+2:3 C+3:4 D+4:1");
                client.call_line(&line).expect("well-formed batch");
            });
        }
    });

    // --- pipelining: fire a batch, collect framed replies in order ------
    let mut client = Client::connect(addr).expect("connect");
    let script: Vec<Request> = (1..=4u64)
        .map(|tenant| Request::GetSnapshot {
            id: GraphId(tenant),
        })
        .collect();
    for reply in client.pipeline(&script).expect("conversation intact") {
        match reply {
            Ok(Response::Snapshot { id, snapshot }) => println!(
                "{id}: count={} edges={} epoch={}",
                snapshot.count, snapshot.total_edges, snapshot.epoch
            ),
            Ok(other) => println!("unexpected: {other:?}"),
            // The retry contract: Busy/ShardUnavailable were never
            // executed (resubmit freely); Journal errors may have been
            // journaled, so never resubmit those blindly.
            Err(e) if e.retryable() => println!("transient, retry: {e}"),
            Err(e) => println!("rejected: {e}"),
        }
    }

    // --- wire errors are typed, not stringly ----------------------------
    match client.call(&Request::Count { id: GraphId(99) }) {
        Err(ClientError::Wire(WireError::UnknownGraph(id))) => {
            println!("as expected, no graph {id}");
        }
        other => println!("unexpected: {other:?}"),
    }

    // --- the stats document: all-integer JSON, parsed in-tree -----------
    let stats = client.stats().expect("stats parses");
    let server_side = stats.get("server").expect("server section");
    println!(
        "served {} commands over {} connections",
        server_side
            .get("commands")
            .and_then(|j| j.as_u64())
            .unwrap(),
        server_side
            .get("connections")
            .and_then(|j| j.as_u64())
            .unwrap(),
    );

    // --- graceful shutdown: drain connections, join shards, report ------
    drop(client);
    let report = server.shutdown();
    println!("\nper-shard statistics:\n{report}");
    assert_eq!(report.totals.rejected, 1); // the unknown-graph probe
}
