//! Batched ingestion of a cyclic-join tuple stream: a workload is rendered
//! to the trace format, replayed through the batched trace player, and
//! applied to the IVM view in `UpdateBatch`es — the high-throughput path a
//! streaming ingestor would use. Verifies that batched and per-tuple
//! application produce identical join counts.
//!
//! ```text
//! cargo run --release --example batched_ingestion
//! ```

use fourcycle::core::EngineKind;
use fourcycle::ivm::CyclicJoinCountView;
use fourcycle::workloads::{
    render_layered_trace, LayeredStreamConfig, LayeredStreamKind, TracePlayer,
};

fn main() {
    let stream = LayeredStreamConfig {
        layer_size: 128,
        updates: 6_000,
        delete_prob: 0.3,
        kind: LayeredStreamKind::Relational,
        seed: 23,
    }
    .generate();
    let trace = render_layered_trace(&stream);

    // Per-tuple reference.
    let mut reference = CyclicJoinCountView::new(EngineKind::Threshold);
    for update in &stream {
        reference.apply(*update);
    }

    println!("batch size   batches   |A⋈B⋈C⋈D|   engine work (ops)");
    for batch_size in [1usize, 64, 4096] {
        let player = TracePlayer::from_trace(&trace, batch_size).expect("valid trace");
        let mut view = CyclicJoinCountView::new(EngineKind::Threshold);
        let mut batches = 0usize;
        for batch in player {
            view.apply_batch(batch.updates());
            batches += 1;
        }
        println!(
            "{:>10}   {:>7}   {:>9}   {:>17}",
            batch_size,
            batches,
            view.count(),
            view.work(),
        );
        assert_eq!(
            view.count(),
            reference.count(),
            "batching must preserve the count"
        );
    }
    println!("\nall batch sizes reproduce the per-tuple join count exactly");
}
