//! Quick start: maintain the exact 4-cycle count of a general graph under a
//! fully dynamic edge stream (Theorem 1).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fourcycle::core::{EngineKind, FourCycleCounter};

fn main() {
    // Use the paper's main algorithm (§4–§7). `EngineKind::Threshold` gives
    // the O(m^{2/3}) baseline and `EngineKind::Simple` the Appendix-A O(n)
    // algorithm; all maintain identical counts.
    let mut counter = FourCycleCounter::new(EngineKind::Fmm);

    println!("building K5 one edge at a time:");
    for u in 1..=5u32 {
        for v in (u + 1)..=5 {
            let count = counter.insert(u, v).expect("new edge");
            println!("  +({u},{v})  -> {count} four-cycles");
        }
    }
    // K5 contains C(5,4) * 3 = 15 four-cycles.
    assert_eq!(counter.count(), 15);

    println!("deleting the edges incident to vertex 5:");
    for v in 1..=4u32 {
        let count = counter.delete(5, v).expect("edge exists");
        println!("  -({v},5)  -> {count} four-cycles");
    }
    // What remains is K4 with 3 four-cycles.
    assert_eq!(counter.count(), 3);

    println!(
        "final: {} four-cycles on {} edges (total engine work: {} operations)",
        counter.count(),
        counter.graph().edge_count(),
        counter.work()
    );
}
