//! Tour of the built-in scenario catalog (`docs/SCENARIOS.md`).
//!
//! Replays every scenario — skewed inserts, sliding-window expiry, drain
//! churn, adversarial threshold flapping, bursty mixes, and the composite
//! production replay — through the paper's main engine via the batch
//! pipeline, and prints what each one did to the engine's amortized slow
//! paths (era rebuilds, phase rollovers, class transitions).
//!
//! ```text
//! cargo run -p fourcycle --release --example scenario_tour
//! ```

use fourcycle::core::{EngineKind, LayeredCycleCounter};
use fourcycle::workloads::{smoke_catalog, total_updates};

fn main() {
    let kind = EngineKind::Fmm;
    println!("scenario catalog through `{}`\n", kind.name());
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>6} {:>10} {:>12}",
        "scenario", "updates", "edges", "count", "eras", "rollovers", "transitions"
    );

    for scenario in smoke_catalog(42) {
        let batches = scenario.generate();
        let mut counter = LayeredCycleCounter::new(kind);
        for batch in &batches {
            counter.apply_batch(batch.updates());
        }
        let slow = counter.slow_path_stats();
        println!(
            "{:<20} {:>8} {:>8} {:>8} {:>6} {:>10} {:>12}",
            scenario.name(),
            total_updates(&batches),
            counter.total_edges(),
            counter.count(),
            slow.era_rebuilds,
            slow.phase_rollovers,
            slow.class_transitions,
        );

        // The flap scenario exists to prove the slow paths fire; hold it to
        // that promise even in example form.
        if scenario.name() == "threshold-flap" {
            assert!(
                slow.era_rebuilds >= 1,
                "threshold-flap must force an era rebuild"
            );
        }
    }

    println!(
        "\nFull-size catalog + JSON/CSV reports:\n  \
         cargo run -p fourcycle-bench --release --bin scenarios"
    );
}
