//! Social-network motif monitoring: maintain 4-cycle and triangle counts of
//! a preferential-attachment graph under continuous churn (one of the
//! motivating applications in §1 of the paper).
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use fourcycle::core::{EngineKind, FourCycleCounter, TriangleCounter};
use fourcycle::workloads::{GeneralStreamConfig, GeneralStreamKind};

fn main() {
    let stream = GeneralStreamConfig {
        vertices: 400,
        updates: 4_000,
        kind: GeneralStreamKind::PreferentialAttachment { churn: 0.15 },
        seed: 2025,
        ..Default::default()
    }
    .generate();

    let mut four_cycles = FourCycleCounter::new(EngineKind::Threshold);
    let mut triangles = TriangleCounter::new();

    println!("updates  edges  triangles  4-cycles  4-cycles/edge");
    for (i, update) in stream.iter().enumerate() {
        four_cycles.apply(*update);
        triangles.apply(*update);
        if (i + 1) % 500 == 0 {
            let m = four_cycles.graph().edge_count();
            println!(
                "{:>7}  {:>5}  {:>9}  {:>8}  {:>13.2}",
                i + 1,
                m,
                triangles.count(),
                four_cycles.count(),
                four_cycles.count() as f64 / m.max(1) as f64,
            );
        }
    }

    // Both counters are exact: cross-check against brute force at the end.
    assert_eq!(
        four_cycles.count(),
        four_cycles.graph().count_4cycles_brute_force()
    );
    assert_eq!(
        triangles.count(),
        triangles.graph().count_triangles_brute_force()
    );
    println!("\nexact counts verified against brute-force recomputation");
}
