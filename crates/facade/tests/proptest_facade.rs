//! Property-based tests over the facade: engine/oracle agreement on
//! arbitrary small fully dynamic scripts, inverse cancellation, and counter
//! consistency. These complement the seeded differential tests in
//! `crates/core/tests/` with shrinkable counterexamples.

use fourcycle::core::{EngineKind, FourCycleCounter, LayeredCycleCounter};
use fourcycle::graph::{GeneralGraph, GraphUpdate, LayeredGraph, LayeredUpdate, Rel, UpdateOp};
use proptest::prelude::*;

/// Strategy: a script of (relation, left, right) triples over a small
/// universe; the harness turns it into a well-formed insert/delete stream by
/// toggling edge presence.
fn layered_script() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((0u8..4, 0u32..5, 0u32..5), 1..120)
}

fn general_script() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..8, 0u32..8), 1..80)
}

/// Toggle semantics: if the edge is present, delete it; otherwise insert it.
fn toggle_layered(script: &[(u8, u32, u32)]) -> Vec<LayeredUpdate> {
    let mut graph = LayeredGraph::new();
    let mut out = Vec::new();
    for &(rel_idx, l, r) in script {
        let rel = Rel::from_index(rel_idx as usize);
        let op = if graph.has_edge(rel, l, r) {
            UpdateOp::Delete
        } else {
            UpdateOp::Insert
        };
        let update = LayeredUpdate {
            op,
            rel,
            left: l,
            right: r,
        };
        graph.apply(&update);
        out.push(update);
    }
    out
}

fn toggle_general(script: &[(u32, u32)]) -> Vec<GraphUpdate> {
    let mut graph = GeneralGraph::new();
    let mut out = Vec::new();
    for &(u, v) in script {
        if u == v {
            continue;
        }
        let op = if graph.has_edge(u, v) {
            UpdateOp::Delete
        } else {
            UpdateOp::Insert
        };
        let update = GraphUpdate { op, u, v };
        graph.apply(&update);
        out.push(update);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every engine maintains the exact layered 4-cycle count on arbitrary
    /// toggle scripts (insertions and deletions interleaved arbitrarily).
    #[test]
    fn layered_counters_are_exact(script in layered_script()) {
        let stream = toggle_layered(&script);
        for kind in [EngineKind::Simple, EngineKind::Threshold, EngineKind::Fmm] {
            let mut counter = LayeredCycleCounter::new(kind);
            for update in &stream {
                counter.apply(*update);
            }
            prop_assert_eq!(
                counter.count(),
                counter.graph().count_layered_4cycles_brute_force(),
                "engine {}", kind.name()
            );
        }
    }

    /// The general-graph counter (§8 reduction) is exact on arbitrary toggle
    /// scripts.
    #[test]
    fn general_counter_is_exact(script in general_script()) {
        let stream = toggle_general(&script);
        let mut counter = FourCycleCounter::new(EngineKind::Fmm);
        for update in &stream {
            counter.apply(*update);
        }
        prop_assert_eq!(counter.count(), counter.graph().count_4cycles_brute_force());
    }

    /// Applying a script and then its exact inverse returns every engine to a
    /// zero count (cancellation / negative-edge bookkeeping).
    #[test]
    fn inverse_scripts_cancel(script in layered_script()) {
        let stream = toggle_layered(&script);
        let mut counter = LayeredCycleCounter::new(EngineKind::Fmm);
        for update in &stream {
            counter.apply(*update);
        }
        for update in stream.iter().rev() {
            let inverse = LayeredUpdate { op: update.op.inverse(), ..*update };
            counter.apply(inverse);
        }
        prop_assert_eq!(counter.count(), 0);
        prop_assert_eq!(counter.total_edges(), 0);
    }
}
