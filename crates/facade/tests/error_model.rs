//! The error model, pinned across the whole stack: every `EngineKind` must
//! report the *same* [`UpdateError`] for the same ill-formed update, at the
//! engine level (`try_apply_update`), the counter level (`try_apply` /
//! `try_insert`) and the view level (`try_insert` / `try_delete`) — plus a
//! property test that atomic batch rejection attributes the correct batch
//! index on every level that offers `try_apply_batch`.

use fourcycle::core::{
    BatchError, EngineKind, FourCycleCounter, LayeredCycleCounter, QRel, ThreePathEngine,
    UpdateError, WarmupEngine,
};
use fourcycle::graph::{GraphUpdate, LayeredGraph, LayeredUpdate, Rel, UpdateOp};
use fourcycle::ivm::{BinaryJoinCountView, BinaryJoinUpdate, BinarySide, CyclicJoinCountView};
use proptest::prelude::*;

/// Engine level: the same (duplicate, missing) verdicts from every kind.
#[test]
fn engine_errors_identical_across_every_kind() {
    for kind in EngineKind::ALL {
        let mut engine = kind.build();
        let name = engine.name();

        // Fresh edge inserts fine; duplicate insert is a DuplicateEdge.
        assert_eq!(
            engine.try_apply_update(QRel::A, 1, 2, UpdateOp::Insert),
            Ok(()),
            "{name}"
        );
        assert_eq!(
            engine.try_apply_update(QRel::A, 1, 2, UpdateOp::Insert),
            Err(UpdateError::DuplicateEdge),
            "{name}"
        );
        // Deleting an absent edge is a MissingEdge — including an edge that
        // exists in a *different* relation.
        assert_eq!(
            engine.try_apply_update(QRel::B, 1, 2, UpdateOp::Delete),
            Err(UpdateError::MissingEdge),
            "{name}"
        );
        // Valid delete, then the edge is gone again.
        assert_eq!(
            engine.try_apply_update(QRel::A, 1, 2, UpdateOp::Delete),
            Ok(()),
            "{name}"
        );
        assert_eq!(
            engine.try_apply_update(QRel::A, 1, 2, UpdateOp::Delete),
            Err(UpdateError::MissingEdge),
            "{name}"
        );
    }
}

/// The §3 warm-up engine rejects updates to its fixed relations with
/// RelationMismatch instead of panicking.
#[test]
fn warmup_engine_rejects_fixed_relations() {
    let mut engine = WarmupEngine::new([(1, 2)], [(3, 4)], 16, 0.05, 0.05);
    assert_eq!(
        engine.try_apply_update(QRel::A, 9, 9, UpdateOp::Insert),
        Err(UpdateError::RelationMismatch)
    );
    assert_eq!(
        engine.try_apply_update(QRel::C, 9, 9, UpdateOp::Insert),
        Err(UpdateError::RelationMismatch)
    );
    assert_eq!(
        engine.try_apply_batch(QRel::A, &[(9, 9, UpdateOp::Insert)]),
        Err(BatchError::at(0, UpdateError::RelationMismatch))
    );
    assert_eq!(
        engine.try_apply_update(QRel::B, 2, 3, UpdateOp::Insert),
        Ok(())
    );
    assert_eq!(
        engine.try_apply_update(QRel::B, 2, 3, UpdateOp::Insert),
        Err(UpdateError::DuplicateEdge)
    );
}

/// Counter level (layered): identical verdicts for every kind, and rejected
/// updates advance neither count nor epoch.
#[test]
fn layered_counter_errors_identical_across_every_kind() {
    for kind in EngineKind::ALL {
        let name = kind.name();
        let mut counter = LayeredCycleCounter::new(kind);
        assert_eq!(
            counter.try_apply(LayeredUpdate::insert(Rel::A, 1, 2)),
            Ok(0),
            "{name}"
        );
        let cases = [
            (
                LayeredUpdate::insert(Rel::A, 1, 2),
                UpdateError::DuplicateEdge,
            ),
            (
                LayeredUpdate::delete(Rel::A, 2, 1),
                UpdateError::MissingEdge,
            ),
            (
                LayeredUpdate::delete(Rel::D, 1, 2),
                UpdateError::MissingEdge,
            ),
        ];
        for (update, expected) in cases {
            assert_eq!(
                counter.try_apply(update),
                Err(expected),
                "{name}: {update:?}"
            );
        }
        assert_eq!(
            counter.epoch(),
            1,
            "{name}: rejections must not advance the epoch"
        );
        assert_eq!(counter.count(), 0, "{name}");
    }
}

/// Counter level (general, §8 reduction): duplicate / missing / self-loop.
#[test]
fn general_counter_errors_identical_across_every_kind() {
    for kind in EngineKind::ALL {
        let name = kind.name();
        let mut counter = FourCycleCounter::new(kind);
        assert_eq!(counter.try_insert(1, 2), Ok(0), "{name}");
        let cases: [(GraphUpdate, UpdateError); 4] = [
            (GraphUpdate::insert(1, 2), UpdateError::DuplicateEdge),
            (GraphUpdate::insert(2, 1), UpdateError::DuplicateEdge), // undirected
            (GraphUpdate::delete(1, 3), UpdateError::MissingEdge),
            (GraphUpdate::insert(4, 4), UpdateError::SelfLoop),
        ];
        for (update, expected) in cases {
            assert_eq!(
                counter.try_apply(update),
                Err(expected),
                "{name}: {update:?}"
            );
        }
        // Self-loop outranks duplicate/missing classification.
        assert_eq!(
            counter.try_delete(4, 4),
            Err(UpdateError::SelfLoop),
            "{name}"
        );
        assert_eq!(counter.epoch(), 1, "{name}");
    }
}

/// View level: the cyclic join view and the binary join view speak the same
/// error vocabulary.
#[test]
fn view_errors_identical_across_every_kind() {
    for kind in EngineKind::ALL {
        let name = kind.name();
        let mut view = CyclicJoinCountView::new(kind);
        assert_eq!(view.try_insert(Rel::B, 7, 8), Ok(0), "{name}");
        assert_eq!(
            view.try_insert(Rel::B, 7, 8),
            Err(UpdateError::DuplicateEdge),
            "{name}"
        );
        assert_eq!(
            view.try_delete(Rel::C, 7, 8),
            Err(UpdateError::MissingEdge),
            "{name}"
        );
        assert_eq!(view.epoch(), 1, "{name}");
    }

    let mut binary = BinaryJoinCountView::new();
    assert_eq!(binary.try_insert_a(1, 2), Ok(0));
    assert_eq!(binary.try_insert_a(1, 2), Err(UpdateError::DuplicateEdge));
    assert_eq!(binary.try_delete_b(2, 1), Err(UpdateError::MissingEdge));
    assert_eq!(binary.epoch(), 1);
}

/// Script of raw (relation, left, right) triples over a small universe;
/// toggle semantics turn it into a well-formed fully dynamic stream.
fn layered_script() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((0u8..4, 0u32..5, 0u32..5), 2..60)
}

fn toggle_layered(script: &[(u8, u32, u32)]) -> Vec<LayeredUpdate> {
    let mut graph = LayeredGraph::new();
    let mut out = Vec::new();
    for &(rel_idx, l, r) in script {
        let rel = Rel::from_index(rel_idx as usize);
        let op = if graph.has_edge(rel, l, r) {
            UpdateOp::Delete
        } else {
            UpdateOp::Insert
        };
        let update = LayeredUpdate {
            op,
            rel,
            left: l,
            right: r,
        };
        graph.apply(&update);
        out.push(update);
    }
    out
}

/// Replays `prefix ++ [corrupted] ++ suffix` where `corrupted` flips the op
/// of the update at `position`, making it ill-formed at exactly that point.
fn corrupt(stream: &[LayeredUpdate], position: usize) -> Vec<LayeredUpdate> {
    let mut out = stream.to_vec();
    let u = &mut out[position];
    u.op = u.op.inverse();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Atomic batch rejection points at the corrupted index, for every
    /// engine kind, and leaves the counter untouched (count, edges, epoch).
    #[test]
    fn batch_rejection_attributes_the_corrupted_index(
        script in layered_script(),
        kind_idx in 0usize..EngineKind::ALL.len(),
        corrupt_pick in 0usize..10_000,
    ) {
        let stream = toggle_layered(&script);
        let position = corrupt_pick % stream.len();
        let corrupted = corrupt(&stream, position);
        let kind = EngineKind::ALL[kind_idx];

        let mut counter = LayeredCycleCounter::new(kind);
        let err = counter
            .try_apply_batch(&corrupted)
            .expect_err("corrupted batch must be rejected");
        prop_assert_eq!(err.index, position, "{}", kind.name());
        // Flipping insert→insert-of-present gives DuplicateEdge; the flip
        // delete→delete-of-absent gives MissingEdge.
        let expected = match corrupted[position].op {
            UpdateOp::Insert => UpdateError::DuplicateEdge,
            UpdateOp::Delete => UpdateError::MissingEdge,
        };
        prop_assert_eq!(err.error, expected);
        // Atomicity: nothing landed.
        prop_assert_eq!(counter.epoch(), 0);
        prop_assert_eq!(counter.total_edges(), 0);
        prop_assert_eq!(counter.count(), 0);

        // The well-formed stream is accepted whole, and the view level
        // agrees on both verdict and attribution.
        prop_assert!(counter.try_apply_batch(&stream).is_ok());
        let mut view = CyclicJoinCountView::new(kind);
        let view_err = view.try_apply_batch(&corrupted).expect_err("same rejection");
        prop_assert_eq!(view_err, BatchError::at(position, expected));
    }

    /// Same attribution property for the binary join view's batch path.
    #[test]
    fn binary_join_batch_rejection_attributes_the_corrupted_index(
        script in proptest::collection::vec((0u8..2, 0u32..4, 0u32..4), 2..40),
        corrupt_pick in 0usize..10_000,
    ) {
        let mut present = std::collections::HashSet::new();
        let stream: Vec<BinaryJoinUpdate> = script
            .iter()
            .map(|&(side_idx, shared, other)| {
                let side = [BinarySide::A, BinarySide::B][side_idx as usize];
                let key = (side, shared, other);
                let op = if present.remove(&key) {
                    UpdateOp::Delete
                } else {
                    present.insert(key);
                    UpdateOp::Insert
                };
                BinaryJoinUpdate { side, op, shared, other }
            })
            .collect();
        let position = corrupt_pick % stream.len();
        let mut corrupted = stream.clone();
        corrupted[position].op = corrupted[position].op.inverse();

        let mut view = BinaryJoinCountView::new();
        let err = view.try_apply_batch(&corrupted).expect_err("rejected");
        prop_assert_eq!(err.index, position);
        prop_assert_eq!(view.snapshot(), Default::default(), "atomic rejection");
        prop_assert!(view.try_apply_batch(&stream).is_ok());
    }
}
