//! Differential property tests for the batch-update pipeline: applying a
//! random fully dynamic stream through `apply_batch` — with arbitrary batch
//! partitions — must be indistinguishable from per-update application, for
//! every `EngineKind`, at the engine level (query grids) and the counter
//! level (counts at every batch boundary).

use fourcycle::core::{
    EngineKind, FourCycleCounter, LayeredCycleCounter, QRel, ThreePathEngine, WarmupEngine,
};
use fourcycle::graph::{GraphUpdate, LayeredGraph, LayeredUpdate, Rel, UpdateOp};
use proptest::prelude::*;

/// Script of raw (relation, left, right) triples over a small universe;
/// toggle semantics turn it into a well-formed fully dynamic stream.
fn layered_script() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((0u8..4, 0u32..6, 0u32..6), 1..140)
}

/// Engine-frame script: relations A/B/C only.
fn engine_script() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((0u8..3, 0u32..6, 0u32..6), 1..140)
}

fn toggle_layered(script: &[(u8, u32, u32)]) -> Vec<LayeredUpdate> {
    let mut graph = LayeredGraph::new();
    let mut out = Vec::new();
    for &(rel_idx, l, r) in script {
        let rel = Rel::from_index(rel_idx as usize);
        let op = if graph.has_edge(rel, l, r) {
            UpdateOp::Delete
        } else {
            UpdateOp::Insert
        };
        let update = LayeredUpdate {
            op,
            rel,
            left: l,
            right: r,
        };
        graph.apply(&update);
        out.push(update);
    }
    out
}

/// Engine-frame toggle: tracks presence per (rel, l, r) to keep the stream
/// well-formed for a single engine.
fn toggle_engine(script: &[(u8, u32, u32)]) -> Vec<(QRel, u32, u32, UpdateOp)> {
    let mut present = std::collections::HashSet::new();
    let mut out = Vec::new();
    for &(rel_idx, l, r) in script {
        let rel = [QRel::A, QRel::B, QRel::C][rel_idx as usize];
        let op = if present.remove(&(rel, l, r)) {
            UpdateOp::Delete
        } else {
            present.insert((rel, l, r));
            UpdateOp::Insert
        };
        out.push((rel, l, r, op));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counter level: for every engine kind, batch application over an
    /// arbitrary partition reproduces the sequential count at every batch
    /// boundary and leaves an identical final state.
    #[test]
    fn counter_batches_match_sequential_for_every_engine_kind(
        script in layered_script(),
        batch_size in 1usize..48,
    ) {
        let stream = toggle_layered(&script);
        for kind in EngineKind::ALL {
            let mut sequential = LayeredCycleCounter::new(kind);
            let mut batched = LayeredCycleCounter::new(kind);
            for batch in stream.chunks(batch_size) {
                let mut seq_count = sequential.count();
                for update in batch {
                    seq_count = sequential.apply(*update).unwrap_or(seq_count);
                }
                let batch_count = batched.apply_batch(batch);
                prop_assert_eq!(
                    batch_count, seq_count,
                    "engine {} diverged at a batch boundary", kind.name()
                );
            }
            prop_assert_eq!(batched.count(), sequential.count(), "{}", kind.name());
            prop_assert_eq!(batched.total_edges(), sequential.total_edges());
            prop_assert_eq!(
                batched.count(),
                batched.graph().count_layered_4cycles_brute_force(),
                "batched count must stay exact for {}", kind.name()
            );
        }
    }

    /// Engine level: `apply_batch` (per-relation sub-batches, arbitrary
    /// partition) leaves every engine kind query-equivalent to per-update
    /// application over the full query grid.
    #[test]
    fn engine_batches_are_query_equivalent(
        script in engine_script(),
        batch_size in 1usize..32,
    ) {
        let stream = toggle_engine(&script);
        for kind in EngineKind::ALL {
            let mut sequential = kind.build();
            let mut batched = kind.build();
            for chunk in stream.chunks(batch_size) {
                for &(rel, l, r, op) in chunk {
                    sequential.apply_update(rel, l, r, op);
                }
                // Group the chunk by relation, preserving order within one.
                for rel in QRel::ALL {
                    let sub: Vec<(u32, u32, UpdateOp)> = chunk
                        .iter()
                        .filter(|&&(r0, ..)| r0 == rel)
                        .map(|&(_, l, r, op)| (l, r, op))
                        .collect();
                    if !sub.is_empty() {
                        batched.apply_batch(rel, &sub);
                    }
                }
            }
            for u in 0..6u32 {
                for v in 0..6u32 {
                    prop_assert_eq!(
                        batched.query(u, v),
                        sequential.query(u, v),
                        "engine {} query ({}, {})", kind.name(), u, v
                    );
                }
            }
        }
    }

    /// The general-graph counter's batch entry point reproduces sequential
    /// application (§8 reduction on top of the layered batch pipeline).
    #[test]
    fn general_counter_batches_match_sequential(script in proptest::collection::vec((0u32..8, 0u32..8), 1..80)) {
        let mut graph = fourcycle::graph::GeneralGraph::new();
        let mut stream = Vec::new();
        for &(u, v) in &script {
            if u == v {
                continue;
            }
            let op = if graph.has_edge(u, v) { UpdateOp::Delete } else { UpdateOp::Insert };
            let update = GraphUpdate { op, u, v };
            graph.apply(&update);
            stream.push(update);
        }
        let mut sequential = FourCycleCounter::new(EngineKind::Fmm);
        for update in &stream {
            sequential.apply(*update);
        }
        let mut batched = FourCycleCounter::new(EngineKind::Fmm);
        let count = batched.apply_batch(&stream);
        prop_assert_eq!(count, sequential.count());
        prop_assert_eq!(count, batched.graph().count_4cycles_brute_force());
    }
}

/// The §3 warm-up engine (not an `EngineKind`, fixed A/C) also honors batch
/// semantics for its `B`-only streams.
#[test]
fn warmup_engine_batches_are_query_equivalent() {
    let a_edges: Vec<(u32, u32)> = (0..12u32).map(|x| (x % 4, x)).collect();
    let c_edges: Vec<(u32, u32)> = (0..12u32).map(|y| (y, 100 + y % 4)).collect();
    let m_hint = a_edges.len() + c_edges.len();
    let mut sequential = WarmupEngine::new(
        a_edges.clone(),
        c_edges.clone(),
        m_hint,
        1.0 / 24.0,
        5.0 / 24.0,
    );
    let mut batched = WarmupEngine::new(a_edges, c_edges, m_hint, 1.0 / 24.0, 5.0 / 24.0);

    // A deterministic toggle stream over B, applied in batches of 13.
    let script: Vec<(u8, u32, u32)> = (0..260u32)
        .map(|i| (1u8, (i * 7 + i / 9) % 12, (i * 5 + 3) % 12))
        .collect();
    let stream: Vec<(QRel, u32, u32, UpdateOp)> = toggle_engine(&script)
        .into_iter()
        .map(|(_, l, r, op)| (QRel::B, l, r, op))
        .collect();
    for chunk in stream.chunks(13) {
        for &(rel, l, r, op) in chunk {
            sequential.apply_update(rel, l, r, op);
        }
        let sub: Vec<(u32, u32, UpdateOp)> =
            chunk.iter().map(|&(_, l, r, op)| (l, r, op)).collect();
        batched.apply_batch(QRel::B, &sub);
    }
    for u in 0..4u32 {
        for v in 100..104u32 {
            assert_eq!(
                batched.query(u, v),
                sequential.query(u, v),
                "query ({u}, {v})"
            );
        }
    }
}
