//! Property test for the command text format under concurrency (ISSUE 4):
//! for random command scripts covering *every* `Request` variant,
//! `render_request` → `parse_request` → pipelined execution through the
//! sharded runtime must be indistinguishable from direct `execute()` calls
//! on a fresh single-threaded `CycleCountService` — response for response,
//! including rejections.
//!
//! This pins three properties at once: the text format round-trips (up to
//! the documented single-update-batch normalization), the runtime's
//! per-graph ordering matches submission order, and fan-out commands
//! (`list`) merge to exactly the single-threaded answer.

use fourcycle::core::{EngineConfig, EngineKind};
use fourcycle::graph::{GraphUpdate, LayeredUpdate, Rel, UpdateOp};
use fourcycle::runtime::{RuntimeConfig, RuntimeError, ScriptSource, ShardedRuntime};
use fourcycle::service::{
    parse_request, render_request, CycleCountService, GraphId, Request, SessionSpec, WorkloadMode,
};
use proptest::prelude::*;

/// One raw command gene: (shape, graph, rel, op, left, right).
type Gene = (u8, u64, u8, u8, u32, u32);

fn scripts() -> impl Strategy<Value = Vec<Gene>> {
    // Small universes on purpose: collisions (duplicate creates, drops of
    // dropped graphs, duplicate edges) are the interesting paths, because
    // rejections must match between the two execution modes too.
    proptest::collection::vec((0u8..10, 0u64..5, 0u8..4, 0u8..2, 1u32..6, 1u32..6), 1..48)
}

fn rel_of(raw: u8) -> Rel {
    Rel::from_index(raw as usize % 4)
}

fn op_of(raw: u8) -> UpdateOp {
    if raw.is_multiple_of(2) {
        UpdateOp::Insert
    } else {
        UpdateOp::Delete
    }
}

/// Expands one gene into a request; the 10 shapes cover all 9 `Request`
/// variants plus the spec-carrying `CreateGraph` form.
fn build_request((shape, graph, rel, op, l, r): Gene) -> Request {
    let id = GraphId(graph);
    let layered = LayeredUpdate {
        op: op_of(op),
        rel: rel_of(rel),
        left: l,
        right: r,
    };
    let general = GraphUpdate {
        op: op_of(op),
        u: l,
        v: r,
    };
    match shape {
        0 => Request::CreateGraph { id, spec: None },
        1 => Request::CreateGraph {
            id,
            spec: Some(SessionSpec {
                kind: EngineKind::ALL[l as usize % EngineKind::ALL.len()],
                config: EngineConfig::default(),
                mode: WorkloadMode::ALL[r as usize % WorkloadMode::ALL.len()],
            }),
        },
        2 => Request::DropGraph { id },
        3 => Request::ApplyLayered {
            id,
            update: layered,
        },
        4 => Request::ApplyLayeredBatch {
            id,
            updates: vec![
                layered,
                LayeredUpdate {
                    op: UpdateOp::Insert,
                    rel: rel_of(rel + 1),
                    left: r,
                    right: l,
                },
                LayeredUpdate {
                    op: op_of(op + 1),
                    rel: rel_of(rel + 2),
                    left: l,
                    right: l,
                },
            ],
        },
        5 => Request::ApplyGeneral {
            id,
            update: general,
        },
        6 => Request::ApplyGeneralBatch {
            id,
            updates: vec![
                general,
                GraphUpdate {
                    op: UpdateOp::Insert,
                    u: l + 1,
                    v: r,
                },
            ],
        },
        7 => Request::Count { id },
        8 => Request::GetSnapshot { id },
        _ => Request::ListGraphs,
    }
}

/// Renders, re-parses, and returns the canonical request the text format
/// carries (single-update batches normalize to single-update commands —
/// semantically identical, documented in `fourcycle_service::command`).
fn through_text(request: &Request) -> Request {
    let line = render_request(request);
    parse_request(&line).unwrap_or_else(|e| panic!("render produced unparseable {line:?}: {e}"))
}

/// Executes the script both ways and asserts identical outcomes.
fn assert_runtime_matches_direct(requests: Vec<Request>, shards: usize) {
    let spec = SessionSpec {
        kind: EngineKind::Simple,
        config: EngineConfig::default(),
        mode: WorkloadMode::Layered,
    };
    let mut direct = CycleCountService::builder()
        .engine(spec.kind)
        .config(spec.config)
        .mode(spec.mode)
        .build();
    let expected: Vec<Result<_, _>> = requests.iter().map(|r| direct.execute(r)).collect();

    let runtime = ShardedRuntime::start(RuntimeConfig::new().shards(shards).spec(spec));
    let outcomes = ScriptSource::from_requests(requests.clone()).replay_pipelined(&runtime);
    runtime.shutdown();

    assert_eq!(outcomes.len(), expected.len());
    for (i, (got, want)) in outcomes.iter().zip(&expected).enumerate() {
        let want = want.clone().map_err(RuntimeError::Service);
        assert_eq!(
            got,
            &want,
            "request #{i} ({}) diverged under {shards}-shard execution",
            render_request(&requests[i]),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random scripts: text round-trip + 2- and 3-shard pipelined execution
    /// all agree with direct single-threaded execution.
    #[test]
    fn rendered_scripts_execute_identically_under_sharding(genes in scripts()) {
        let requests: Vec<Request> = genes.iter().map(|&g| {
            let built = build_request(g);
            let parsed = through_text(&built);
            // The round-trip is identity up to single-update-batch
            // normalization: once through the text format, a request is a
            // fixpoint of render → parse.
            prop_assert_eq!(&through_text(&parsed), &parsed);
            parsed
        }).collect();
        for shards in [2, 3] {
            assert_runtime_matches_direct(requests.clone(), shards);
        }
    }
}

/// Deterministic floor under the property test: one script that provably
/// contains every `Request` variant (and both create forms) executes
/// identically — so variant coverage never depends on random draws.
#[test]
fn every_request_variant_round_trips_through_the_runtime() {
    let requests: Vec<Request> = (0u8..10)
        .flat_map(|shape| {
            [
                build_request((shape, u64::from(shape % 3), 1, 0, 1, 2)),
                build_request((shape, u64::from(shape % 3), 2, 1, 2, 3)),
            ]
        })
        .map(|r| through_text(&r))
        .collect();
    // Every enum variant is present.
    let mut seen = [false; 9];
    for request in &requests {
        let idx = match request {
            Request::CreateGraph { .. } => 0,
            Request::DropGraph { .. } => 1,
            Request::ApplyLayered { .. } => 2,
            Request::ApplyLayeredBatch { .. } => 3,
            Request::ApplyGeneral { .. } => 4,
            Request::ApplyGeneralBatch { .. } => 5,
            Request::Count { .. } => 6,
            Request::GetSnapshot { .. } => 7,
            Request::ListGraphs => 8,
        };
        seen[idx] = true;
    }
    assert_eq!(seen, [true; 9], "script must cover every Request variant");
    for shards in [1, 2, 4] {
        assert_runtime_matches_direct(requests.clone(), shards);
    }
}
