//! Public-API snapshot test: pins the exported service/counter surface
//! against the checked-in listing `tests/api_surface.txt`.
//!
//! Every entry is *pinned twice*: at compile time (the `pin!` expression
//! references the item with its exact signature, so renaming, removing or
//! changing the type of an entry breaks the build) and at run time (the
//! collected names must equal the listing file, so *adding* surface without
//! updating the listing — or silently dropping a pin — fails the test).
//! Changing the canonical API therefore always shows up as a reviewed
//! one-line diff in `api_surface.txt`.

use fourcycle::core::{
    BatchError, EngineConfig, EngineKind, FourCycleCounter, LayeredCycleCounter, SlowPathStats,
    Snapshot, ThreePathEngine, UpdateError,
};
use fourcycle::graph::{GraphUpdate, LayeredUpdate};
use fourcycle::ivm::{BinaryJoinCountView, BinaryJoinUpdate, CyclicJoinCountView, Relation, Value};
use fourcycle::runtime::{RuntimeConfig, RuntimeReport, RuntimeStats, ShardedRuntime};
use fourcycle::server::{Client, ClientError, Server, ServerConfig, ServerStats, WireError};
use fourcycle::service::{
    CheckpointImage, CycleCountService, DetachedSession, GraphId, JournalSink, ParseError, Request,
    Response, ServiceBuilder, ServiceError, SessionImage, SessionSpec, WorkloadMode,
};
use fourcycle::store::{FsyncPolicy, JournalConfig, JournalStore, ShardJournal, StoreError};

/// Records `$name` after forcing a compile-time reference to `$item`
/// (usually a function pointer with the exact public signature).
macro_rules! pin {
    ($names:ident, $name:literal, $item:expr) => {{
        #[allow(clippy::redundant_closure)]
        let _ = $item;
        $names.push($name);
    }};
}

/// Records a type's presence (and `'static`-ness) by name.
fn pin_type<T: 'static>(names: &mut Vec<&'static str>, name: &'static str) {
    let _ = std::any::TypeId::of::<T>();
    names.push(name);
}

fn surface() -> Vec<&'static str> {
    let mut n = Vec::new();

    // --- service layer: the canonical application API -------------------
    pin_type::<CycleCountService>(&mut n, "service::CycleCountService");
    pin_type::<ServiceBuilder>(&mut n, "service::ServiceBuilder");
    pin_type::<GraphId>(&mut n, "service::GraphId");
    pin_type::<WorkloadMode>(&mut n, "service::WorkloadMode");
    pin_type::<SessionSpec>(&mut n, "service::SessionSpec");
    pin_type::<ServiceError>(&mut n, "service::ServiceError");
    pin_type::<Request>(&mut n, "service::Request");
    pin_type::<Response>(&mut n, "service::Response");
    pin_type::<ParseError>(&mut n, "service::ParseError");
    pin!(
        n,
        "service::CycleCountService::builder",
        CycleCountService::builder as fn() -> ServiceBuilder
    );
    pin!(
        n,
        "service::ServiceBuilder::engine",
        ServiceBuilder::engine as fn(ServiceBuilder, EngineKind) -> ServiceBuilder
    );
    pin!(
        n,
        "service::ServiceBuilder::config",
        ServiceBuilder::config as fn(ServiceBuilder, EngineConfig) -> ServiceBuilder
    );
    pin!(
        n,
        "service::ServiceBuilder::mode",
        ServiceBuilder::mode as fn(ServiceBuilder, WorkloadMode) -> ServiceBuilder
    );
    pin!(
        n,
        "service::ServiceBuilder::build",
        ServiceBuilder::build as fn(ServiceBuilder) -> CycleCountService
    );
    pin!(
        n,
        "service::CycleCountService::create_session",
        CycleCountService::create_session
            as fn(&mut CycleCountService, GraphId) -> Result<(), ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::create_session_with",
        CycleCountService::create_session_with
            as fn(&mut CycleCountService, GraphId, SessionSpec) -> Result<(), ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::drop_session",
        CycleCountService::drop_session
            as fn(&mut CycleCountService, GraphId) -> Result<(), ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::count",
        CycleCountService::count as fn(&CycleCountService, GraphId) -> Result<i64, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::epoch",
        CycleCountService::epoch as fn(&CycleCountService, GraphId) -> Result<u64, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::snapshot",
        CycleCountService::snapshot
            as fn(&CycleCountService, GraphId) -> Result<Snapshot, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::try_apply_layered",
        CycleCountService::try_apply_layered
            as fn(&mut CycleCountService, GraphId, LayeredUpdate) -> Result<i64, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::try_apply_layered_batch",
        CycleCountService::try_apply_layered_batch
            as fn(&mut CycleCountService, GraphId, &[LayeredUpdate]) -> Result<i64, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::try_apply_general",
        CycleCountService::try_apply_general
            as fn(&mut CycleCountService, GraphId, GraphUpdate) -> Result<i64, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::try_apply_general_batch",
        CycleCountService::try_apply_general_batch
            as fn(&mut CycleCountService, GraphId, &[GraphUpdate]) -> Result<i64, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::execute",
        CycleCountService::execute
            as fn(&mut CycleCountService, &Request) -> Result<Response, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::execute_all",
        CycleCountService::execute_all
            as fn(&mut CycleCountService, &[Request]) -> Result<Vec<Response>, ServiceError>
    );
    pin!(
        n,
        "service::parse_request",
        fourcycle::service::parse_request as fn(&str) -> Result<Request, ParseError>
    );
    pin!(
        n,
        "service::parse_script",
        fourcycle::service::parse_script as fn(&str) -> Result<Vec<Request>, ParseError>
    );
    pin!(
        n,
        "service::render_request",
        fourcycle::service::render_request as fn(&Request) -> String
    );
    // --- the wire: response framing and the network front door (PR 8) ---
    pin!(
        n,
        "service::render_response",
        fourcycle::service::render_response as fn(&Response) -> String
    );
    pin!(
        n,
        "service::parse_response",
        fourcycle::service::parse_response as fn(&str) -> Result<Response, ParseError>
    );
    pin!(
        n,
        "service::response_extra_lines",
        fourcycle::service::response_extra_lines as fn(&str) -> Result<usize, ParseError>
    );
    pin_type::<Server>(&mut n, "server::Server");
    pin_type::<ServerConfig>(&mut n, "server::ServerConfig");
    pin_type::<ServerStats>(&mut n, "server::ServerStats");
    pin_type::<Client>(&mut n, "server::Client");
    pin_type::<ClientError>(&mut n, "server::ClientError");
    pin_type::<WireError>(&mut n, "server::WireError");
    pin!(
        n,
        "server::Server::start",
        Server::start as fn(ServerConfig, ShardedRuntime) -> std::io::Result<Server>
    );
    pin!(
        n,
        "server::Server::shutdown",
        Server::shutdown as fn(Server) -> RuntimeReport
    );
    pin!(
        n,
        "server::Client::call",
        Client::call as fn(&mut Client, &Request) -> Result<Response, ClientError>
    );
    pin!(
        n,
        "server::Client::pipeline",
        Client::pipeline
            as fn(&mut Client, &[Request]) -> Result<Vec<Result<Response, WireError>>, ClientError>
    );
    pin!(
        n,
        "server::WireError::{code,retryable,command_applied}",
        |e: &WireError| (e.code(), e.retryable(), e.command_applied())
    );

    // --- journaling hook and durable store -------------------------------
    pin_type::<CheckpointImage>(&mut n, "service::CheckpointImage");
    pin_type::<SessionImage>(&mut n, "service::SessionImage");
    fn pin_sink<T: JournalSink>() {}
    let _ = pin_sink::<ShardJournal>;
    n.push("service::JournalSink");
    pin!(
        n,
        "service::Request::is_mutation",
        Request::is_mutation as fn(&Request) -> bool
    );
    pin!(
        n,
        "service::CycleCountService::attach_journal",
        CycleCountService::attach_journal as fn(&mut CycleCountService, Box<dyn JournalSink>)
    );
    pin!(
        n,
        "service::CycleCountService::detach_journal",
        CycleCountService::detach_journal
            as fn(&mut CycleCountService) -> Option<Box<dyn JournalSink>>
    );
    pin!(
        n,
        "service::CycleCountService::sync_journal",
        CycleCountService::sync_journal as fn(&mut CycleCountService) -> Result<(), ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::checkpoint",
        CycleCountService::checkpoint as fn(&mut CycleCountService) -> Result<bool, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::checkpoint_image",
        CycleCountService::checkpoint_image as fn(&CycleCountService) -> CheckpointImage
    );
    pin!(
        n,
        "service::CycleCountService::restore_epoch",
        CycleCountService::restore_epoch
            as fn(&mut CycleCountService, GraphId, u64) -> Result<(), ServiceError>
    );
    // --- intra-shard parallelism and group commit (PR 6) -----------------
    pin_type::<DetachedSession>(&mut n, "service::DetachedSession");
    pin!(
        n,
        "service::DetachedSession::id",
        DetachedSession::id as fn(&DetachedSession) -> GraphId
    );
    pin!(
        n,
        "service::DetachedSession::execute",
        DetachedSession::execute
            as fn(&mut DetachedSession, &Request) -> Result<Response, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::detach_session",
        CycleCountService::detach_session
            as fn(&mut CycleCountService, GraphId) -> Result<DetachedSession, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::reattach_session",
        CycleCountService::reattach_session as fn(&mut CycleCountService, DetachedSession)
    );
    pin!(
        n,
        "service::CycleCountService::journal_record_applied",
        CycleCountService::journal_record_applied
            as fn(&mut CycleCountService, &Request) -> Result<(), ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::journal_commit_group",
        CycleCountService::journal_commit_group
            as fn(&mut CycleCountService) -> Result<u64, ServiceError>
    );
    pin!(
        n,
        "service::CycleCountService::journal_fsyncs",
        CycleCountService::journal_fsyncs as fn(&CycleCountService) -> u64
    );
    pin!(
        n,
        "store::FsyncPolicy::group_commit",
        FsyncPolicy::group_commit as fn() -> FsyncPolicy
    );
    pin!(
        n,
        "runtime::RuntimeConfig::shard_parallelism",
        RuntimeConfig::shard_parallelism as fn(RuntimeConfig, usize) -> RuntimeConfig
    );
    pin!(
        n,
        "runtime::RuntimeConfig::parallelism",
        RuntimeConfig::parallelism as fn(&RuntimeConfig) -> usize
    );
    pin!(
        n,
        "runtime::RuntimeStats::{groups,journal_fsyncs}",
        |s: &RuntimeStats| (s.groups, s.journal_fsyncs)
    );

    pin_type::<JournalConfig>(&mut n, "store::JournalConfig");
    pin_type::<FsyncPolicy>(&mut n, "store::FsyncPolicy");
    pin_type::<JournalStore>(&mut n, "store::JournalStore");
    pin_type::<ShardJournal>(&mut n, "store::ShardJournal");
    pin_type::<StoreError>(&mut n, "store::StoreError");
    pin!(
        n,
        "store::JournalStore::open",
        JournalStore::open
            as fn(JournalConfig, usize, SessionSpec) -> Result<JournalStore, StoreError>
    );
    pin!(
        n,
        "store::JournalStore::resume",
        JournalStore::resume as fn(JournalConfig) -> Result<JournalStore, StoreError>
    );
    pin!(
        n,
        "store::JournalStore::open_shard",
        JournalStore::open_shard
            as fn(&JournalStore, usize) -> Result<CycleCountService, StoreError>
    );
    pin!(
        n,
        "store::JournalStore::recover_shard",
        JournalStore::recover_shard
            as fn(&JournalStore, usize) -> Result<CycleCountService, StoreError>
    );
    pin!(
        n,
        "store::JournalStore::recover",
        JournalStore::recover as fn(&JournalStore) -> Result<CycleCountService, StoreError>
    );

    // --- error model and shared value types -----------------------------
    pin_type::<UpdateError>(&mut n, "core::UpdateError");
    pin_type::<BatchError>(&mut n, "core::BatchError");
    pin_type::<Snapshot>(&mut n, "core::Snapshot");
    pin_type::<SlowPathStats>(&mut n, "core::SlowPathStats");
    pin_type::<EngineKind>(&mut n, "core::EngineKind");
    pin_type::<EngineConfig>(&mut n, "core::EngineConfig");
    pin!(
        n,
        "core::EngineKind::build",
        EngineKind::build as fn(EngineKind) -> Box<dyn ThreePathEngine>
    );
    pin!(
        n,
        "core::EngineKind::build_with",
        EngineKind::build_with as fn(EngineKind, &EngineConfig) -> Box<dyn ThreePathEngine>
    );

    // --- layered counter -------------------------------------------------
    pin!(
        n,
        "core::LayeredCycleCounter::new",
        LayeredCycleCounter::new as fn(EngineKind) -> LayeredCycleCounter
    );
    pin!(
        n,
        "core::LayeredCycleCounter::with_config",
        LayeredCycleCounter::with_config as fn(EngineKind, &EngineConfig) -> LayeredCycleCounter
    );
    pin!(
        n,
        "core::LayeredCycleCounter::apply",
        LayeredCycleCounter::apply as fn(&mut LayeredCycleCounter, LayeredUpdate) -> Option<i64>
    );
    pin!(
        n,
        "core::LayeredCycleCounter::try_apply",
        LayeredCycleCounter::try_apply
            as fn(&mut LayeredCycleCounter, LayeredUpdate) -> Result<i64, UpdateError>
    );
    pin!(
        n,
        "core::LayeredCycleCounter::apply_batch",
        LayeredCycleCounter::apply_batch as fn(&mut LayeredCycleCounter, &[LayeredUpdate]) -> i64
    );
    pin!(
        n,
        "core::LayeredCycleCounter::try_apply_batch",
        LayeredCycleCounter::try_apply_batch
            as fn(&mut LayeredCycleCounter, &[LayeredUpdate]) -> Result<i64, BatchError>
    );
    pin!(
        n,
        "core::LayeredCycleCounter::count",
        LayeredCycleCounter::count as fn(&LayeredCycleCounter) -> i64
    );
    pin!(
        n,
        "core::LayeredCycleCounter::total_edges",
        LayeredCycleCounter::total_edges as fn(&LayeredCycleCounter) -> usize
    );
    pin!(
        n,
        "core::LayeredCycleCounter::work",
        LayeredCycleCounter::work as fn(&LayeredCycleCounter) -> u64
    );
    pin!(
        n,
        "core::LayeredCycleCounter::slow_path_stats",
        LayeredCycleCounter::slow_path_stats as fn(&LayeredCycleCounter) -> SlowPathStats
    );
    pin!(
        n,
        "core::LayeredCycleCounter::epoch",
        LayeredCycleCounter::epoch as fn(&LayeredCycleCounter) -> u64
    );
    pin!(
        n,
        "core::LayeredCycleCounter::snapshot",
        LayeredCycleCounter::snapshot as fn(&LayeredCycleCounter) -> Snapshot
    );

    // --- general counter (§8 reduction) ----------------------------------
    pin!(
        n,
        "core::FourCycleCounter::new",
        FourCycleCounter::new as fn(EngineKind) -> FourCycleCounter
    );
    pin!(
        n,
        "core::FourCycleCounter::with_config",
        FourCycleCounter::with_config as fn(EngineKind, &EngineConfig) -> FourCycleCounter
    );
    pin!(
        n,
        "core::FourCycleCounter::insert",
        FourCycleCounter::insert as fn(&mut FourCycleCounter, u32, u32) -> Option<i64>
    );
    pin!(
        n,
        "core::FourCycleCounter::delete",
        FourCycleCounter::delete as fn(&mut FourCycleCounter, u32, u32) -> Option<i64>
    );
    pin!(
        n,
        "core::FourCycleCounter::try_insert",
        FourCycleCounter::try_insert
            as fn(&mut FourCycleCounter, u32, u32) -> Result<i64, UpdateError>
    );
    pin!(
        n,
        "core::FourCycleCounter::try_delete",
        FourCycleCounter::try_delete
            as fn(&mut FourCycleCounter, u32, u32) -> Result<i64, UpdateError>
    );
    pin!(
        n,
        "core::FourCycleCounter::apply",
        FourCycleCounter::apply as fn(&mut FourCycleCounter, GraphUpdate) -> Option<i64>
    );
    pin!(
        n,
        "core::FourCycleCounter::try_apply",
        FourCycleCounter::try_apply
            as fn(&mut FourCycleCounter, GraphUpdate) -> Result<i64, UpdateError>
    );
    pin!(
        n,
        "core::FourCycleCounter::apply_batch",
        FourCycleCounter::apply_batch as fn(&mut FourCycleCounter, &[GraphUpdate]) -> i64
    );
    pin!(
        n,
        "core::FourCycleCounter::try_apply_batch",
        FourCycleCounter::try_apply_batch
            as fn(&mut FourCycleCounter, &[GraphUpdate]) -> Result<i64, BatchError>
    );
    pin!(
        n,
        "core::FourCycleCounter::count",
        FourCycleCounter::count as fn(&FourCycleCounter) -> i64
    );
    pin!(
        n,
        "core::FourCycleCounter::total_edges",
        FourCycleCounter::total_edges as fn(&FourCycleCounter) -> usize
    );
    pin!(
        n,
        "core::FourCycleCounter::epoch",
        FourCycleCounter::epoch as fn(&FourCycleCounter) -> u64
    );
    pin!(
        n,
        "core::FourCycleCounter::snapshot",
        FourCycleCounter::snapshot as fn(&FourCycleCounter) -> Snapshot
    );

    // --- IVM views --------------------------------------------------------
    pin!(
        n,
        "ivm::CyclicJoinCountView::new",
        CyclicJoinCountView::new as fn(EngineKind) -> CyclicJoinCountView
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::with_config",
        CyclicJoinCountView::with_config as fn(EngineKind, &EngineConfig) -> CyclicJoinCountView
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::insert",
        CyclicJoinCountView::insert
            as fn(&mut CyclicJoinCountView, Relation, Value, Value) -> Option<i64>
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::delete",
        CyclicJoinCountView::delete
            as fn(&mut CyclicJoinCountView, Relation, Value, Value) -> Option<i64>
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::try_insert",
        CyclicJoinCountView::try_insert
            as fn(&mut CyclicJoinCountView, Relation, Value, Value) -> Result<i64, UpdateError>
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::try_delete",
        CyclicJoinCountView::try_delete
            as fn(&mut CyclicJoinCountView, Relation, Value, Value) -> Result<i64, UpdateError>
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::try_apply",
        CyclicJoinCountView::try_apply
            as fn(&mut CyclicJoinCountView, LayeredUpdate) -> Result<i64, UpdateError>
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::apply_batch",
        CyclicJoinCountView::apply_batch as fn(&mut CyclicJoinCountView, &[LayeredUpdate]) -> i64
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::try_apply_batch",
        CyclicJoinCountView::try_apply_batch
            as fn(&mut CyclicJoinCountView, &[LayeredUpdate]) -> Result<i64, BatchError>
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::epoch",
        CyclicJoinCountView::epoch as fn(&CyclicJoinCountView) -> u64
    );
    pin!(
        n,
        "ivm::CyclicJoinCountView::snapshot",
        CyclicJoinCountView::snapshot as fn(&CyclicJoinCountView) -> Snapshot
    );
    pin!(
        n,
        "ivm::BinaryJoinCountView::new",
        BinaryJoinCountView::new as fn() -> BinaryJoinCountView
    );
    pin!(
        n,
        "ivm::BinaryJoinCountView::with_config",
        BinaryJoinCountView::with_config as fn(&EngineConfig) -> BinaryJoinCountView
    );
    pin!(
        n,
        "ivm::BinaryJoinCountView::slow_path_stats",
        BinaryJoinCountView::slow_path_stats as fn(&BinaryJoinCountView) -> SlowPathStats
    );
    pin!(
        n,
        "ivm::BinaryJoinCountView::try_apply",
        BinaryJoinCountView::try_apply
            as fn(&mut BinaryJoinCountView, BinaryJoinUpdate) -> Result<i64, UpdateError>
    );
    pin!(
        n,
        "ivm::BinaryJoinCountView::try_apply_batch",
        BinaryJoinCountView::try_apply_batch
            as fn(&mut BinaryJoinCountView, &[BinaryJoinUpdate]) -> Result<i64, BatchError>
    );
    pin!(
        n,
        "ivm::BinaryJoinCountView::snapshot",
        BinaryJoinCountView::snapshot as fn(&BinaryJoinCountView) -> Snapshot
    );

    n
}

#[test]
fn api_surface_matches_checked_in_listing() {
    let expected: Vec<&str> = include_str!("api_surface.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let actual = surface();
    assert_eq!(
        actual, expected,
        "exported service/counter surface drifted from tests/api_surface.txt — \
         if the change is intentional, update the listing in the same commit"
    );
}
