//! End-to-end acceptance tests for the service layer: catalog scenarios
//! driven through `CycleCountService` against multiple concurrent sessions
//! must agree exactly with driving the underlying counters directly, with
//! epochs counting the applied updates.

use fourcycle::core::{EngineKind, LayeredCycleCounter};
use fourcycle::service::{
    parse_script, CycleCountService, GraphId, Request, Response, ServiceError, WorkloadMode,
};
use fourcycle::workloads::{smoke_catalog, total_updates};

/// Acceptance: a scenario from the catalog runs end-to-end through the
/// service against two concurrent sessions (batches interleaved between
/// them), final counts are identical to driving the counter directly, and
/// each session's `snapshot().epoch` equals the number of applied updates.
#[test]
fn catalog_scenarios_through_two_concurrent_sessions_match_direct_counters() {
    let kind = EngineKind::Threshold;
    for scenario in smoke_catalog(17) {
        let batches = scenario.generate();
        let updates = total_updates(&batches);

        let mut service = CycleCountService::builder()
            .engine(kind)
            .mode(WorkloadMode::Layered)
            .build();
        let tenants = [GraphId(1), GraphId(2)];
        for id in tenants {
            service.create_session(id).unwrap();
        }
        let mut direct = LayeredCycleCounter::new(kind);

        // Interleave: each batch goes to both sessions before the next one,
        // so the two tenants are concurrently mid-stream at all times.
        for batch in &batches {
            for id in tenants {
                let response = service
                    .execute(&Request::ApplyLayeredBatch {
                        id,
                        updates: batch.updates().to_vec(),
                    })
                    .unwrap_or_else(|e| panic!("{}: {e}", scenario.name()));
                assert!(matches!(response, Response::Applied { .. }));
            }
            direct.apply_batch(batch.updates());
        }

        for id in tenants {
            let snapshot = service.snapshot(id).unwrap();
            assert_eq!(
                snapshot.count,
                direct.count(),
                "{}: service session {id} disagrees with the direct counter",
                scenario.name()
            );
            assert_eq!(snapshot.total_edges, direct.total_edges());
            assert_eq!(
                snapshot.epoch,
                updates as u64,
                "{}: epoch must equal the number of applied updates",
                scenario.name()
            );
        }
    }
}

/// The same stream driven through the Join mode (IVM view underneath)
/// yields the same count: the service modes are views over one semantics.
#[test]
fn join_mode_session_agrees_with_layered_mode() {
    let scenario = &smoke_catalog(23)[0];
    let batches = scenario.generate();
    let mut service = CycleCountService::builder()
        .engine(EngineKind::Simple)
        .build();
    service
        .create_session_with(
            GraphId(1),
            fourcycle::service::SessionSpec {
                kind: EngineKind::Simple,
                config: Default::default(),
                mode: WorkloadMode::Layered,
            },
        )
        .unwrap();
    service
        .create_session_with(
            GraphId(2),
            fourcycle::service::SessionSpec {
                kind: EngineKind::Simple,
                config: Default::default(),
                mode: WorkloadMode::Join,
            },
        )
        .unwrap();
    for batch in &batches {
        for id in [GraphId(1), GraphId(2)] {
            service
                .try_apply_layered_batch(id, batch.updates())
                .unwrap();
        }
    }
    let layered = service.snapshot(GraphId(1)).unwrap();
    let join = service.snapshot(GraphId(2)).unwrap();
    assert_eq!(layered.count, join.count);
    assert_eq!(layered.epoch, join.epoch);
}

/// A serialized command stream (the text format) replays against the
/// service and produces first-class errors for ill-formed traffic.
#[test]
fn command_scripts_replay_with_typed_errors() {
    let mut service = CycleCountService::new();
    let responses = service
        .execute_all(
            &parse_script(
                "
                # two tenants, different modes and engines
                create g1 layered simple
                create g2 general threshold
                layered g1 A+1:2 B+2:3 C+3:4 D+4:1
                general g2 +1:2 +2:3 +3:4 +4:1
                count g1
                count g2
                snapshot g2
                list
                ",
            )
            .unwrap(),
        )
        .unwrap();
    assert!(responses.contains(&Response::Count {
        id: GraphId(1),
        count: 1
    }));
    assert!(responses.contains(&Response::Count {
        id: GraphId(2),
        count: 1
    }));
    assert!(responses.contains(&Response::Graphs {
        ids: vec![GraphId(1), GraphId(2)]
    }));

    // Ill-formed traffic surfaces typed errors without corrupting state.
    let duplicate = parse_script("layered g1 A+1:2").unwrap();
    assert_eq!(
        service.execute_all(&duplicate),
        Err(ServiceError::Update(
            fourcycle::service::UpdateError::DuplicateEdge
        ))
    );
    let wrong_mode = parse_script("general g1 +9:10").unwrap();
    assert_eq!(
        service.execute_all(&wrong_mode),
        Err(ServiceError::ModeMismatch {
            id: GraphId(1),
            mode: WorkloadMode::Layered
        })
    );
    let unknown = parse_script("count g99").unwrap();
    assert_eq!(
        service.execute_all(&unknown),
        Err(ServiceError::UnknownGraph(GraphId(99)))
    );
    assert_eq!(service.count(GraphId(1)).unwrap(), 1);
}
