//! Workspace-level integration tests: exercise the public facade API
//! end-to-end across crates (graphs ← workloads → engines → counters → IVM),
//! the way the examples and a downstream user would.

use fourcycle::complexity::{solve_main, OMEGA_CURRENT_BEST, PAPER_EPS_CURRENT};
use fourcycle::core::{EngineKind, FourCycleCounter, LayeredCycleCounter, TriangleCounter};
use fourcycle::graph::Rel;
use fourcycle::ivm::CyclicJoinCountView;
use fourcycle::workloads::{
    parse_layered_trace, render_layered_trace, GeneralStreamConfig, GeneralStreamKind,
    LayeredStreamConfig, LayeredStreamKind,
};

/// End-to-end Theorem 1 pipeline: workload generator → general-graph counter
/// (main algorithm) → brute-force validation, including deletions.
#[test]
fn general_graph_pipeline_with_main_algorithm() {
    let stream = GeneralStreamConfig {
        vertices: 48,
        updates: 500,
        kind: GeneralStreamKind::UniformChurn,
        delete_prob: 0.3,
        seed: 101,
    }
    .generate();
    let mut counter = FourCycleCounter::new(EngineKind::Fmm);
    let mut triangles = TriangleCounter::new();
    for update in &stream {
        counter.apply(*update);
        triangles.apply(*update);
    }
    assert_eq!(counter.count(), counter.graph().count_4cycles_brute_force());
    assert_eq!(
        triangles.count(),
        triangles.graph().count_triangles_brute_force()
    );
}

/// End-to-end Theorem 2 pipeline on a skewed layered stream: all engines
/// produce identical counts and match brute force.
#[test]
fn layered_pipeline_all_engines_agree() {
    let stream = LayeredStreamConfig {
        layer_size: 32,
        updates: 900,
        delete_prob: 0.25,
        kind: LayeredStreamKind::HubSkewed {
            hubs: 2,
            hub_prob: 0.45,
        },
        seed: 202,
    }
    .generate();
    let mut counts = Vec::new();
    for kind in [
        EngineKind::Simple,
        EngineKind::Threshold,
        EngineKind::Fmm,
        EngineKind::FmmDense,
    ] {
        let mut counter = LayeredCycleCounter::new(kind);
        counter.apply_batch(&stream);
        assert_eq!(
            counter.count(),
            counter.graph().count_layered_4cycles_brute_force(),
            "{}",
            kind.name()
        );
        counts.push(counter.count());
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "counts: {counts:?}"
    );
}

/// The trace format round-trips a generated workload, and replaying the
/// parsed trace reproduces the same count (replayable experiments).
#[test]
fn trace_roundtrip_reproduces_counts() {
    let stream = LayeredStreamConfig {
        layer_size: 20,
        updates: 400,
        delete_prob: 0.2,
        kind: LayeredStreamKind::Relational,
        seed: 303,
    }
    .generate();
    let text = render_layered_trace(&stream);
    let parsed = parse_layered_trace(&text).expect("valid trace");
    assert_eq!(parsed, stream);

    let mut direct = LayeredCycleCounter::new(EngineKind::Threshold);
    direct.apply_batch(&stream);
    let mut replayed = LayeredCycleCounter::new(EngineKind::Threshold);
    replayed.apply_batch(&parsed);
    assert_eq!(direct.count(), replayed.count());
}

/// The IVM view (database framing) tracks the same quantity as the layered
/// counter and survives ad-hoc tuple churn.
#[test]
fn ivm_view_tracks_cyclic_join_count() {
    let mut view = CyclicJoinCountView::new(EngineKind::Fmm);
    let stream = LayeredStreamConfig {
        layer_size: 12,
        updates: 500,
        delete_prob: 0.3,
        kind: LayeredStreamKind::Uniform,
        seed: 404,
    }
    .generate();
    for update in &stream {
        view.apply(*update);
    }
    assert_eq!(view.count(), view.recompute_from_scratch());
    // Ad-hoc churn through the relational API.
    view.insert(Rel::A, 0, 0);
    view.insert(Rel::B, 0, 0);
    view.insert(Rel::C, 0, 0);
    view.insert(Rel::D, 0, 0);
    assert_eq!(view.count(), view.recompute_from_scratch());
    view.delete(Rel::B, 0, 0);
    assert_eq!(view.count(), view.recompute_from_scratch());
}

/// The headline numbers of the paper are reproducible through the facade.
#[test]
fn facade_exposes_paper_parameters() {
    let current = solve_main(OMEGA_CURRENT_BEST);
    assert!((current.eps - PAPER_EPS_CURRENT).abs() < 1e-6);
    let ideal = solve_main(2.0);
    assert!((ideal.eps - 1.0 / 24.0).abs() < 1e-12);
    assert_eq!(solve_main(2.5).eps, 0.0);
}
