//! Compile-time thread-safety pins for the sharded runtime's building
//! blocks.
//!
//! The thread-per-shard executor moves whole `CycleCountService` shards
//! (and with them every engine, counter and view) onto worker threads. If
//! any of these types ever grows a `!Send` member (an `Rc`, a raw pointer,
//! a thread-local handle), the runtime would stop compiling — but only
//! through a confusing trait-bound error deep inside `thread::spawn`.
//! These assertions fail the build *at the type that regressed* instead.
//!
//! Nothing here runs: `assert_send` / `assert_sync` monomorphize only if
//! the bound holds, so the whole file is a compile-time proof. The single
//! `#[test]` exists so the proof is visibly part of the test suite.

use fourcycle::core::{
    FmmEngine, FourCycleCounter, LayeredCycleCounter, NaiveEngine, SimpleEngine, ThresholdEngine,
    WarmupEngine,
};
use fourcycle::ivm::{BinaryJoinCountView, CyclicJoinCountView};
use fourcycle::runtime::{Pipeline, RuntimeConfig, RuntimeError, ShardedRuntime, Ticket};
use fourcycle::server::{Client, ClientError, Server, WireError};
use fourcycle::service::{
    CycleCountService, DetachedSession, JournalSink, Request, Response, ServiceError,
};
use fourcycle::store::{ShardJournal, StoreError};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[allow(dead_code)]
fn every_engine_is_send() {
    // All five engines (Fmm serves both the Fmm and FmmDense kinds).
    assert_send::<NaiveEngine>();
    assert_send::<SimpleEngine>();
    assert_send::<ThresholdEngine>();
    assert_send::<FmmEngine>();
    assert_send::<WarmupEngine>();
}

#[allow(dead_code)]
fn both_counters_and_both_views_are_send() {
    assert_send::<LayeredCycleCounter>();
    assert_send::<FourCycleCounter>();
    assert_send::<CyclicJoinCountView>();
    assert_send::<BinaryJoinCountView>();
}

#[allow(dead_code)]
fn the_service_and_runtime_surface_is_send() {
    // A whole service shard moves onto its worker thread…
    assert_send::<CycleCountService>();
    // …commands and outcomes cross the mailbox / reply channels…
    assert_send::<Request>();
    assert_send::<Response>();
    assert_send::<ServiceError>();
    assert_send::<RuntimeError>();
    assert_send::<Ticket>();
    assert_send::<RuntimeConfig>();
    // …and the runtime handle (plus its pipelines) is shared by reference
    // across client threads, so it must be `Sync` too.
    assert_send::<ShardedRuntime>();
    assert_sync::<ShardedRuntime>();
    assert_send::<Pipeline<'_>>();
    // Intra-shard parallelism hands detached sessions to pool workers.
    assert_send::<DetachedSession>();
}

#[allow(dead_code)]
fn the_network_front_door_is_send() {
    // The server handle outlives the thread that started it (an operator
    // thread may own it while signal handling happens elsewhere), and its
    // shared state is referenced from accept/reader/writer threads.
    assert_send::<Server>();
    assert_sync::<Server>();
    // One client per thread is the concurrency model: Send moves a
    // connection into its thread (Sync is deliberately not asserted —
    // a conversation has strict request/reply ordering).
    assert_send::<Client>();
    assert_send::<ClientError>();
    assert_send::<WireError>();
}

#[allow(dead_code)]
fn the_durable_store_is_send() {
    // A journaled service shard (service + attached `Box<dyn JournalSink>`)
    // moves onto its worker thread, so the sink trait object — and the
    // store's concrete sink — must be `Send`. `JournalSink: Send` is a
    // supertrait; these assertions catch it ever being dropped.
    assert_send::<ShardJournal>();
    assert_send::<Box<dyn JournalSink>>();
    assert_send::<StoreError>();
}

/// The compile-time assertions above are the real test; this pins that the
/// file stays wired into the suite.
#[test]
fn send_assertions_compile() {}
