//! `fourcycle` — fully dynamic 4-cycle counting with fast matrix
//! multiplication.
//!
//! This is the facade crate of the workspace reproducing
//! *"An Improved Fully Dynamic Algorithm for Counting 4-Cycles in General
//! Graphs using Fast Matrix Multiplication"* (Assadi & Shah, PODS 2025).
//! It re-exports the workspace crates under stable module names so that
//! applications (and the runnable examples in `examples/`) only need one
//! dependency.
//!
//! # Quick start
//!
//! The canonical application API is the service layer: multi-tenant
//! sessions, typed errors, epoch-consistent snapshots (see
//! `docs/adr/ADR-003-service-api.md`).
//!
//! ```
//! use fourcycle::core::EngineKind;
//! use fourcycle::service::{CycleCountService, GraphId, WorkloadMode};
//!
//! let mut service = CycleCountService::builder()
//!     .engine(EngineKind::Fmm)
//!     .mode(WorkloadMode::General)
//!     .build();
//! let graph = GraphId(1);
//! service.create_session(graph).unwrap();
//! for (u, v) in [(1, 2), (2, 3), (3, 4), (4, 1)] {
//!     service.try_apply_general(graph, fourcycle::graph::GraphUpdate::insert(u, v)).unwrap();
//! }
//! let snapshot = service.snapshot(graph).unwrap();
//! assert_eq!((snapshot.count, snapshot.epoch), (1, 4));
//! ```
//!
//! The underlying counters remain available for single-graph embedding:
//!
//! ```
//! use fourcycle::core::{EngineKind, FourCycleCounter};
//!
//! // Maintain the number of 4-cycles of a general graph under edge
//! // insertions and deletions, using the paper's main algorithm.
//! let mut counter = FourCycleCounter::new(EngineKind::Fmm);
//! counter.insert(1, 2);
//! counter.insert(2, 3);
//! counter.insert(3, 4);
//! counter.insert(4, 1);
//! assert_eq!(counter.count(), 1);
//! counter.delete(2, 3);
//! assert_eq!(counter.count(), 0);
//! ```
//!
//! # Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`graph`] | dynamic layered / general graphs, update types, degree classes |
//! | [`matrix`] | dense/sparse integer matrices, Strassen, incremental products |
//! | [`complexity`] | ω / ω(a,b,c) models, the paper's parameter solver, Appendix B checks |
//! | [`core`] | the counting engines (Appendix A, HHH22-style, §3 warm-up, §4–§7 main) and counters |
//! | [`workloads`] | fully dynamic stream generators and the trace format |
//! | [`ivm`] | cyclic-join count view maintenance (the database framing of §1) |
//! | [`service`] | multi-tenant `CycleCountService`: sessions, commands, typed errors, snapshots |
//! | [`store`] | durable per-shard write-ahead journal, checkpoints, crash recovery |
//! | [`runtime`] | sharded thread-per-shard executor: concurrent service traffic, backpressure, stats |
//! | [`server`] | TCP front door: the command text format over sockets, blocking wire client, stats |
//! | [`telemetry`] | per-stage latency histograms, counters/gauges, bounded event ring, exposition |

pub use fourcycle_complexity as complexity;
pub use fourcycle_core as core;
pub use fourcycle_graph as graph;
pub use fourcycle_ivm as ivm;
pub use fourcycle_matrix as matrix;
pub use fourcycle_runtime as runtime;
pub use fourcycle_server as server;
pub use fourcycle_service as service;
pub use fourcycle_store as store;
pub use fourcycle_telemetry as telemetry;
pub use fourcycle_workloads as workloads;
