//! Update streams over general simple graphs (the Theorem 1 setting).
//!
//! * [`GeneralStreamKind::UniformChurn`] — Erdős–Rényi-style endpoints with a
//!   configurable deletion probability.
//! * [`GeneralStreamKind::PreferentialAttachment`] — growth where new edges
//!   prefer high-degree endpoints (a standard model of social networks, the
//!   motif-counting motivation of §1); optional churn deletes random old
//!   edges.
//! * [`GeneralStreamKind::SlidingWindow`] — each inserted edge expires after
//!   `window` further updates, the classic streaming-window regime.

use fourcycle_graph::{GraphUpdate, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};

/// Which general-graph stream family to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneralStreamKind {
    /// Uniform endpoints with random deletions.
    UniformChurn,
    /// Preferential attachment growth with optional churn.
    PreferentialAttachment {
        /// Probability that an update deletes a random existing edge.
        churn: f64,
    },
    /// Every inserted edge is deleted again after `window` later updates.
    SlidingWindow {
        /// Lifetime of an edge, in updates.
        window: usize,
    },
}

/// Configuration of a general-graph stream.
#[derive(Debug, Clone, Copy)]
pub struct GeneralStreamConfig {
    /// Number of vertices.
    pub vertices: u32,
    /// Number of updates to generate.
    pub updates: usize,
    /// Probability of deleting an existing edge (UniformChurn only).
    pub delete_prob: f64,
    /// Stream family.
    pub kind: GeneralStreamKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneralStreamConfig {
    fn default() -> Self {
        Self {
            vertices: 128,
            updates: 1_000,
            delete_prob: 0.2,
            kind: GeneralStreamKind::UniformChurn,
            seed: 42,
        }
    }
}

impl GeneralStreamConfig {
    /// Generates the stream; every update is well-formed with respect to the
    /// prefix before it.
    pub fn generate(&self) -> Vec<GraphUpdate> {
        match self.kind {
            GeneralStreamKind::UniformChurn => self.generate_uniform(),
            GeneralStreamKind::PreferentialAttachment { churn } => self.generate_pa(churn),
            GeneralStreamKind::SlidingWindow { window } => self.generate_window(window),
        }
    }

    fn canonical(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn generate_uniform(&self) -> Vec<GraphUpdate> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.vertices.max(2);
        let mut present: HashSet<(VertexId, VertexId)> = HashSet::new();
        let mut out = Vec::with_capacity(self.updates);
        let mut guard = 0usize;
        while out.len() < self.updates && guard < self.updates * 50 {
            guard += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = Self::canonical(u, v);
            if present.contains(&key) {
                if rng.gen_bool(self.delete_prob) {
                    present.remove(&key);
                    out.push(GraphUpdate::delete(key.0, key.1));
                }
            } else {
                present.insert(key);
                out.push(GraphUpdate::insert(key.0, key.1));
            }
        }
        out
    }

    fn generate_pa(&self, churn: f64) -> Vec<GraphUpdate> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.vertices.max(2);
        let mut present: HashSet<(VertexId, VertexId)> = HashSet::new();
        let mut edge_list: Vec<(VertexId, VertexId)> = Vec::new();
        // Endpoint pool: each present edge contributes both endpoints, so a
        // uniform draw from the pool is degree-proportional.
        let mut pool: Vec<VertexId> = Vec::new();
        let mut out = Vec::with_capacity(self.updates);
        let mut guard = 0usize;
        while out.len() < self.updates && guard < self.updates * 80 {
            guard += 1;
            if !edge_list.is_empty() && rng.gen_bool(churn.clamp(0.0, 0.95)) {
                let idx = rng.gen_range(0..edge_list.len());
                let (u, v) = edge_list.swap_remove(idx);
                if present.remove(&(u, v)) {
                    out.push(GraphUpdate::delete(u, v));
                    // Lazily leave the endpoints in the pool: the bias decays
                    // over time and the pool stays O(updates).
                }
                continue;
            }
            let u = if pool.is_empty() || rng.gen_bool(0.5) {
                rng.gen_range(0..n)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            let v = if pool.is_empty() || rng.gen_bool(0.1) {
                rng.gen_range(0..n)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if u == v {
                continue;
            }
            let key = Self::canonical(u, v);
            if present.insert(key) {
                edge_list.push(key);
                pool.push(key.0);
                pool.push(key.1);
                out.push(GraphUpdate::insert(key.0, key.1));
            }
        }
        out
    }

    fn generate_window(&self, window: usize) -> Vec<GraphUpdate> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.vertices.max(2);
        let window = window.max(1);
        let mut present: HashSet<(VertexId, VertexId)> = HashSet::new();
        let mut fifo: VecDeque<(VertexId, VertexId)> = VecDeque::new();
        let mut out = Vec::with_capacity(self.updates);
        let mut guard = 0usize;
        while out.len() < self.updates && guard < self.updates * 50 {
            guard += 1;
            if fifo.len() >= window {
                let key = fifo.pop_front().expect("non-empty window");
                present.remove(&key);
                out.push(GraphUpdate::delete(key.0, key.1));
                continue;
            }
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = Self::canonical(u, v);
            if present.insert(key) {
                fifo.push_back(key);
                out.push(GraphUpdate::insert(key.0, key.1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fourcycle_graph::{GeneralGraph, UpdateOp};

    fn well_formed(stream: &[GraphUpdate]) -> (bool, GeneralGraph) {
        let mut g = GeneralGraph::new();
        let ok = stream.iter().all(|u| g.apply(u));
        (ok, g)
    }

    #[test]
    fn uniform_churn_is_well_formed_and_deterministic() {
        let cfg = GeneralStreamConfig {
            updates: 2_000,
            ..Default::default()
        };
        let a = cfg.generate();
        assert_eq!(a, cfg.generate());
        let (ok, _) = well_formed(&a);
        assert!(ok);
        assert!(a.iter().any(|u| u.op == UpdateOp::Delete));
    }

    #[test]
    fn preferential_attachment_creates_skewed_degrees() {
        let cfg = GeneralStreamConfig {
            vertices: 300,
            updates: 3_000,
            kind: GeneralStreamKind::PreferentialAttachment { churn: 0.1 },
            seed: 3,
            ..Default::default()
        };
        let stream = cfg.generate();
        let (ok, g) = well_formed(&stream);
        assert!(ok);
        let mut degrees: Vec<usize> = (0..300u32).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = degrees.iter().take(15).sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top_share * 6 > total,
            "top 5% of vertices should hold well over the uniform ~5% share of \
             the degree mass ({top_share}/{total})"
        );
    }

    #[test]
    fn sliding_window_bounds_live_edges() {
        let window = 64;
        let cfg = GeneralStreamConfig {
            vertices: 64,
            updates: 2_000,
            kind: GeneralStreamKind::SlidingWindow { window },
            seed: 4,
            ..Default::default()
        };
        let stream = cfg.generate();
        let mut g = GeneralGraph::new();
        for u in &stream {
            assert!(g.apply(u));
            assert!(g.edge_count() <= window, "live edges bounded by the window");
        }
        assert!(stream.iter().filter(|u| u.op == UpdateOp::Delete).count() > 100);
    }
}
