//! Parametric scenario generators — named, seeded stress workloads.
//!
//! The plain stream generators ([`crate::layered`], [`crate::general`])
//! sample one statistical family each. A [`Scenario`] is one level up: a
//! *named, documented, reproducible* workload with a specific engineering
//! intent — each built-in scenario targets one of the engines' amortized
//! slow paths (era rebuilds, phase rollovers, class transitions, wedge-table
//! churn) and produces its stream pre-chunked into [`UpdateBatch`]es for the
//! counters' batch pipeline. The catalog (`docs/SCENARIOS.md`) documents
//! which slow path each scenario stresses; the `ScenarioRunner` in
//! `fourcycle-bench` replays them through every engine and asserts via
//! the `fourcycle_core::SlowPathStats` hook that the slow paths actually
//! fired.
//!
//! Built-in scenarios:
//!
//! * [`ZipfScenario`] — power-law-skewed insert stream (hot attribute
//!   values), populating the High/Dense degree classes.
//! * [`SlidingWindowScenario`] — insert + expire over a FIFO window, the
//!   classic streaming regime (bounded live edges, steady delete pressure).
//! * [`ChurnScenario`] — delete-heavy steady state over a warm graph.
//! * [`ThresholdFlapScenario`] — adversarial grow/shrink waves that swing
//!   the edge count past the factor-2 era boundary and flap hub degrees
//!   across the heavy/light class threshold.
//! * [`BurstyMixScenario`] — alternating bursts of dense bipartite blocks
//!   and §8-style replicated general-graph churn, one batch per burst.
//! * [`ProductionReplayScenario`] — a composite that interleaves all of the
//!   above over disjoint id spaces, approximating production traffic.
//! * [`MeshOfStarsScenario`] — degree-bounded mesh-of-stars: many small
//!   interlinked hubs whose degrees stay *below* the heavy/light boundary,
//!   followed by constant-size churn — the anti-flap control regime.
//! * [`HubCollapseScenario`] — one dominant hub far past the heavy
//!   boundary, drained edge-by-edge to zero across the downward era
//!   boundary.
//!
//! All scenarios are deterministic given their seed: the same configuration
//! generates the identical batch sequence on every call.

use crate::player::chunk_layered_stream;
use fourcycle_graph::{LayeredUpdate, Rel, UpdateBatch, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A named, seeded, reproducible workload producing a batched update stream.
///
/// Implementations must be deterministic: two calls to
/// [`generate`](Scenario::generate) on the same value return identical batch
/// sequences, and every update must be well-formed with respect to the
/// stream prefix before it (no duplicate inserts, no deletes of absent
/// edges), so replays through different engines see the same effective
/// stream.
///
/// ```
/// use fourcycle_graph::{LayeredUpdate, Rel, UpdateBatch};
/// use fourcycle_workloads::Scenario;
///
/// /// A minimal scenario: one 4-cycle, inserted in a single batch.
/// struct OneCycle;
///
/// impl Scenario for OneCycle {
///     fn name(&self) -> &'static str {
///         "one-cycle"
///     }
///     fn describe(&self) -> String {
///         "a single layered 4-cycle".into()
///     }
///     fn seed(&self) -> u64 {
///         0
///     }
///     fn generate(&self) -> Vec<UpdateBatch> {
///         let batch: UpdateBatch = vec![
///             LayeredUpdate::insert(Rel::A, 1, 2),
///             LayeredUpdate::insert(Rel::B, 2, 3),
///             LayeredUpdate::insert(Rel::C, 3, 4),
///             LayeredUpdate::insert(Rel::D, 4, 1),
///         ]
///         .into();
///         vec![batch]
///     }
/// }
///
/// let batches = OneCycle.generate();
/// assert_eq!(batches.len(), 1);
/// assert_eq!(batches[0].len(), 4);
/// assert_eq!(OneCycle.generate(), batches, "scenarios are reproducible");
/// ```
pub trait Scenario {
    /// Short, stable scenario name (used in reports and the catalog).
    fn name(&self) -> &'static str;

    /// One-line human-readable parameter summary for reports.
    fn describe(&self) -> String;

    /// The RNG seed the stream is derived from.
    fn seed(&self) -> u64;

    /// Generates the full batched stream. Deterministic given `self`.
    fn generate(&self) -> Vec<UpdateBatch>;
}

/// Total number of updates across a batched stream.
pub fn total_updates(batches: &[UpdateBatch]) -> usize {
    batches.iter().map(UpdateBatch::len).sum()
}

/// Tracks which (relation, left, right) edges are live so generators only
/// emit well-formed updates.
#[derive(Default)]
struct EdgeTracker {
    present: HashSet<(Rel, VertexId, VertexId)>,
}

impl EdgeTracker {
    /// Emits an insert if the edge is absent; returns whether it was emitted.
    fn insert(&mut self, out: &mut Vec<LayeredUpdate>, rel: Rel, l: VertexId, r: VertexId) -> bool {
        if self.present.insert((rel, l, r)) {
            out.push(LayeredUpdate::insert(rel, l, r));
            true
        } else {
            false
        }
    }

    /// Emits a delete if the edge is present; returns whether it was emitted.
    fn delete(&mut self, out: &mut Vec<LayeredUpdate>, rel: Rel, l: VertexId, r: VertexId) -> bool {
        if self.present.remove(&(rel, l, r)) {
            out.push(LayeredUpdate::delete(rel, l, r));
            true
        } else {
            false
        }
    }
}

/// Fisher–Yates shuffle driven by the scenario RNG (the shim `rand` has no
/// `SliceRandom`).
fn shuffle<T>(rng: &mut SmallRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

// ---------------------------------------------------------------------------
// (a) Zipf / power-law skewed inserts
// ---------------------------------------------------------------------------

/// Power-law-skewed insert stream: endpoint `k` is drawn with probability
/// proportional to `1/(k+1)^exponent`, so a handful of hot vertices receive
/// most of the edges — the join-workload regime that populates the High /
/// Dense degree classes (§4, §6) and with them the engines' expensive query
/// cases and class-transition machinery.
#[derive(Debug, Clone, Copy)]
pub struct ZipfScenario {
    /// Vertices per layer.
    pub layer_size: u32,
    /// Number of insertions to generate.
    pub updates: usize,
    /// Skew exponent `s ≥ 0` (`0` = uniform, `1` = classic Zipf).
    pub exponent: f64,
    /// Updates per emitted batch.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfScenario {
    fn default() -> Self {
        Self {
            layer_size: 192,
            updates: 4_000,
            exponent: 1.2,
            batch_size: 256,
            seed: 0xA1,
        }
    }
}

impl ZipfScenario {
    fn pick(&self, rng: &mut SmallRng) -> VertexId {
        let n = self.layer_size.max(2);
        // Rejection sampling: accept k with probability (k+1)^{-s}; k = 0 is
        // always accepted, so the loop terminates with expected O(n / H_n^{(s)})
        // iterations.
        loop {
            let k = rng.gen_range(0..n);
            let accept = (k as f64 + 1.0).powf(-self.exponent.max(0.0));
            if rng.gen_bool(accept) {
                return k;
            }
        }
    }
}

impl Scenario for ZipfScenario {
    fn name(&self) -> &'static str {
        "zipf-skew"
    }

    fn describe(&self) -> String {
        format!(
            "n={}/layer, {} inserts, s={}, batch={}",
            self.layer_size, self.updates, self.exponent, self.batch_size
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn generate(&self) -> Vec<UpdateBatch> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut tracker = EdgeTracker::default();
        let mut out = Vec::with_capacity(self.updates);
        let mut guard = 0usize;
        // Skewed draws collide often; the guard bounds the retry budget so a
        // saturated hot block cannot loop forever.
        while out.len() < self.updates && guard < self.updates.saturating_mul(400) {
            guard += 1;
            let rel = Rel::ALL[rng.gen_range(0..4)];
            let left = self.pick(&mut rng);
            let right = self.pick(&mut rng);
            tracker.insert(&mut out, rel, left, right);
        }
        chunk_layered_stream(&out, self.batch_size)
    }
}

// ---------------------------------------------------------------------------
// (b) Sliding window: insert + expire
// ---------------------------------------------------------------------------

/// Sliding-window stream: uniformly random inserts, and every inserted edge
/// expires (is deleted) once `window` further updates have been emitted.
/// Live edges stay bounded by the window while delete pressure is constant —
/// the steady-state regime of streaming deployments, and a sustained test of
/// the engines' deletion paths ("negative edges", §3.3).
#[derive(Debug, Clone, Copy)]
pub struct SlidingWindowScenario {
    /// Vertices per layer.
    pub layer_size: u32,
    /// Edge lifetime, counted in emitted updates.
    pub window: usize,
    /// Total number of updates (inserts + expiries) to generate.
    pub updates: usize,
    /// Updates per emitted batch.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SlidingWindowScenario {
    fn default() -> Self {
        Self {
            layer_size: 128,
            window: 512,
            updates: 4_000,
            batch_size: 256,
            seed: 0xB2,
        }
    }
}

impl Scenario for SlidingWindowScenario {
    fn name(&self) -> &'static str {
        "sliding-window"
    }

    fn describe(&self) -> String {
        format!(
            "n={}/layer, window={}, {} updates, batch={}",
            self.layer_size, self.window, self.updates, self.batch_size
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn generate(&self) -> Vec<UpdateBatch> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.layer_size.max(2);
        let window = self.window.max(1);
        let mut tracker = EdgeTracker::default();
        let mut fifo: std::collections::VecDeque<(Rel, VertexId, VertexId)> =
            std::collections::VecDeque::new();
        let mut out = Vec::with_capacity(self.updates);
        let mut guard = 0usize;
        while out.len() < self.updates && guard < self.updates.saturating_mul(50) {
            guard += 1;
            if fifo.len() >= window {
                let (rel, l, r) = fifo.pop_front().expect("non-empty window");
                tracker.delete(&mut out, rel, l, r);
                continue;
            }
            let rel = Rel::ALL[rng.gen_range(0..4)];
            let left = rng.gen_range(0..n);
            let right = rng.gen_range(0..n);
            if tracker.insert(&mut out, rel, left, right) {
                fifo.push_back((rel, left, right));
            }
        }
        chunk_layered_stream(&out, self.batch_size)
    }
}

// ---------------------------------------------------------------------------
// (c) Delete-heavy churn
// ---------------------------------------------------------------------------

/// Delete-heavy churn: a warm-up prefix builds a uniform random graph, then
/// the steady state deletes a live edge with probability `delete_prob` and
/// inserts a fresh one otherwise. The graph slowly drains, so the stream
/// leans on the engines' deletion rules and (through the shrinking edge
/// count) the downward half of the factor-2 era rule.
#[derive(Debug, Clone, Copy)]
pub struct ChurnScenario {
    /// Vertices per layer.
    pub layer_size: u32,
    /// Total number of updates (warm-up + steady state).
    pub updates: usize,
    /// Fraction of `updates` spent on the insert-only warm-up prefix.
    pub build_frac: f64,
    /// Steady-state probability of deleting a live edge (> 0.5 drains).
    pub delete_prob: f64,
    /// Updates per emitted batch.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnScenario {
    fn default() -> Self {
        Self {
            layer_size: 128,
            updates: 4_000,
            build_frac: 0.3,
            delete_prob: 0.65,
            batch_size: 256,
            seed: 0xC3,
        }
    }
}

impl Scenario for ChurnScenario {
    fn name(&self) -> &'static str {
        "churn-heavy"
    }

    fn describe(&self) -> String {
        format!(
            "n={}/layer, {} updates, build={:.0}%, p_del={:.2}, batch={}",
            self.layer_size,
            self.updates,
            self.build_frac * 100.0,
            self.delete_prob,
            self.batch_size
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn generate(&self) -> Vec<UpdateBatch> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.layer_size.max(2);
        let warmup = ((self.updates as f64) * self.build_frac.clamp(0.0, 1.0)) as usize;
        let mut tracker = EdgeTracker::default();
        // Live edges in insertion order, for O(1) uniform eviction.
        let mut live: Vec<(Rel, VertexId, VertexId)> = Vec::new();
        let mut out = Vec::with_capacity(self.updates);
        let mut guard = 0usize;
        while out.len() < self.updates && guard < self.updates.saturating_mul(50) {
            guard += 1;
            let deleting = out.len() >= warmup
                && !live.is_empty()
                && rng.gen_bool(self.delete_prob.clamp(0.0, 1.0));
            if deleting {
                let idx = rng.gen_range(0..live.len());
                let (rel, l, r) = live.swap_remove(idx);
                tracker.delete(&mut out, rel, l, r);
            } else {
                let rel = Rel::ALL[rng.gen_range(0..4)];
                let left = rng.gen_range(0..n);
                let right = rng.gen_range(0..n);
                if tracker.insert(&mut out, rel, left, right) {
                    live.push((rel, left, right));
                }
            }
        }
        chunk_layered_stream(&out, self.batch_size)
    }
}

// ---------------------------------------------------------------------------
// (d) Adversarial threshold flapping
// ---------------------------------------------------------------------------

/// Adversarial grow/shrink waves engineered to fire the engines' most
/// expensive amortized paths:
///
/// * each wave grows the edge count to several times its trough and then
///   deletes back down to `keep_frac` of the peak, so the factor-2 era rule
///   (threshold engine `m̂` drift, main engine [`ClassThresholds`] drift)
///   fires on both the way up and the way down;
/// * the wave's edges are spokes around a few persistent hub vertices in
///   `L2`/`L3`, whose degrees (≈ `2·spokes`: `A`-side plus `B`-side) are
///   pushed past the heavy/light boundary `m^{2/3} ≈ (4·hubs·spokes)^{2/3}`
///   near the peak and fall back below it in the trough — repeated class
///   transitions in every wave.
///
/// For the hub degrees to actually cross the boundary, `2·spokes` must
/// exceed `(4·hubs·spokes)^{2/3}`, i.e. `spokes > 2·hubs²`; the default
/// (2 hubs, 64 spokes) satisfies this with an 8× margin.
///
/// [`ClassThresholds`]: fourcycle_graph::ClassThresholds
#[derive(Debug, Clone, Copy)]
pub struct ThresholdFlapScenario {
    /// Persistent hub vertices per middle layer.
    pub hubs: u32,
    /// Peak spokes attached per hub and relation in each wave.
    pub spokes: u32,
    /// Number of grow + shrink waves.
    pub waves: usize,
    /// Fraction of a wave's edges kept at the trough.
    pub keep_frac: f64,
    /// Updates per emitted batch.
    pub batch_size: usize,
    /// RNG seed (drives the deletion order within each wave).
    pub seed: u64,
}

impl Default for ThresholdFlapScenario {
    fn default() -> Self {
        Self {
            hubs: 2,
            spokes: 64,
            waves: 3,
            keep_frac: 0.08,
            batch_size: 128,
            seed: 0xD4,
        }
    }
}

impl Scenario for ThresholdFlapScenario {
    fn name(&self) -> &'static str {
        "threshold-flap"
    }

    fn describe(&self) -> String {
        format!(
            "{} hubs × {} spokes, {} waves, keep={:.0}%, batch={}",
            self.hubs,
            self.spokes,
            self.waves,
            self.keep_frac * 100.0,
            self.batch_size
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn generate(&self) -> Vec<UpdateBatch> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let hubs = self.hubs.max(1);
        let spokes = self.spokes.max(4);
        let mut tracker = EdgeTracker::default();
        let mut out = Vec::new();
        for wave in 0..self.waves.max(1) {
            // Fresh spoke ids per wave (hub ids 0..hubs persist) so kept
            // remnants of earlier waves never collide with new spokes.
            let base = hubs + (wave as u32) * spokes;
            let mut wave_edges: Vec<(Rel, VertexId, VertexId)> = Vec::new();
            let mut grow = |tracker: &mut EdgeTracker,
                            out: &mut Vec<LayeredUpdate>,
                            rel: Rel,
                            l: VertexId,
                            r: VertexId| {
                if tracker.insert(out, rel, l, r) {
                    wave_edges.push((rel, l, r));
                }
            };
            for i in 0..spokes {
                for h in 0..hubs {
                    // Spoke i through hub h: L1 → hub(L2) → hub(L3) → L4.
                    grow(&mut tracker, &mut out, Rel::A, base + i, h);
                    grow(&mut tracker, &mut out, Rel::B, h, base + i);
                    grow(&mut tracker, &mut out, Rel::C, h, base + i);
                    grow(&mut tracker, &mut out, Rel::D, base + i, base + (i % 4));
                }
            }
            // Hub-to-hub core so the spokes compose into live 3-paths.
            for h in 0..hubs {
                grow(&mut tracker, &mut out, Rel::B, h, (h + 1) % hubs.max(2));
            }
            // Shrink: delete all but keep_frac of this wave's edges, in
            // seeded random order, dropping the hubs back below the class
            // boundary and the edge count below half the peak.
            let keep = ((wave_edges.len() as f64) * self.keep_frac.clamp(0.0, 1.0)) as usize;
            shuffle(&mut rng, &mut wave_edges);
            for &(rel, l, r) in wave_edges.iter().skip(keep) {
                tracker.delete(&mut out, rel, l, r);
            }
        }
        chunk_layered_stream(&out, self.batch_size)
    }
}

// ---------------------------------------------------------------------------
// (e) Bursty bipartite / general-graph mix
// ---------------------------------------------------------------------------

/// Bursty traffic alternating between two shapes, one [`UpdateBatch`] per
/// burst (batch boundaries are burst boundaries, so batch sizes vary wildly
/// — the anti-uniform case for the batch pipeline):
///
/// * *bipartite bursts* — a dense biclique block inside a single random
///   relation (rows × cols all-pairs inserts), the shape of bipartite /
///   relational bulk loads, which floods the wedge tables of one relation;
/// * *general bursts* — §8-style replicated churn: an undirected edge
///   `{u, v}` enters (or leaves) all four relations in both orientations,
///   the shape `fourcycle_core::FourCycleCounter` feeds its layered
///   counter.
///
/// The two shapes use disjoint vertex-id ranges, so their streams stay
/// independently well-formed.
#[derive(Debug, Clone, Copy)]
pub struct BurstyMixScenario {
    /// Vertex ids per layer *per shape* (each shape gets its own id range).
    pub layer_size: u32,
    /// Number of bursts (= number of emitted batches).
    pub bursts: usize,
    /// Upper bound on the nominal burst size, in updates.
    pub burst_max: usize,
    /// Probability that a general burst deletes instead of inserts.
    pub delete_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BurstyMixScenario {
    fn default() -> Self {
        Self {
            layer_size: 96,
            bursts: 24,
            burst_max: 256,
            delete_prob: 0.35,
            seed: 0xE5,
        }
    }
}

impl Scenario for BurstyMixScenario {
    fn name(&self) -> &'static str {
        "bursty-mix"
    }

    fn describe(&self) -> String {
        format!(
            "n={}/shape, {} bursts ≤ {} updates, p_del={:.2}",
            self.layer_size, self.bursts, self.burst_max, self.delete_prob
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn generate(&self) -> Vec<UpdateBatch> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.layer_size.max(8);
        let burst_max = self.burst_max.max(8);
        let mut tracker = EdgeTracker::default();
        // Live symmetric general edges (canonical orientation) for deletion.
        let mut sym_live: Vec<(VertexId, VertexId)> = Vec::new();
        let mut batches = Vec::with_capacity(self.bursts);
        for burst in 0..self.bursts.max(1) {
            let mut out = Vec::new();
            // Squaring a unit draw skews burst sizes: many small, few huge.
            let unit = rng.gen_range(0..burst_max) as f64 / burst_max as f64;
            let size = ((unit * unit) * burst_max as f64) as usize + 4;
            if burst % 2 == 0 {
                // Bipartite burst: an all-pairs block in one relation, ids in
                // [0, n).
                let rel = Rel::ALL[rng.gen_range(0..4)];
                let rows = rng.gen_range(2..=(size as u32).min(n / 2).max(2));
                let cols = ((size as u32) / rows).clamp(1, n / 2);
                let row0 = rng.gen_range(0..n - rows.min(n - 1));
                let col0 = rng.gen_range(0..n - cols.min(n - 1));
                for i in 0..rows {
                    for j in 0..cols {
                        tracker.insert(&mut out, rel, row0 + i, col0 + j);
                    }
                }
            } else {
                // General burst: replicated undirected churn, ids in [n, 2n).
                for _ in 0..size / 8 + 1 {
                    if !sym_live.is_empty() && rng.gen_bool(self.delete_prob.clamp(0.0, 1.0)) {
                        let idx = rng.gen_range(0..sym_live.len());
                        let (u, v) = sym_live.swap_remove(idx);
                        for rel in Rel::ALL {
                            tracker.delete(&mut out, rel, u, v);
                            tracker.delete(&mut out, rel, v, u);
                        }
                    } else {
                        let u = n + rng.gen_range(0..n);
                        let v = n + rng.gen_range(0..n);
                        if u == v || tracker.present.contains(&(Rel::A, u, v)) {
                            continue;
                        }
                        for rel in Rel::ALL {
                            tracker.insert(&mut out, rel, u, v);
                            tracker.insert(&mut out, rel, v, u);
                        }
                        sym_live.push((u, v));
                    }
                }
            }
            if !out.is_empty() {
                batches.push(out.into_iter().collect());
            }
        }
        batches
    }
}

// ---------------------------------------------------------------------------
// (f) Composite production replay
// ---------------------------------------------------------------------------

/// Composite "production replay": every other built-in scenario runs over
/// its own disjoint vertex-id plane (component `i` is offset by
/// `i · id_stride`) and their streams are interleaved in seeded random runs,
/// then re-chunked into uniform batches. The result mixes skew, window
/// expiry, drain churn, era-boundary flapping and bursts in one stream — the
/// closest built-in approximation of sustained production traffic, and the
/// default soak workload for scaling PRs.
#[derive(Debug, Clone, Copy)]
pub struct ProductionReplayScenario {
    /// Scale multiplier applied to every component's update count (1 =
    /// component defaults).
    pub scale: f64,
    /// Id-plane stride between components (must exceed every component's
    /// largest vertex id).
    pub id_stride: u32,
    /// Updates per emitted batch.
    pub batch_size: usize,
    /// Longest run of consecutive updates taken from one component.
    pub max_run: usize,
    /// RNG seed (also derives every component's seed).
    pub seed: u64,
}

impl Default for ProductionReplayScenario {
    fn default() -> Self {
        Self {
            scale: 0.5,
            id_stride: 1 << 16,
            batch_size: 512,
            max_run: 32,
            seed: 0xF6,
        }
    }
}

impl ProductionReplayScenario {
    fn component_streams(&self) -> Vec<Vec<LayeredUpdate>> {
        let scale = |updates: usize| ((updates as f64) * self.scale.max(0.01)) as usize + 16;
        let seed = |k: u64| {
            self.seed
                .wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        let components: Vec<Vec<UpdateBatch>> = vec![
            ZipfScenario {
                updates: scale(4_000),
                seed: seed(1),
                ..Default::default()
            }
            .generate(),
            SlidingWindowScenario {
                updates: scale(4_000),
                seed: seed(2),
                ..Default::default()
            }
            .generate(),
            ChurnScenario {
                updates: scale(4_000),
                seed: seed(3),
                ..Default::default()
            }
            .generate(),
            ThresholdFlapScenario {
                waves: 2,
                seed: seed(4),
                ..Default::default()
            }
            .generate(),
            BurstyMixScenario {
                bursts: (24.0 * self.scale.max(0.01)) as usize + 2,
                seed: seed(5),
                ..Default::default()
            }
            .generate(),
        ];
        components
            .into_iter()
            .enumerate()
            .map(|(i, batches)| {
                let offset = (i as u32) * self.id_stride;
                batches
                    .iter()
                    .flat_map(UpdateBatch::iter)
                    .map(|u| LayeredUpdate {
                        left: u.left + offset,
                        right: u.right + offset,
                        ..*u
                    })
                    .collect()
            })
            .collect()
    }
}

impl Scenario for ProductionReplayScenario {
    fn name(&self) -> &'static str {
        "production-replay"
    }

    fn describe(&self) -> String {
        format!(
            "5 components × scale {:.2}, stride {}, runs ≤ {}, batch={}",
            self.scale, self.id_stride, self.max_run, self.batch_size
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn generate(&self) -> Vec<UpdateBatch> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let streams = self.component_streams();
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut cursors = vec![0usize; streams.len()];
        let mut out = Vec::with_capacity(total);
        // Components' id planes are disjoint, so any interleaving of their
        // individually well-formed streams stays well-formed.
        while out.len() < total {
            let live: Vec<usize> = cursors
                .iter()
                .enumerate()
                .filter(|&(i, &c)| c < streams[i].len())
                .map(|(i, _)| i)
                .collect();
            let pick = live[rng.gen_range(0..live.len())];
            let run = rng.gen_range(1..=self.max_run.max(1));
            let end = (cursors[pick] + run).min(streams[pick].len());
            out.extend_from_slice(&streams[pick][cursors[pick]..end]);
            cursors[pick] = end;
        }
        chunk_layered_stream(&out, self.batch_size)
    }
}

// ---------------------------------------------------------------------------
// (g) Topology-realistic regimes: bounded mesh-of-stars & hub collapse
// ---------------------------------------------------------------------------

/// Degree-bounded mesh-of-stars: `stars` small hubs, each with `degree_cap`
/// spokes, where every spoke also links to the *next* star (the "mesh") and
/// closes a private 4-cycle through a leaf — the clustering-coefficient
/// regime of social / co-occurrence graphs, and the **control** workload for
/// the class-transition machinery:
///
/// * every hub's L2 degree is `2·degree_cap + 1` (own spokes + the previous
///   star's mesh links + one mirror edge) while the total edge count is
///   `≈ 4·stars·degree_cap`, so with the defaults the hubs stay *below* the
///   heavy/light boundary `m̂^(2/3)` through every era (`2·cap + 1 <
///   (2·stars·cap)^(2/3)` — worst case is just after an upward rebuild);
/// * a growth phase builds the mesh round-robin (uniform degree growth, era
///   rebuilds fire on the way up), then a churn phase deletes and reinserts
///   mesh / leaf edges at **constant** edge count — no era crossings, no
///   class crossings.
///
/// The expected `SlowPathStats` signature, asserted by the
/// `ScenarioRunner` tests: era rebuilds during growth, then *zero* rebuilds
/// and *zero* class transitions during churn ([`growth_batches`] exposes the
/// phase boundary, which is batch-aligned).
///
/// [`growth_batches`]: MeshOfStarsScenario::growth_batches
#[derive(Debug, Clone, Copy)]
pub struct MeshOfStarsScenario {
    /// Number of hub vertices (stars) in the mesh.
    pub stars: u32,
    /// Spokes per star — the hub degree bound.
    pub degree_cap: u32,
    /// Delete + reinsert rounds in the steady-state churn phase.
    pub churn_rounds: usize,
    /// Updates per emitted batch.
    pub batch_size: usize,
    /// RNG seed (drives only the churn phase; growth is structural).
    pub seed: u64,
}

impl Default for MeshOfStarsScenario {
    fn default() -> Self {
        Self {
            stars: 10,
            degree_cap: 20,
            churn_rounds: 400,
            batch_size: 128,
            seed: 0x3A,
        }
    }
}

impl MeshOfStarsScenario {
    fn spoke(&self, round: u32, star: u32) -> VertexId {
        self.stars.max(1) + round * self.stars.max(1) + star
    }

    fn leaf(&self, round: u32, star: u32) -> VertexId {
        let stars = self.stars.max(1);
        stars + stars * self.degree_cap.max(1) + round * stars + star
    }

    /// The growth-phase and churn-phase update streams, separately.
    fn phases(&self) -> (Vec<LayeredUpdate>, Vec<LayeredUpdate>) {
        let stars = self.stars.max(1);
        let cap = self.degree_cap.max(1);
        let mut tracker = EdgeTracker::default();
        // Growth: round-robin across stars so all hub degrees rise in
        // lockstep (no transient dominant hub).
        let mut growth = Vec::new();
        for round in 0..cap {
            for star in 0..stars {
                let s = self.spoke(round, star);
                let leaf = self.leaf(round, star);
                // Spoke into its own star, plus the mesh link to the next
                // star; the private leaf closes s → star → star(L3) → leaf → s.
                tracker.insert(&mut growth, Rel::A, s, star);
                tracker.insert(&mut growth, Rel::A, s, (star + 1) % stars);
                tracker.insert(&mut growth, Rel::B, star, star);
                tracker.insert(&mut growth, Rel::C, star, leaf);
                tracker.insert(&mut growth, Rel::D, leaf, s);
            }
        }
        // Churn: delete + immediately reinsert a random mesh or leaf edge.
        // Every round is edge-count-neutral, so `m` never drifts and no hub
        // degree moves by more than one transiently.
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut churn = Vec::new();
        for _ in 0..self.churn_rounds {
            let round = rng.gen_range(0..cap);
            let star = rng.gen_range(0..stars);
            let (rel, l, r) = if rng.gen_bool(0.5) {
                (Rel::A, self.spoke(round, star), (star + 1) % stars)
            } else {
                (Rel::C, star, self.leaf(round, star))
            };
            if tracker.delete(&mut churn, rel, l, r) {
                tracker.insert(&mut churn, rel, l, r);
            }
        }
        (growth, churn)
    }

    /// Number of leading batches of [`generate`](Scenario::generate) that
    /// form the growth phase; the remaining batches are steady-state churn.
    /// The phase boundary is batch-aligned, so prefix replays split cleanly.
    pub fn growth_batches(&self) -> usize {
        chunk_layered_stream(&self.phases().0, self.batch_size).len()
    }
}

impl Scenario for MeshOfStarsScenario {
    fn name(&self) -> &'static str {
        "mesh-of-stars"
    }

    fn describe(&self) -> String {
        format!(
            "{} stars × cap {}, {} churn rounds, batch={}",
            self.stars, self.degree_cap, self.churn_rounds, self.batch_size
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn generate(&self) -> Vec<UpdateBatch> {
        let (growth, churn) = self.phases();
        let mut batches = chunk_layered_stream(&growth, self.batch_size);
        batches.extend(chunk_layered_stream(&churn, self.batch_size));
        batches
    }
}

/// Hub collapse: one dominant hub far past the heavy/light boundary
/// (`2·spokes + 1` L2 degree against `m^(2/3)` total boundary), drained
/// edge-by-edge to zero in seeded random order. The drain removes ~3/4 of
/// all edges, so it crosses the downward factor-2 era boundary *and* walks
/// the hub from deep-heavy to isolated — the death-of-a-celebrity regime,
/// and the strongest single-vertex stress of downward class transitions.
///
/// A light background plane (degree-1 edges spread over all four relations)
/// keeps the post-drain graph non-empty so the final era's `m̂` is anchored
/// by real edges rather than zero.
#[derive(Debug, Clone, Copy)]
pub struct HubCollapseScenario {
    /// Spokes attached to the dominant hub (its L2 degree is `2·spokes+1`).
    pub spokes: u32,
    /// Degree-1 background edges that survive the collapse.
    pub background: u32,
    /// Updates per emitted batch.
    pub batch_size: usize,
    /// RNG seed (drives the drain order).
    pub seed: u64,
}

impl Default for HubCollapseScenario {
    fn default() -> Self {
        Self {
            spokes: 96,
            background: 48,
            batch_size: 64,
            seed: 0x4B,
        }
    }
}

impl HubCollapseScenario {
    /// The hub vertex id (L2 via `A`/`B`, L3 via `B`/`C`).
    pub const HUB: VertexId = 0;
}

impl Scenario for HubCollapseScenario {
    fn name(&self) -> &'static str {
        "hub-collapse"
    }

    fn describe(&self) -> String {
        format!(
            "1 hub × {} spokes + {} background, batch={}",
            self.spokes, self.background, self.batch_size
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn generate(&self) -> Vec<UpdateBatch> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let spokes = self.spokes.max(8);
        let mut tracker = EdgeTracker::default();
        let mut out = Vec::new();
        // Background plane: disjoint degree-1 edges rotated across all four
        // relations, in an id range above every hub-star vertex.
        let bg_base = 1 + spokes;
        for j in 0..self.background {
            let rel = Rel::from_index(j as usize % 4);
            tracker.insert(&mut out, rel, bg_base + 2 * j, bg_base + 2 * j + 1);
        }
        // Star build: spoke s runs s → hub(L2) → hub(L3) → s' → D-target,
        // with the hub's self-mirror edge closing live 3-paths, so the star
        // carries real 4-cycles until the drain empties it.
        let mut hub_edges: Vec<(Rel, VertexId, VertexId)> = Vec::new();
        let mut star = |tracker: &mut EdgeTracker,
                        out: &mut Vec<LayeredUpdate>,
                        rel: Rel,
                        l: VertexId,
                        r: VertexId| {
            if tracker.insert(out, rel, l, r) {
                hub_edges.push((rel, l, r));
            }
        };
        star(&mut tracker, &mut out, Rel::B, Self::HUB, Self::HUB);
        for i in 0..spokes {
            let s = 1 + i;
            star(&mut tracker, &mut out, Rel::A, s, Self::HUB);
            star(&mut tracker, &mut out, Rel::B, Self::HUB, s);
            star(&mut tracker, &mut out, Rel::C, Self::HUB, s);
            // D-edges land on the first four spokes-as-L1 and do not touch
            // the hub, so they survive the drain (kept out of `hub_edges`).
            tracker.insert(&mut out, Rel::D, s, 1 + (i % 4));
        }
        // Collapse: every hub-incident edge deleted in seeded random order.
        shuffle(&mut rng, &mut hub_edges);
        for (rel, l, r) in hub_edges {
            tracker.delete(&mut out, rel, l, r);
        }
        chunk_layered_stream(&out, self.batch_size)
    }
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// The full built-in scenario catalog at default (moderate) sizes, every
/// component seeded from `seed`. This is what the `scenarios` experiment
/// binary and the `scenarios` Criterion bench replay; `docs/SCENARIOS.md`
/// documents each entry.
pub fn catalog(seed: u64) -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(ZipfScenario {
            seed,
            ..Default::default()
        }),
        Box::new(SlidingWindowScenario {
            seed,
            ..Default::default()
        }),
        Box::new(ChurnScenario {
            seed,
            ..Default::default()
        }),
        Box::new(ThresholdFlapScenario {
            seed,
            ..Default::default()
        }),
        Box::new(BurstyMixScenario {
            seed,
            ..Default::default()
        }),
        Box::new(ProductionReplayScenario {
            seed,
            ..Default::default()
        }),
        Box::new(MeshOfStarsScenario {
            seed,
            ..Default::default()
        }),
        Box::new(HubCollapseScenario {
            seed,
            ..Default::default()
        }),
    ]
}

/// A scaled-down catalog (hundreds of updates per scenario) small enough to
/// replay through *every* engine kind — including the quadratic reference
/// engines — in tests and smoke benches.
pub fn smoke_catalog(seed: u64) -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(ZipfScenario {
            layer_size: 48,
            updates: 300,
            batch_size: 64,
            seed,
            ..Default::default()
        }),
        Box::new(SlidingWindowScenario {
            layer_size: 32,
            window: 96,
            updates: 300,
            batch_size: 64,
            seed,
        }),
        Box::new(ChurnScenario {
            layer_size: 32,
            updates: 300,
            batch_size: 64,
            seed,
            ..Default::default()
        }),
        Box::new(ThresholdFlapScenario {
            hubs: 1,
            spokes: 24,
            waves: 2,
            batch_size: 48,
            seed,
            ..Default::default()
        }),
        Box::new(BurstyMixScenario {
            layer_size: 24,
            bursts: 8,
            burst_max: 64,
            seed,
            ..Default::default()
        }),
        Box::new(ProductionReplayScenario {
            scale: 0.05,
            batch_size: 128,
            seed,
            ..Default::default()
        }),
        Box::new(MeshOfStarsScenario {
            stars: 8,
            degree_cap: 6,
            churn_rounds: 60,
            batch_size: 48,
            seed,
        }),
        Box::new(HubCollapseScenario {
            spokes: 24,
            background: 12,
            batch_size: 48,
            seed,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fourcycle_graph::{LayeredGraph, UpdateOp};

    fn flatten(batches: &[UpdateBatch]) -> Vec<LayeredUpdate> {
        batches.iter().flat_map(|b| b.iter().copied()).collect()
    }

    fn assert_well_formed(name: &str, batches: &[UpdateBatch]) -> LayeredGraph {
        let mut g = LayeredGraph::new();
        for (i, u) in flatten(batches).iter().enumerate() {
            assert!(g.apply(u), "{name}: ill-formed update #{i}: {u:?}");
        }
        g
    }

    #[test]
    fn every_scenario_is_seed_deterministic_and_well_formed() {
        for (a, b) in smoke_catalog(7).iter().zip(smoke_catalog(7).iter()) {
            assert_eq!(a.name(), b.name());
            let batches = a.generate();
            assert_eq!(
                batches,
                b.generate(),
                "{}: same seed must give identical batches",
                a.name()
            );
            assert!(!batches.is_empty(), "{}: empty stream", a.name());
            assert!(total_updates(&batches) > 0);
            assert_well_formed(a.name(), &batches);
            assert!(!a.describe().is_empty());
        }
        for (a, b) in smoke_catalog(7).iter().zip(smoke_catalog(8).iter()) {
            assert_eq!(a.seed(), 7);
            assert_ne!(
                flatten(&a.generate()),
                flatten(&b.generate()),
                "{}: different seeds must diverge",
                a.name()
            );
        }
    }

    #[test]
    fn catalog_defaults_are_deterministic() {
        // The full-size catalog is what the experiment binary replays; keep
        // this cheap by only generating (not replaying) it.
        for (a, b) in catalog(3).iter().zip(catalog(3).iter()) {
            assert_eq!(
                flatten(&a.generate()),
                flatten(&b.generate()),
                "{}",
                a.name()
            );
        }
    }

    #[test]
    fn zipf_stream_is_insert_only_and_skewed() {
        let stream = flatten(
            &ZipfScenario {
                layer_size: 100,
                updates: 3_000,
                ..Default::default()
            }
            .generate(),
        );
        assert!(stream.iter().all(|u| u.op == UpdateOp::Insert));
        let small = stream.iter().filter(|u| u.left < 10).count();
        let large = stream.iter().filter(|u| u.left >= 90).count();
        assert!(
            small > large * 3,
            "hot attribute values must dominate ({small} vs {large})"
        );
    }

    #[test]
    fn sliding_window_bounds_live_edges() {
        let cfg = SlidingWindowScenario {
            layer_size: 32,
            window: 64,
            updates: 1_500,
            batch_size: 100,
            ..Default::default()
        };
        let mut g = LayeredGraph::new();
        let mut deletes = 0usize;
        for u in flatten(&cfg.generate()) {
            assert!(g.apply(&u));
            assert!(g.total_edges() <= 64, "live edges bounded by the window");
            deletes += (u.op == UpdateOp::Delete) as usize;
        }
        assert!(deletes > 300, "sustained expiry pressure ({deletes})");
    }

    #[test]
    fn churn_is_delete_heavy_after_warmup() {
        let cfg = ChurnScenario {
            updates: 2_000,
            ..Default::default()
        };
        let stream = flatten(&cfg.generate());
        let warmup = (2_000.0 * cfg.build_frac) as usize;
        let steady_deletes = stream[warmup..]
            .iter()
            .filter(|u| u.op == UpdateOp::Delete)
            .count();
        assert!(
            steady_deletes * 2 > stream.len() - warmup,
            "steady state must be delete-majority ({steady_deletes})"
        );
    }

    #[test]
    fn threshold_flap_oscillates_edge_count() {
        let cfg = ThresholdFlapScenario::default();
        let batches = cfg.generate();
        let mut g = LayeredGraph::new();
        let mut peak = 0usize;
        for u in flatten(&batches) {
            assert!(g.apply(&u));
            peak = peak.max(g.total_edges());
        }
        let trough = g.total_edges();
        assert!(
            peak >= trough * 4,
            "waves must swing m past the factor-2 era boundary (peak {peak}, trough {trough})"
        );
        // Hub L2-degree (A-side + B-side spokes) crosses the heavy/light
        // boundary m^(2/3) at the peak.
        let m = peak as f64;
        assert!(
            (2.0 * cfg.spokes as f64) > m.powf(2.0 / 3.0),
            "hub degree {} must exceed peak m^(2/3) ≈ {:.1}",
            2 * cfg.spokes,
            m.powf(2.0 / 3.0)
        );
    }

    #[test]
    fn bursty_mix_has_one_batch_per_burst_and_both_shapes() {
        let cfg = BurstyMixScenario::default();
        let batches = cfg.generate();
        assert!(
            batches.len() >= cfg.bursts / 2,
            "one batch per (non-empty) burst"
        );
        let sizes: Vec<usize> = batches.iter().map(UpdateBatch::len).collect();
        let (min, max) = (
            sizes.iter().min().copied().unwrap_or(0),
            sizes.iter().max().copied().unwrap_or(0),
        );
        assert!(max >= min * 4, "burst sizes must vary ({min}..{max})");
        let stream = flatten(&batches);
        let bipartite_ids = stream.iter().any(|u| u.left < cfg.layer_size);
        let general_ids = stream.iter().any(|u| u.left >= cfg.layer_size);
        assert!(bipartite_ids && general_ids, "both burst shapes present");
        assert_well_formed("bursty-mix", &batches);
    }

    #[test]
    fn production_replay_mixes_all_components() {
        let cfg = ProductionReplayScenario {
            scale: 0.1,
            ..Default::default()
        };
        let batches = cfg.generate();
        assert_well_formed("production-replay", &batches);
        let stream = flatten(&batches);
        for component in 0..5u32 {
            let base = component * cfg.id_stride;
            let hits = stream
                .iter()
                .filter(|u| u.left >= base && u.left < base + cfg.id_stride)
                .count();
            assert!(hits > 0, "component {component} missing from the replay");
        }
        // Re-chunked uniformly: every batch but the last is full.
        assert!(batches[..batches.len() - 1]
            .iter()
            .all(|b| b.len() == cfg.batch_size));
    }

    #[test]
    fn mesh_of_stars_bounds_hub_degrees_and_holds_edge_count_in_churn() {
        let cfg = MeshOfStarsScenario::default();
        let batches = cfg.generate();
        let growth = cfg.growth_batches();
        assert!(
            growth > 0 && growth < batches.len(),
            "both phases must be non-empty ({growth} of {})",
            batches.len()
        );
        let mut g = LayeredGraph::new();
        for b in &batches[..growth] {
            for u in b.iter() {
                assert!(g.apply(u));
            }
        }
        let m_grown = g.total_edges();
        for b in &batches[growth..] {
            for u in b.iter() {
                assert!(g.apply(u));
                // Delete + reinsert pairs: the count never dips by more
                // than one, and every churn round restores it.
                assert!(g.total_edges() >= m_grown - 1);
            }
        }
        assert_eq!(g.total_edges(), m_grown, "churn is edge-count-neutral");
        // Hub L2 degree (own spokes + previous star's mesh links + mirror)
        // stays below the heavy/light boundary even at its worst: just
        // after an upward era rebuild, where m̂ can sit as low as m/2.
        let hub_degree = 2 * cfg.degree_cap + 1;
        let worst_threshold = (m_grown as f64 / 2.0).powf(2.0 / 3.0);
        assert!(
            (hub_degree as f64) < worst_threshold,
            "hub degree {hub_degree} must stay below worst-case threshold {worst_threshold:.1}"
        );
    }

    #[test]
    fn hub_collapse_drains_a_heavy_hub_across_the_era_boundary() {
        let cfg = HubCollapseScenario::default();
        let batches = cfg.generate();
        let mut g = LayeredGraph::new();
        let mut peak = 0usize;
        let mut hub_live = 0i64;
        let mut hub_peak = 0i64;
        for u in flatten(&batches) {
            assert!(g.apply(&u));
            peak = peak.max(g.total_edges());
            // L2-side hub degree: A-edges into the hub plus B-edges out.
            let touches_hub = (u.rel == Rel::A && u.right == HubCollapseScenario::HUB)
                || (u.rel == Rel::B && u.left == HubCollapseScenario::HUB);
            if touches_hub {
                hub_live += if u.op == UpdateOp::Insert { 1 } else { -1 };
                hub_peak = hub_peak.max(hub_live);
            }
        }
        assert_eq!(hub_live, 0, "the hub must be drained to zero degree");
        assert_eq!(hub_peak, 2 * cfg.spokes as i64 + 1);
        // Heavy under *any* era estimate: m̂ never exceeds 2m, so crossing
        // (2·peak)^(2/3) guarantees the hub classifies heavy at the peak.
        let heavy_bound = (2.0 * peak as f64).powf(2.0 / 3.0);
        assert!(
            hub_peak as f64 > heavy_bound,
            "hub degree {hub_peak} must exceed (2·peak)^(2/3) ≈ {heavy_bound:.1}"
        );
        // The drain crosses the downward factor-2 era boundary.
        let final_m = g.total_edges();
        assert!(
            2 * final_m <= peak,
            "collapse must halve the edge count (peak {peak}, final {final_m})"
        );
        assert!(final_m > 0, "background plane survives the collapse");
    }
}
