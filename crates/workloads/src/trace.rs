//! A minimal plain-text trace format for update streams.
//!
//! One update per line:
//!
//! ```text
//! # layered traces
//! + A 12 907      # insert edge (12, 907) into relation A
//! - C 3 44        # delete edge (3, 44) from relation C
//!
//! # general traces
//! + 12 907
//! - 3 44
//! ```
//!
//! Blank lines and `#` comments are ignored. The format exists so that
//! experiment inputs are reproducible artifacts rather than in-memory-only
//! streams, and so traces can be exchanged with external tools.

use fourcycle_graph::{GraphUpdate, LayeredUpdate, Rel, UpdateOp};

/// Renders a layered stream as trace text.
pub fn render_layered_trace(stream: &[LayeredUpdate]) -> String {
    let mut out = String::with_capacity(stream.len() * 12);
    for u in stream {
        let op = match u.op {
            UpdateOp::Insert => '+',
            UpdateOp::Delete => '-',
        };
        let rel = match u.rel {
            Rel::A => 'A',
            Rel::B => 'B',
            Rel::C => 'C',
            Rel::D => 'D',
        };
        out.push_str(&format!("{op} {rel} {} {}\n", u.left, u.right));
    }
    out
}

/// Parses a layered trace; returns a line-indexed error message on malformed
/// input.
pub fn parse_layered_trace(text: &str) -> Result<Vec<LayeredUpdate>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields, got {}",
                lineno + 1,
                parts.len()
            ));
        }
        let op = parse_op(parts[0])
            .ok_or_else(|| format!("line {}: bad op {:?}", lineno + 1, parts[0]))?;
        let rel = match parts[1] {
            "A" => Rel::A,
            "B" => Rel::B,
            "C" => Rel::C,
            "D" => Rel::D,
            other => return Err(format!("line {}: bad relation {:?}", lineno + 1, other)),
        };
        let left = parse_vertex(parts[2], lineno)?;
        let right = parse_vertex(parts[3], lineno)?;
        out.push(LayeredUpdate {
            op,
            rel,
            left,
            right,
        });
    }
    Ok(out)
}

/// Renders a general-graph stream as trace text.
pub fn render_general_trace(stream: &[GraphUpdate]) -> String {
    let mut out = String::with_capacity(stream.len() * 10);
    for u in stream {
        let op = match u.op {
            UpdateOp::Insert => '+',
            UpdateOp::Delete => '-',
        };
        out.push_str(&format!("{op} {} {}\n", u.u, u.v));
    }
    out
}

/// Parses a general-graph trace.
pub fn parse_general_trace(text: &str) -> Result<Vec<GraphUpdate>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(format!(
                "line {}: expected 3 fields, got {}",
                lineno + 1,
                parts.len()
            ));
        }
        let op = parse_op(parts[0])
            .ok_or_else(|| format!("line {}: bad op {:?}", lineno + 1, parts[0]))?;
        let u = parse_vertex(parts[1], lineno)?;
        let v = parse_vertex(parts[2], lineno)?;
        out.push(GraphUpdate { op, u, v });
    }
    Ok(out)
}

fn parse_op(token: &str) -> Option<UpdateOp> {
    match token {
        "+" => Some(UpdateOp::Insert),
        "-" => Some(UpdateOp::Delete),
        _ => None,
    }
}

fn parse_vertex(token: &str, lineno: usize) -> Result<u32, String> {
    token
        .parse::<u32>()
        .map_err(|_| format!("line {}: bad vertex id {:?}", lineno + 1, token))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::GeneralStreamConfig;
    use crate::layered::LayeredStreamConfig;

    #[test]
    fn layered_roundtrip() {
        let stream = LayeredStreamConfig {
            updates: 200,
            ..Default::default()
        }
        .generate();
        let text = render_layered_trace(&stream);
        assert_eq!(parse_layered_trace(&text).unwrap(), stream);
    }

    #[test]
    fn general_roundtrip() {
        let stream = GeneralStreamConfig {
            updates: 200,
            ..Default::default()
        }
        .generate();
        let text = render_general_trace(&stream);
        assert_eq!(parse_general_trace(&text).unwrap(), stream);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n+ A 1 2   # inline comment\n- A 1 2\n";
        let parsed = parse_layered_trace(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].rel, Rel::A);
        assert_eq!(parsed[1].op, UpdateOp::Delete);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        assert!(parse_layered_trace("+ A 1\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_layered_trace("+ E 1 2\n")
            .unwrap_err()
            .contains("bad relation"));
        assert!(parse_general_trace("? 1 2\n")
            .unwrap_err()
            .contains("bad op"));
        assert!(parse_general_trace("+ x 2\n")
            .unwrap_err()
            .contains("bad vertex"));
    }
}
