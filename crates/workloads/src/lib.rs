//! Fully dynamic update-stream generators.
//!
//! The paper's algorithms are defined for *arbitrary* fully dynamic streams;
//! the experiments in this workspace (DESIGN.md §4) evaluate them on the
//! workload families motivated by the paper's introduction:
//!
//! * [`layered`] — streams over 4-layered graphs (the Theorem 2 setting and
//!   the cyclic-join IVM setting): uniform insert/delete mixes, hub-skewed
//!   streams that produce High/Dense vertices, and relation-style workloads
//!   with per-layer domain skew.
//! * [`general`] — streams over general simple graphs (the Theorem 1
//!   setting): Erdős–Rényi-style churn, preferential-attachment growth
//!   (social-network motif counting), and sliding-window streams
//!   (insert + expire) as used in the streaming literature the paper cites.
//! * [`trace`] — a plain-text trace format so experiments are replayable and
//!   streams can be exchanged with other tools.
//! * [`player`] — batched trace playback: groups streams/traces into
//!   `UpdateBatch`es for the counters' and views' batch entry points.
//! * [`scenario`] — named, documented stress scenarios (the [`Scenario`]
//!   trait and the built-in catalog of `docs/SCENARIOS.md`): seeded batched
//!   workloads each engineered to exercise a specific engine slow path
//!   (era rebuilds, phase rollovers, class transitions).
//!
//! All generators are deterministic given their seed.

pub mod general;
pub mod layered;
pub mod player;
pub mod scenario;
pub mod trace;

pub use general::{GeneralStreamConfig, GeneralStreamKind};
pub use layered::{LayeredStreamConfig, LayeredStreamKind};
pub use player::{chunk_layered_stream, parse_layered_trace_batched, TracePlayer};
pub use scenario::{
    catalog, smoke_catalog, total_updates, BurstyMixScenario, ChurnScenario, HubCollapseScenario,
    MeshOfStarsScenario, ProductionReplayScenario, Scenario, SlidingWindowScenario,
    ThresholdFlapScenario, ZipfScenario,
};
pub use trace::{
    parse_general_trace, parse_layered_trace, render_general_trace, render_layered_trace,
};
