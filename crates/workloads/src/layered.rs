//! Update streams over 4-layered graphs.
//!
//! These are the direct inputs of `fourcycle_core::LayeredCycleCounter`
//! (Theorem 2) and, through `fourcycle-ivm`, of the cyclic-join view
//! maintenance scenario of §1/Fig. 1. Three families:
//!
//! * [`LayeredStreamKind::Uniform`] — endpoints drawn uniformly from each
//!   layer; a configurable fraction of updates deletes a currently present
//!   edge (fully dynamic churn).
//! * [`LayeredStreamKind::HubSkewed`] — a small set of hub vertices per layer
//!   attracts a configurable fraction of the endpoints. This is the regime
//!   that actually populates the High/Dense degree classes of §4 and thereby
//!   exercises the interesting query cases.
//! * [`LayeredStreamKind::Relational`] — models four relations whose
//!   attribute values follow a Zipf-like skew, as in join workloads: the
//!   probability of value `k` is proportional to `1/(k+1)`.

use fourcycle_graph::{LayeredUpdate, Rel, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Which layered stream family to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayeredStreamKind {
    /// Uniform endpoints.
    Uniform,
    /// A fraction `hub_prob` of endpoint draws picks one of `hubs` hub
    /// vertices.
    HubSkewed {
        /// Number of hub vertices per layer (low vertex ids).
        hubs: u32,
        /// Probability that an endpoint draw picks a hub.
        hub_prob: f64,
    },
    /// Zipf-like attribute skew (probability of value `k` ∝ `1/(k+1)`).
    Relational,
}

/// Configuration of a layered stream.
#[derive(Debug, Clone, Copy)]
pub struct LayeredStreamConfig {
    /// Vertices per layer.
    pub layer_size: u32,
    /// Number of updates to generate.
    pub updates: usize,
    /// Probability that an update deletes a currently present edge (when one
    /// exists at the drawn position).
    pub delete_prob: f64,
    /// Stream family.
    pub kind: LayeredStreamKind,
    /// RNG seed (streams are deterministic given the seed).
    pub seed: u64,
}

impl Default for LayeredStreamConfig {
    fn default() -> Self {
        Self {
            layer_size: 64,
            updates: 1_000,
            delete_prob: 0.2,
            kind: LayeredStreamKind::Uniform,
            seed: 42,
        }
    }
}

impl LayeredStreamConfig {
    /// Generates the stream. Every update is well-formed with respect to the
    /// graph produced by the prefix before it (no duplicate insertions, no
    /// deletions of absent edges).
    pub fn generate(&self) -> Vec<LayeredUpdate> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut present: HashSet<(Rel, VertexId, VertexId)> = HashSet::new();
        let mut out = Vec::with_capacity(self.updates);
        let mut guard = 0usize;
        while out.len() < self.updates && guard < self.updates * 50 {
            guard += 1;
            let rel = Rel::ALL[rng.gen_range(0..4)];
            let left = self.pick(&mut rng);
            let right = self.pick(&mut rng);
            let key = (rel, left, right);
            if present.contains(&key) {
                if rng.gen_bool(self.delete_prob) {
                    present.remove(&key);
                    out.push(LayeredUpdate::delete(rel, left, right));
                }
            } else {
                present.insert(key);
                out.push(LayeredUpdate::insert(rel, left, right));
            }
        }
        out
    }

    fn pick(&self, rng: &mut SmallRng) -> VertexId {
        let n = self.layer_size.max(1);
        match self.kind {
            LayeredStreamKind::Uniform => rng.gen_range(0..n),
            LayeredStreamKind::HubSkewed { hubs, hub_prob } => {
                if rng.gen_bool(hub_prob.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hubs.clamp(1, n))
                } else {
                    rng.gen_range(0..n)
                }
            }
            LayeredStreamKind::Relational => {
                // Inverse-rank (Zipf-like, s = 1) sampling via rejection.
                loop {
                    let k = rng.gen_range(0..n);
                    let accept = 1.0 / (k as f64 + 1.0);
                    if rng.gen_bool(accept) {
                        return k;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fourcycle_graph::{LayeredGraph, UpdateOp};

    fn well_formed(stream: &[LayeredUpdate]) -> bool {
        let mut g = LayeredGraph::new();
        stream.iter().all(|u| g.apply(u))
    }

    #[test]
    fn uniform_stream_is_well_formed_and_deterministic() {
        let cfg = LayeredStreamConfig {
            updates: 2_000,
            ..Default::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.len(), 2_000);
        assert_eq!(a, b, "same seed ⇒ same stream");
        assert!(well_formed(&a));
        assert!(a.iter().any(|u| u.op == UpdateOp::Delete), "fully dynamic");
    }

    #[test]
    fn different_seeds_differ() {
        let a = LayeredStreamConfig {
            seed: 1,
            ..Default::default()
        }
        .generate();
        let b = LayeredStreamConfig {
            seed: 2,
            ..Default::default()
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn hub_skewed_stream_creates_high_degree_vertices() {
        let cfg = LayeredStreamConfig {
            layer_size: 200,
            updates: 3_000,
            delete_prob: 0.1,
            kind: LayeredStreamKind::HubSkewed {
                hubs: 2,
                hub_prob: 0.6,
            },
            seed: 7,
        };
        let stream = cfg.generate();
        assert!(well_formed(&stream));
        let mut g = LayeredGraph::new();
        for u in &stream {
            g.apply(u);
        }
        let m = g.total_edges() as f64;
        let threshold = m.powf(2.0 / 3.0);
        let max_deg = (0..2u32).map(|v| g.degree_l2(v)).max().unwrap_or(0);
        assert!(
            (max_deg as f64) >= threshold,
            "hub degree {max_deg} should exceed m^(2/3) ≈ {threshold:.1}"
        );
    }

    #[test]
    fn relational_stream_is_skewed_towards_small_ids() {
        let cfg = LayeredStreamConfig {
            layer_size: 100,
            updates: 4_000,
            delete_prob: 0.0,
            kind: LayeredStreamKind::Relational,
            seed: 11,
        };
        let stream = cfg.generate();
        assert!(well_formed(&stream));
        let small = stream.iter().filter(|u| u.left < 10).count();
        let large = stream.iter().filter(|u| u.left >= 90).count();
        assert!(
            small > large * 3,
            "small attribute values must dominate ({small} vs {large})"
        );
    }
}
