//! Batched trace playback.
//!
//! The trace format (`trace.rs`) stores one update per line; replaying a
//! trace update-by-update forfeits the batch entry points of the counters
//! and views. This module groups a parsed stream into [`UpdateBatch`]es of
//! a configured size — mirroring the paper's phase structure of `m^{1−δ}`
//! updates (§5.1) — so that experiment drivers and ingestion pipelines can
//! feed `LayeredCycleCounter::apply_batch` / `CyclicJoinCountView::
//! apply_batch` directly.

use crate::trace::parse_layered_trace;
use fourcycle_graph::{LayeredUpdate, UpdateBatch};

/// Groups a layered update stream into batches of at most `batch_size`
/// updates, preserving order (the last batch may be shorter).
pub fn chunk_layered_stream(stream: &[LayeredUpdate], batch_size: usize) -> Vec<UpdateBatch> {
    let batch_size = batch_size.max(1);
    stream
        .chunks(batch_size)
        .map(|chunk| chunk.iter().copied().collect())
        .collect()
}

/// Parses a layered trace (see [`crate::trace`]) directly into batches of at
/// most `batch_size` updates. Returns the line-indexed parse error on
/// malformed input.
pub fn parse_layered_trace_batched(
    text: &str,
    batch_size: usize,
) -> Result<Vec<UpdateBatch>, String> {
    Ok(chunk_layered_stream(
        &parse_layered_trace(text)?,
        batch_size,
    ))
}

/// An iterator-style player over a layered stream: yields successive
/// batches, tracking how many updates have been dispatched. Useful when the
/// consumer paces ingestion (e.g. one batch per tick) rather than draining
/// the whole trace at once.
#[derive(Debug, Clone)]
pub struct TracePlayer {
    stream: Vec<LayeredUpdate>,
    batch_size: usize,
    cursor: usize,
}

impl TracePlayer {
    /// Creates a player over a stream with the given batch size.
    pub fn new(stream: Vec<LayeredUpdate>, batch_size: usize) -> Self {
        Self {
            stream,
            batch_size: batch_size.max(1),
            cursor: 0,
        }
    }

    /// Creates a player from trace text.
    pub fn from_trace(text: &str, batch_size: usize) -> Result<Self, String> {
        Ok(Self::new(parse_layered_trace(text)?, batch_size))
    }

    /// Number of updates already handed out.
    pub fn dispatched(&self) -> usize {
        self.cursor
    }

    /// Number of updates still queued.
    pub fn remaining(&self) -> usize {
        self.stream.len() - self.cursor
    }

    /// The batch size in use.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

impl Iterator for TracePlayer {
    type Item = UpdateBatch;

    fn next(&mut self) -> Option<UpdateBatch> {
        if self.cursor >= self.stream.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.stream.len());
        let batch: UpdateBatch = self.stream[self.cursor..end].iter().copied().collect();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layered::LayeredStreamConfig;
    use crate::trace::render_layered_trace;

    #[test]
    fn chunking_preserves_order_and_length() {
        let stream = LayeredStreamConfig {
            updates: 250,
            ..Default::default()
        }
        .generate();
        let batches = chunk_layered_stream(&stream, 64);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.last().unwrap().len(), 250 - 3 * 64);
        let rejoined: Vec<_> = batches.iter().flat_map(|b| b.iter().copied()).collect();
        assert_eq!(rejoined, stream);
        // Degenerate batch size is clamped to 1.
        assert_eq!(chunk_layered_stream(&stream, 0).len(), 250);
    }

    #[test]
    fn trace_text_roundtrips_through_batches() {
        let stream = LayeredStreamConfig {
            updates: 100,
            ..Default::default()
        }
        .generate();
        let text = render_layered_trace(&stream);
        let batches = parse_layered_trace_batched(&text, 33).expect("valid trace");
        assert_eq!(batches.len(), 4);
        let rejoined: Vec<_> = batches.iter().flat_map(|b| b.iter().copied()).collect();
        assert_eq!(rejoined, stream);
        assert!(parse_layered_trace_batched("+ A 1\n", 8).is_err());
    }

    #[test]
    fn player_paces_batches() {
        let stream = LayeredStreamConfig {
            updates: 70,
            ..Default::default()
        }
        .generate();
        let mut player = TracePlayer::new(stream.clone(), 32);
        assert_eq!(player.batch_size(), 32);
        assert_eq!(player.remaining(), 70);
        let first = player.next().expect("first batch");
        assert_eq!(first.len(), 32);
        assert_eq!(player.dispatched(), 32);
        assert_eq!(player.remaining(), 38);
        let sizes: Vec<usize> = player.by_ref().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![32, 6]);
        assert!(player.next().is_none());

        let text = render_layered_trace(&stream);
        let replayed: Vec<_> = TracePlayer::from_trace(&text, 32)
            .expect("valid trace")
            .flat_map(|b| b.updates().to_vec())
            .collect();
        assert_eq!(replayed, stream);
    }
}
