//! Machine-checked replay of Appendix B ("Verifying Constraints").
//!
//! Appendix B verifies that the parameter values quoted in the theorems
//! satisfy every constraint, in four settings: the main algorithm and the
//! warm-up algorithm, each under (a) the current best (rectangular) matrix
//! multiplication exponents and (b) the best possible exponents. The two
//! rectangular-exponent evaluations used in setting (a) are quoted by the
//! paper from van den Brand's complexity-term balancer; we reuse those quoted
//! values (crate-root constants) rather than re-deriving the full
//! rectangular-exponent frontier.
//!
//! Every check is returned as a [`ConstraintCheck`] with the evaluated
//! left/right-hand sides so the experiment harness can print them next to
//! the numbers appearing verbatim in the paper (experiment T3).

use crate::model::{IdealModel, MmExponentModel};
use crate::params::{MainParams, WarmupParams};
use crate::{
    OMEGA_CURRENT_BEST, PAPER_EPS1_CURRENT, PAPER_EPS1_IDEAL, PAPER_EPS2_CURRENT, PAPER_EPS2_IDEAL,
    PAPER_EPS_CURRENT, PAPER_EPS_IDEAL, PAPER_OMEGA_RECT_EQ2, PAPER_OMEGA_RECT_EQ5,
};

/// One verified constraint: name, evaluated sides (`lhs ≤ rhs` is the
/// satisfied direction) and the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintCheck {
    /// Constraint name as used in the paper (e.g. `"Eq 9 (substituted)"`).
    pub name: String,
    /// Evaluated left-hand side.
    pub lhs: f64,
    /// Evaluated right-hand side.
    pub rhs: f64,
    /// `lhs ≤ rhs + tol`.
    pub satisfied: bool,
}

impl ConstraintCheck {
    fn new(name: &str, (lhs, rhs): (f64, f64)) -> Self {
        Self {
            name: name.to_string(),
            lhs,
            rhs,
            satisfied: lhs <= rhs + 1e-9,
        }
    }
}

/// Which exponent regime a verification runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// `ω = 2.371339` and the rectangular bounds quoted in Appendix B.
    CurrentBest,
    /// `ω = 2` and `ω(a,b,c) = max(a+b, b+c, a+c)`.
    Ideal,
}

/// Verifies the main-algorithm constraints (Eq 9–11) with the paper's
/// parameter values for the given regime.
pub fn verify_main(regime: Regime) -> Vec<ConstraintCheck> {
    let params = match regime {
        Regime::CurrentBest => MainParams {
            omega: OMEGA_CURRENT_BEST,
            eps: PAPER_EPS_CURRENT,
            delta: 3.0 * PAPER_EPS_CURRENT,
        },
        Regime::Ideal => MainParams {
            omega: 2.0,
            eps: PAPER_EPS_IDEAL,
            delta: 1.0 / 8.0,
        },
    };
    vec![
        ConstraintCheck::new("Eq 11: ε ≤ 1/6", params.eq11()),
        ConstraintCheck::new("Eq 10: 3ε ≤ δ", params.eq10()),
        ConstraintCheck::new("Eq 9: (2ω+1)ε + (ω−1)·2/3 ≤ 1 − δ", params.eq9()),
        ConstraintCheck::new(
            "Eq 9 (substituted): (6ω+12)ε ≤ 3 − 2(ω−1)",
            params.eq9_substituted(),
        ),
    ]
}

/// Verifies the warm-up constraints (Eq 2, 5–8) with the paper's parameter
/// values for the given regime.
pub fn verify_warmup(regime: Regime) -> Vec<ConstraintCheck> {
    let params = match regime {
        Regime::CurrentBest => WarmupParams {
            eps: PAPER_EPS_CURRENT,
            eps1: PAPER_EPS1_CURRENT,
            eps2: PAPER_EPS2_CURRENT,
        },
        Regime::Ideal => WarmupParams {
            eps: PAPER_EPS_IDEAL,
            eps1: PAPER_EPS1_IDEAL,
            eps2: PAPER_EPS2_IDEAL,
        },
    };
    let mut checks = vec![
        ConstraintCheck::new("Eq 8: ε1 − ε2 ≤ 1/3", params.eq8()),
        ConstraintCheck::new("Eq 7: ε1 ≤ 1/6", params.eq7()),
        ConstraintCheck::new("Eq 6: 3ε1 + 2ε ≤ ε2", params.eq6()),
    ];
    match regime {
        Regime::CurrentBest => {
            // Appendix B quotes the two rectangular exponents directly;
            // the check is ω(·,·,·) + 2ε1 ≤ 4/3.
            checks.push(ConstraintCheck::new(
                "Eq 5: ω(2/3+2ε, 1/3−ε1+ε2, 1/3−ε1+ε2) + 2ε1 ≤ 4/3",
                (PAPER_OMEGA_RECT_EQ5 + 2.0 * params.eps1, 4.0 / 3.0),
            ));
            checks.push(ConstraintCheck::new(
                "Eq 2: ω(1/3+ε1, 2/3−ε1, 1/3+ε1) + 2ε1 ≤ 4/3",
                (PAPER_OMEGA_RECT_EQ2 + 2.0 * params.eps1, 4.0 / 3.0),
            ));
        }
        Regime::Ideal => {
            checks.push(ConstraintCheck::new(
                "Eq 5: ω(2/3+2ε, 1/3−ε1+ε2, 1/3−ε1+ε2) ≤ 4/3 − 2ε1",
                params.eq5(&IdealModel),
            ));
            checks.push(ConstraintCheck::new(
                "Eq 2: ω(1/3+ε1, 2/3−ε1, 1/3+ε1) ≤ 4/3 − 2ε1",
                params.eq2(&IdealModel),
            ));
        }
    }
    checks
}

/// Convenience: `true` if every check in the slice is satisfied.
pub fn all_satisfied(checks: &[ConstraintCheck]) -> bool {
    checks.iter().all(|c| c.satisfied)
}

/// Evaluates a rectangular exponent under the ideal model — exposed so the
/// experiment tables can show the ideal-model values next to the quoted
/// current-best ones.
pub fn ideal_rect(a: f64, b: f64, c: f64) -> f64 {
    IdealModel.omega_rect(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_b_main_current_best() {
        let checks = verify_main(Regime::CurrentBest);
        assert!(all_satisfied(&checks), "{checks:?}");
        let eq9 = checks
            .iter()
            .find(|c| c.name.starts_with("Eq 9 (substituted)"))
            .unwrap();
        // The two numbers printed in Appendix B.
        assert!((eq9.lhs - 0.2573206187706).abs() < 1e-9);
        assert!((eq9.rhs - 0.2573220000000003).abs() < 1e-12);
    }

    #[test]
    fn appendix_b_main_ideal() {
        let checks = verify_main(Regime::Ideal);
        assert!(all_satisfied(&checks));
        let eq9 = checks.iter().find(|c| c.name.starts_with("Eq 9:")).unwrap();
        assert!((eq9.lhs - 7.0 / 8.0).abs() < 1e-12);
        assert!((eq9.rhs - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn appendix_b_warmup_current_best() {
        let checks = verify_warmup(Regime::CurrentBest);
        assert!(all_satisfied(&checks), "{checks:?}");
        let eq5 = checks.iter().find(|c| c.name.starts_with("Eq 5")).unwrap();
        // Appendix B: 1.24039952 + 2·0.04201965 = 1.32443882 < 4/3.
        assert!((eq5.lhs - 1.32443882).abs() < 1e-8);
        let eq2 = checks.iter().find(|c| c.name.starts_with("Eq 2")).unwrap();
        // Appendix B: 1.10495201 + 2·0.04201965 = 1.18899131 < 4/3.
        assert!((eq2.lhs - 1.18899131).abs() < 1e-8);
    }

    #[test]
    fn appendix_b_warmup_ideal() {
        let checks = verify_warmup(Regime::Ideal);
        assert!(all_satisfied(&checks), "{checks:?}");
        let eq5 = checks.iter().find(|c| c.name.starts_with("Eq 5")).unwrap();
        // Tight: lhs = rhs = 1.25.
        assert!((eq5.lhs - eq5.rhs).abs() < 1e-12);
        let eq2 = checks.iter().find(|c| c.name.starts_with("Eq 2")).unwrap();
        // ω(1/3+ε1, 2/3−ε1, 1/3+ε1) = 1 under the ideal model.
        assert!((eq2.lhs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_rect_matches_manual_values() {
        assert!((ideal_rect(0.375, 0.625, 0.375) - 1.0).abs() < 1e-12);
        assert!((ideal_rect(0.75, 0.5, 0.5) - 1.25).abs() < 1e-12);
    }
}
