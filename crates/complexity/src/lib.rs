//! Matrix-multiplication exponent models and the parameter/constraint solver
//! of Assadi & Shah (PODS 2025).
//!
//! The paper's quantitative content is a small constraint system:
//!
//! * **Main algorithm (§4):** phases of `m^{1−δ}` updates, update time
//!   `O(m^{2/3−ε})`, subject to
//!   - Eq 9: `1 − δ ≥ (2ω + 1)·ε + (ω − 1)·2/3` (a phase is long enough to
//!     multiply two `m^{2/3+2ε}`-dimensional square matrices),
//!   - Eq 10: `3ε ≤ δ` (iterating pairs of high vertices, one restricted to
//!     the new phase, fits in the update time),
//!   - Eq 11: `ε ≤ 1/6` (class thresholds stay ordered).
//! * **Warm-up algorithm (§3.4):** update time `O(m^{2/3−ε1})`, chunk-local
//!   dense/sparse threshold `m^{1/3−ε2}`, subject to Eq 2, 5, 6, 7, 8, two of
//!   which involve *rectangular* multiplication exponents `ω(a, b, c)`.
//!
//! Solving these with the current square exponent `ω = 2.371339` gives
//! `ε = 0.009811`, `δ = 3ε`, and with the ideal `ω = 2` gives `ε = 1/24`,
//! `δ = 1/8` (Theorems 1–2); the warm-up parameters are
//! `ε1 = 0.04201965`, `ε2 = 0.14568075` (current) and `ε1 = 1/24`,
//! `ε2 = 5/24` (ideal). Appendix B verifies the constraints numerically.
//!
//! This crate reproduces all of that: [`model`] provides pluggable
//! `ω` / `ω(a,b,c)` models, [`solver`] maximises `ε` (resp. `ε1`) under the
//! constraint system, and [`verify`] re-runs every Appendix B check.
//! Experiments T1–T3 (see `DESIGN.md`) are generated directly from these
//! functions.

pub mod model;
pub mod params;
pub mod solver;
pub mod verify;

pub use model::{IdealModel, MmExponentModel, SquareReductionModel};
pub use params::{MainParams, WarmupParams};
pub use solver::{solve_main, solve_warmup, update_time_exponent};
pub use verify::{verify_main, verify_warmup, ConstraintCheck};

/// The best known square matrix-multiplication exponent used by the paper
/// (Alman–Duan–Vassilevska Williams–Xu–Xu–Zhou, SODA 2025).
pub const OMEGA_CURRENT_BEST: f64 = 2.371339;

/// Strassen's exponent, `log2(7)`.
pub const OMEGA_STRASSEN: f64 = 2.807354922057604;

/// The schoolbook exponent.
pub const OMEGA_NAIVE: f64 = 3.0;

/// The lowest conceivable exponent.
pub const OMEGA_IDEAL: f64 = 2.0;

/// The ε claimed by Theorem 1/2 for `ω = 2.371339`.
pub const PAPER_EPS_CURRENT: f64 = 0.0098109;

/// The ε claimed by Theorem 1/2 for `ω = 2`.
pub const PAPER_EPS_IDEAL: f64 = 1.0 / 24.0;

/// The warm-up `ε1` claimed in §3.4 for the current rectangular bounds.
pub const PAPER_EPS1_CURRENT: f64 = 0.04201965;

/// The warm-up `ε2` claimed in §3.4 for the current rectangular bounds.
pub const PAPER_EPS2_CURRENT: f64 = 0.14568075;

/// The warm-up `ε1` claimed in §3.4 for ideal rectangular bounds.
pub const PAPER_EPS1_IDEAL: f64 = 1.0 / 24.0;

/// The warm-up `ε2` claimed in §3.4 for ideal rectangular bounds.
pub const PAPER_EPS2_IDEAL: f64 = 5.0 / 24.0;

/// Rectangular exponent value reported in Appendix B for
/// `ω(1/3+ε1, 2/3−ε1, 1/3+ε1)` at the current-ω parameters (via the
/// complexity term balancer of van den Brand that the paper cites).
pub const PAPER_OMEGA_RECT_EQ2: f64 = 1.10495201;

/// Rectangular exponent value reported in Appendix B for
/// `ω(2/3+2ε, 1/3−ε1+ε2, 1/3−ε1+ε2)` at the current-ω parameters.
pub const PAPER_OMEGA_RECT_EQ5: f64 = 1.24039952;
