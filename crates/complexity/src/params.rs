//! Parameter bundles and the constraint expressions of §3.4 and §4.
//!
//! Every constraint is exposed as an explicit `lhs`/`rhs` pair so that both
//! the solver ([`crate::solver`]) and the Appendix-B verifier
//! ([`crate::verify`]) evaluate *exactly the same* expressions, and so that
//! the experiment tables can print them next to the paper's numbers.

use crate::model::MmExponentModel;

/// Parameters of the main algorithm (§4): update time `O(m^{2/3−ε})`,
/// phases of `m^{1−δ}` updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MainParams {
    /// The square matrix-multiplication exponent assumed.
    pub omega: f64,
    /// Update-time improvement exponent (Theorem 2).
    pub eps: f64,
    /// Phase-length exponent slack (the paper fixes `δ = 3ε`).
    pub delta: f64,
}

impl MainParams {
    /// The update-time exponent `2/3 − ε`.
    pub fn update_exponent(&self) -> f64 {
        2.0 / 3.0 - self.eps
    }

    /// Eq 9 as `(lhs, rhs)` with the satisfied direction `lhs ≤ rhs`:
    /// `(2ω+1)·ε + (ω−1)·2/3 ≤ 1 − δ`.
    pub fn eq9(&self) -> (f64, f64) {
        (
            (2.0 * self.omega + 1.0) * self.eps + (self.omega - 1.0) * 2.0 / 3.0,
            1.0 - self.delta,
        )
    }

    /// Eq 9 in the substituted form Appendix B uses (`δ = 3ε`):
    /// `(6ω + 12)·ε ≤ 3 − 2(ω − 1)`.
    pub fn eq9_substituted(&self) -> (f64, f64) {
        (
            (6.0 * self.omega + 12.0) * self.eps,
            3.0 - 2.0 * (self.omega - 1.0),
        )
    }

    /// Eq 10: `3ε ≤ δ`.
    pub fn eq10(&self) -> (f64, f64) {
        (3.0 * self.eps, self.delta)
    }

    /// Eq 11: `ε ≤ 1/6`.
    pub fn eq11(&self) -> (f64, f64) {
        (self.eps, 1.0 / 6.0)
    }

    /// `true` if all main-algorithm constraints hold (up to `tol`).
    pub fn feasible(&self, tol: f64) -> bool {
        [self.eq9(), self.eq10(), self.eq11()]
            .iter()
            .all(|&(lhs, rhs)| lhs <= rhs + tol)
    }
}

/// Parameters of the warm-up algorithm (§3): update time `O(m^{2/3−ε1})`,
/// chunk-local dense threshold `m^{1/3−ε2}`, given the main algorithm's `ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmupParams {
    /// The main algorithm's ε (the warm-up must be at least as fast, §3.4).
    pub eps: f64,
    /// Warm-up update-time improvement exponent.
    pub eps1: f64,
    /// Chunk-local dense/sparse threshold exponent slack.
    pub eps2: f64,
}

impl WarmupParams {
    /// The warm-up update-time exponent `2/3 − ε1`.
    pub fn update_exponent(&self) -> f64 {
        2.0 / 3.0 - self.eps1
    }

    /// Eq 2: `ω(1/3+ε1, 2/3−ε1, 1/3+ε1) ≤ 4/3 − 2ε1`.
    pub fn eq2<M: MmExponentModel + ?Sized>(&self, model: &M) -> (f64, f64) {
        let a = 1.0 / 3.0 + self.eps1;
        let b = 2.0 / 3.0 - self.eps1;
        (model.omega_rect(a, b, a), 4.0 / 3.0 - 2.0 * self.eps1)
    }

    /// Eq 5: `ω(2/3+2ε, 1/3−ε1+ε2, 1/3−ε1+ε2) ≤ 4/3 − 2ε1`.
    pub fn eq5<M: MmExponentModel + ?Sized>(&self, model: &M) -> (f64, f64) {
        let a = 2.0 / 3.0 + 2.0 * self.eps;
        let b = 1.0 / 3.0 - self.eps1 + self.eps2;
        (model.omega_rect(a, b, b), 4.0 / 3.0 - 2.0 * self.eps1)
    }

    /// Eq 6: `3ε1 + 2ε ≤ ε2`.
    pub fn eq6(&self) -> (f64, f64) {
        (3.0 * self.eps1 + 2.0 * self.eps, self.eps2)
    }

    /// Eq 7: `ε1 ≤ 1/6`.
    pub fn eq7(&self) -> (f64, f64) {
        (self.eps1, 1.0 / 6.0)
    }

    /// Eq 8: `ε1 − ε2 ≤ 1/3`.
    pub fn eq8(&self) -> (f64, f64) {
        (self.eps1 - self.eps2, 1.0 / 3.0)
    }

    /// `true` if all warm-up constraints hold under `model` (up to `tol`).
    pub fn feasible<M: MmExponentModel + ?Sized>(&self, model: &M, tol: f64) -> bool {
        [
            self.eq2(model),
            self.eq5(model),
            self.eq6(),
            self.eq7(),
            self.eq8(),
        ]
        .iter()
        .all(|&(lhs, rhs)| lhs <= rhs + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IdealModel, SquareReductionModel};
    use crate::{OMEGA_CURRENT_BEST, PAPER_EPS_CURRENT, PAPER_EPS_IDEAL};

    #[test]
    fn paper_main_params_are_feasible_current_omega() {
        let p = MainParams {
            omega: OMEGA_CURRENT_BEST,
            eps: PAPER_EPS_CURRENT,
            delta: 3.0 * PAPER_EPS_CURRENT,
        };
        assert!(p.feasible(1e-9));
        let (lhs, rhs) = p.eq9_substituted();
        // Appendix B: 0.2573206187706 ≤ 0.2573220000000003
        assert!((lhs - 0.2573206187706).abs() < 1e-9, "lhs = {lhs}");
        assert!((rhs - 0.2573220000000003).abs() < 1e-9, "rhs = {rhs}");
    }

    #[test]
    fn paper_main_params_are_tight_for_ideal_omega() {
        let p = MainParams {
            omega: 2.0,
            eps: PAPER_EPS_IDEAL,
            delta: 1.0 / 8.0,
        };
        assert!(p.feasible(1e-12));
        let (lhs, rhs) = p.eq9();
        assert!((lhs - 7.0 / 8.0).abs() < 1e-12);
        assert!((rhs - 7.0 / 8.0).abs() < 1e-12);
        assert!((p.update_exponent() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn infeasible_when_eps_too_large() {
        let p = MainParams {
            omega: OMEGA_CURRENT_BEST,
            eps: 0.02,
            delta: 0.06,
        };
        assert!(!p.feasible(1e-9));
    }

    #[test]
    fn warmup_ideal_parameters_are_tight() {
        let w = WarmupParams {
            eps: 1.0 / 24.0,
            eps1: 1.0 / 24.0,
            eps2: 5.0 / 24.0,
        };
        assert!(w.feasible(&IdealModel, 1e-12));
        // Appendix B: ω(2/3+2ε, ·, ·) + 2ε1 = 4/3, i.e. Eq 5 holds with
        // equality (lhs = rhs = 1.25) at the ideal parameters.
        let (lhs, rhs) = w.eq5(&IdealModel);
        assert!((lhs - 1.25).abs() < 1e-12, "lhs = {lhs}");
        assert!(
            (lhs - rhs).abs() < 1e-12,
            "Eq 5 is tight at the ideal parameters"
        );
    }

    #[test]
    fn warmup_eq6_binding_form() {
        let w = WarmupParams {
            eps: 0.01,
            eps1: 0.03,
            eps2: 0.11,
        };
        let (lhs, rhs) = w.eq6();
        assert!((lhs - 0.11).abs() < 1e-12);
        assert!((rhs - 0.11).abs() < 1e-12);
    }

    #[test]
    fn warmup_square_reduction_model_rejects_paper_eps1() {
        // With only the blocking reduction for rectangular products the
        // paper's ε1 (which relies on sharper rectangular bounds) violates
        // Eq 5 — this is exactly the gap DESIGN.md documents.
        let w = WarmupParams {
            eps: PAPER_EPS_CURRENT,
            eps1: crate::PAPER_EPS1_CURRENT,
            eps2: crate::PAPER_EPS2_CURRENT,
        };
        let model = SquareReductionModel::new(OMEGA_CURRENT_BEST);
        let (lhs, rhs) = w.eq5(&model);
        assert!(
            lhs > rhs,
            "blocking reduction is weaker than the paper's rectangular bounds"
        );
    }
}
