//! Matrix-multiplication exponent models.
//!
//! `ω` is the square multiplication exponent (multiplying two `n × n`
//! matrices takes `O(n^ω)`); `ω(a, b, c)` is the rectangular exponent
//! (multiplying `n^a × n^b` by `n^b × n^c` takes `O(n^{ω(a,b,c)})`), §2.1.
//!
//! The paper's results are *parametric in these exponents*: the algorithm is
//! correct for any parameter choice satisfying the constraints, and the
//! achievable `ε` depends on which exponent bounds one assumes. We provide:
//!
//! * [`SquareReductionModel`] — any square exponent `ω`, with rectangular
//!   products bounded by the classical blocking reduction
//!   `ω(a,b,c) ≤ a + b + c − (3 − ω)·min(a,b,c)` (split the two operands into
//!   square blocks of side `n^{min}`). This is what an implementable
//!   library (including our Strassen) actually attains; it is slightly weaker
//!   than the state-of-the-art rectangular bounds the paper cites.
//! * [`IdealModel`] — the information-theoretic optimum `ω = 2`,
//!   `ω(a,b,c) = max(a+b, b+c, a+c)` ("the time it takes to read the input
//!   and write the output", §3.4).
//!
//! Appendix B additionally quotes two concrete rectangular values obtained
//! from the van den Brand complexity-term balancer for the current bounds;
//! those constants live in the crate root and are used by [`crate::verify`]
//! to replay the paper's own arithmetic.

/// A model of (square and rectangular) matrix-multiplication exponents.
pub trait MmExponentModel {
    /// The square exponent ω.
    fn omega(&self) -> f64;

    /// The rectangular exponent ω(a, b, c) for multiplying an
    /// `n^a × n^b` matrix by an `n^b × n^c` matrix.
    fn omega_rect(&self, a: f64, b: f64, c: f64) -> f64;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String;
}

/// Square exponent `ω` with rectangular products via the blocking reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareReductionModel {
    /// The square exponent.
    pub omega: f64,
}

impl SquareReductionModel {
    /// Creates a model for the given square exponent (must lie in `[2, 3]`).
    pub fn new(omega: f64) -> Self {
        assert!((2.0..=3.0).contains(&omega), "ω must lie in [2, 3]");
        Self { omega }
    }
}

impl MmExponentModel for SquareReductionModel {
    fn omega(&self) -> f64 {
        self.omega
    }

    fn omega_rect(&self, a: f64, b: f64, c: f64) -> f64 {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0);
        let min = a.min(b).min(c);
        // Split both operands into n^min × n^min square blocks: there are
        // n^{a+b+c-3min} block products, each costing n^{ω·min}. Reading the
        // input / writing the output is a lower bound, so never report less
        // than max(a+b, b+c, a+c).
        let blocked = a + b + c - (3.0 - self.omega) * min;
        blocked.max(a + b).max(b + c).max(a + c)
    }

    fn name(&self) -> String {
        format!("square-reduction(ω={})", self.omega)
    }
}

/// The best-possible model: `ω = 2` and rectangular products at the cost of
/// reading the input / writing the output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealModel;

impl MmExponentModel for IdealModel {
    fn omega(&self) -> f64 {
        2.0
    }

    fn omega_rect(&self, a: f64, b: f64, c: f64) -> f64 {
        (a + b).max(b + c).max(a + c)
    }

    fn name(&self) -> String {
        "ideal(ω=2)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OMEGA_CURRENT_BEST, OMEGA_STRASSEN};

    #[test]
    fn square_reduction_square_case_recovers_omega() {
        let m = SquareReductionModel::new(OMEGA_CURRENT_BEST);
        assert!((m.omega_rect(1.0, 1.0, 1.0) - OMEGA_CURRENT_BEST).abs() < 1e-12);
        let s = SquareReductionModel::new(OMEGA_STRASSEN);
        assert!((s.omega_rect(1.0, 1.0, 1.0) - OMEGA_STRASSEN).abs() < 1e-12);
    }

    #[test]
    fn ideal_model_square_case_is_two() {
        assert_eq!(IdealModel.omega(), 2.0);
        assert_eq!(IdealModel.omega_rect(1.0, 1.0, 1.0), 2.0);
    }

    #[test]
    fn rect_exponents_respect_io_lower_bound() {
        let m = SquareReductionModel::new(2.1);
        for &(a, b, c) in &[(0.2, 0.9, 0.2), (1.0, 0.1, 1.0), (0.5, 0.5, 1.5)] {
            let w = m.omega_rect(a, b, c);
            assert!(w + 1e-12 >= a + b);
            assert!(w + 1e-12 >= b + c);
            assert!(w + 1e-12 >= a + c);
            // The ideal model is never worse than any real model.
            assert!(IdealModel.omega_rect(a, b, c) <= w + 1e-12);
        }
    }

    #[test]
    fn square_reduction_is_monotone_in_omega() {
        let fast = SquareReductionModel::new(2.2);
        let slow = SquareReductionModel::new(2.9);
        assert!(fast.omega_rect(0.4, 0.7, 0.4) <= slow.omega_rect(0.4, 0.7, 0.4));
    }

    #[test]
    fn names_are_informative() {
        assert!(SquareReductionModel::new(2.5).name().contains("2.5"));
        assert!(IdealModel.name().contains("ω=2"));
    }

    #[test]
    #[should_panic(expected = "ω must lie in [2, 3]")]
    fn rejects_out_of_range_omega() {
        let _ = SquareReductionModel::new(1.9);
    }
}
