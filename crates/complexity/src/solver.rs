//! Solving the paper's constraint systems for the best achievable parameters.
//!
//! * [`solve_main`] maximises the main algorithm's `ε` subject to Eq 9–11
//!   (§4). With `δ = 3ε` (Eq 10 tight) the system collapses to the closed
//!   form `ε = (5 − 2ω) / (6ω + 12)`, which yields `0.0098109…` for
//!   `ω = 2.371339` and `1/24` for `ω = 2`, and becomes non-positive exactly
//!   when `ω ≥ 2.5` — the paper's "any bound better than 3, like Strassen's,
//!   is not sufficient" observation.
//! * [`solve_warmup`] maximises the warm-up algorithm's `ε1` subject to
//!   Eq 2, 5–8 (§3.4) given `ε`, with `ε2 = 3ε1 + 2ε` (Eq 6 tight), under a
//!   pluggable rectangular-exponent model.

use crate::model::MmExponentModel;
use crate::params::{MainParams, WarmupParams};

/// Numerical tolerance used by the feasibility checks.
const TOL: f64 = 1e-12;

/// Maximises `ε` for the main algorithm under square exponent `ω`.
///
/// Returns parameters with `ε = 0` (no improvement over `O(m^{2/3})`) when
/// the constraints admit no positive `ε`, i.e. when `ω ≥ 2.5`.
pub fn solve_main(omega: f64) -> MainParams {
    assert!((2.0..=3.0).contains(&omega), "ω must lie in [2, 3]");
    // δ = 3ε (Eq 10 tight); Eq 9 becomes (6ω + 12)ε ≤ 3 − 2(ω − 1).
    let eps_eq9 = (5.0 - 2.0 * omega) / (6.0 * omega + 12.0);
    let eps = eps_eq9.clamp(0.0, 1.0 / 6.0);
    let params = MainParams {
        omega,
        eps,
        delta: 3.0 * eps,
    };
    // For ω ≥ 2.5 the system has no feasible positive ε; ε = 0 then means
    // "no improvement — fall back to the O(m^{2/3}) algorithm" and the phase
    // machinery (Eq 9) is not used at all, so feasibility is only meaningful
    // when an improvement exists.
    debug_assert!(eps == 0.0 || params.feasible(TOL));
    params
}

/// The update-time exponent `2/3 − ε` achieved under square exponent `ω`.
pub fn update_time_exponent(omega: f64) -> f64 {
    solve_main(omega).update_exponent()
}

/// Maximises `ε1` for the warm-up algorithm (§3) given the main algorithm's
/// `ε`, under the provided rectangular-exponent model. `ε2` is set to
/// `3ε1 + 2ε` (Eq 6 tight, as in the paper).
///
/// The feasible set of `ε1` is a (possibly empty) prefix interval `[0, ε1*]`
/// because every constraint's slack is monotone non-increasing in `ε1`; the
/// maximum is located by bisection.
pub fn solve_warmup<M: MmExponentModel + ?Sized>(model: &M, eps: f64) -> WarmupParams {
    assert!((0.0..=1.0 / 6.0).contains(&eps), "ε must lie in [0, 1/6]");
    let candidate = |eps1: f64| WarmupParams {
        eps,
        eps1,
        eps2: 3.0 * eps1 + 2.0 * eps,
    };

    let mut lo = 0.0f64;
    let mut hi = 1.0 / 6.0;
    if !candidate(lo).feasible(model, TOL) {
        // Even ε1 = 0 is infeasible (cannot happen for sane models, but keep
        // the solver total): report no improvement.
        return candidate(0.0);
    }
    if candidate(hi).feasible(model, TOL) {
        return candidate(hi);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if candidate(mid).feasible(model, TOL) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    candidate(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IdealModel, SquareReductionModel};
    use crate::{OMEGA_CURRENT_BEST, OMEGA_STRASSEN, PAPER_EPS_CURRENT, PAPER_EPS_IDEAL};

    #[test]
    fn reproduces_theorem_eps_for_current_omega() {
        let p = solve_main(OMEGA_CURRENT_BEST);
        assert!(
            (p.eps - PAPER_EPS_CURRENT).abs() < 1e-6,
            "solved ε = {} vs paper ε = {}",
            p.eps,
            PAPER_EPS_CURRENT
        );
        assert!((p.delta - 3.0 * p.eps).abs() < 1e-12);
        // m^{0.66} → m^{0.65686} (the paper's headline digits).
        assert!((p.update_exponent() - 0.65686).abs() < 5e-5);
    }

    #[test]
    fn reproduces_theorem_eps_for_ideal_omega() {
        let p = solve_main(2.0);
        assert!((p.eps - PAPER_EPS_IDEAL).abs() < 1e-12);
        assert!((p.delta - 1.0 / 8.0).abs() < 1e-12);
        assert!((p.update_exponent() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn no_improvement_at_or_above_two_and_a_half() {
        assert_eq!(solve_main(2.5).eps, 0.0);
        assert_eq!(solve_main(OMEGA_STRASSEN).eps, 0.0);
        assert_eq!(solve_main(3.0).eps, 0.0);
        // Strictly below 2.5 there is always some improvement.
        assert!(solve_main(2.499).eps > 0.0);
        assert!(solve_main(2.4).eps > 0.0);
    }

    #[test]
    fn eps_is_monotone_decreasing_in_omega() {
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let omega = 2.0 + (i as f64) * 0.05;
            let eps = solve_main(omega).eps;
            assert!(eps <= prev + 1e-15, "ε must not increase with ω");
            prev = eps;
        }
    }

    #[test]
    fn warmup_ideal_model_reproduces_section_3_4() {
        let w = solve_warmup(&IdealModel, 1.0 / 24.0);
        assert!((w.eps1 - 1.0 / 24.0).abs() < 1e-9, "ε1 = {}", w.eps1);
        assert!((w.eps2 - 5.0 / 24.0).abs() < 1e-9, "ε2 = {}", w.eps2);
    }

    #[test]
    fn warmup_dominates_main_eps_in_both_regimes() {
        // §3.4: "Thus, we get ε1 ≥ ε" — required because the warm-up is used
        // as a subroutine of the main algorithm.
        let ideal = solve_warmup(&IdealModel, PAPER_EPS_IDEAL);
        assert!(ideal.eps1 + 1e-12 >= PAPER_EPS_IDEAL);

        let current = solve_warmup(
            &SquareReductionModel::new(OMEGA_CURRENT_BEST),
            PAPER_EPS_CURRENT,
        );
        assert!(
            current.eps1 + 1e-12 >= PAPER_EPS_CURRENT,
            "ε1 = {} must dominate ε = {}",
            current.eps1,
            PAPER_EPS_CURRENT
        );
        // The blocking-reduction model is weaker than the paper's rectangular
        // bounds, so the solved ε1 may be below the paper's 0.04201965 — but
        // it must still be strictly positive and at most the paper's value.
        assert!(current.eps1 > 0.0);
        assert!(current.eps1 <= crate::PAPER_EPS1_CURRENT + 1e-9);
    }

    #[test]
    fn warmup_solution_is_feasible_and_nearly_tight() {
        let model = SquareReductionModel::new(OMEGA_CURRENT_BEST);
        let w = solve_warmup(&model, PAPER_EPS_CURRENT);
        assert!(w.feasible(&model, 1e-9));
        // Slightly larger ε1 must violate some constraint (maximality).
        let bumped = WarmupParams {
            eps: w.eps,
            eps1: w.eps1 + 1e-6,
            eps2: 3.0 * (w.eps1 + 1e-6) + 2.0 * w.eps,
        };
        assert!(!bumped.feasible(&model, 1e-12));
    }

    #[test]
    fn update_time_exponent_monotone() {
        assert!(update_time_exponent(2.0) < update_time_exponent(OMEGA_CURRENT_BEST));
        assert!((update_time_exponent(3.0) - 2.0 / 3.0).abs() < 1e-15);
    }
}
