//! Incremental view maintenance (IVM) of join-size views.
//!
//! §1–§2 of the paper frame dynamic 4-cycle counting as a database problem:
//! given four binary relations `A(L1,L2)`, `B(L2,L3)`, `C(L3,L4)`, `D(L4,L1)`
//! under tuple insertions and deletions, maintain `|A ⋈ B ⋈ C ⋈ D|`, the
//! number of tuples in the cyclic join. Each tuple is an edge of a 4-layered
//! graph and each join result is a layered 4-cycle (Fig. 1), so the view is
//! exactly the count maintained by
//! [`fourcycle_core::LayeredCycleCounter`].
//!
//! This crate provides that database-facing API:
//!
//! * [`CyclicJoinCountView`] — the 4-relation cyclic join count
//!   (`COUNT(*) FROM A,B,C,D WHERE A.l2=B.l2 AND B.l3=C.l3 AND C.l4=D.l4 AND
//!   D.l1=A.l1`), maintained by any of the workspace engines.
//! * [`BinaryJoinCountView`] — the two-relation warm-up of Fig. 1
//!   (`|A ⋈ B|`, i.e. the number of 2-paths), maintained directly.

use fourcycle_core::{EngineKind, LayeredCycleCounter};
use fourcycle_graph::{LayeredUpdate, Rel, UpdateOp, VertexId};
use std::collections::HashMap;

/// The four relations of the cyclic join, named as in the paper.
pub type Relation = Rel;

/// An attribute value (vertex id in the layered-graph reading).
pub type Value = VertexId;

/// Incrementally maintained count of the cyclic join
/// `A(L1,L2) ⋈ B(L2,L3) ⋈ C(L3,L4) ⋈ D(L4,L1)`.
pub struct CyclicJoinCountView {
    counter: LayeredCycleCounter,
}

impl CyclicJoinCountView {
    /// Creates an empty view maintained by the given engine.
    pub fn new(kind: EngineKind) -> Self {
        Self { counter: LayeredCycleCounter::new(kind) }
    }

    /// Creates a view maintained by the paper's main algorithm.
    pub fn with_main_algorithm() -> Self {
        Self::new(EngineKind::Fmm)
    }

    /// Current number of tuples in the cyclic join.
    pub fn count(&self) -> i64 {
        self.counter.count()
    }

    /// Total number of tuples across the four relations.
    pub fn total_tuples(&self) -> usize {
        self.counter.total_edges()
    }

    /// Inserts the tuple `(left, right)` into `rel`. Returns the new join
    /// count, or `None` if the tuple already exists.
    pub fn insert(&mut self, rel: Relation, left: Value, right: Value) -> Option<i64> {
        self.counter
            .apply(LayeredUpdate { op: UpdateOp::Insert, rel, left, right })
    }

    /// Deletes the tuple `(left, right)` from `rel`. Returns the new join
    /// count, or `None` if the tuple does not exist.
    pub fn delete(&mut self, rel: Relation, left: Value, right: Value) -> Option<i64> {
        self.counter
            .apply(LayeredUpdate { op: UpdateOp::Delete, rel, left, right })
    }

    /// Applies a pre-built layered update (used when replaying workload
    /// traces).
    pub fn apply(&mut self, update: LayeredUpdate) -> Option<i64> {
        self.counter.apply(update)
    }

    /// Recomputes the join count from scratch (for validation / tests).
    pub fn recompute_from_scratch(&self) -> i64 {
        self.counter.graph().count_layered_4cycles_brute_force()
    }

    /// Total work performed by the underlying engines.
    pub fn work(&self) -> u64 {
        self.counter.work()
    }
}

/// Incrementally maintained count of a binary join `A(L1,L2) ⋈ B(L2,L3)`
/// (Fig. 1: the join size equals the number of 2-paths of the layered graph).
///
/// Maintained directly: `|A ⋈ B| = Σ_x deg_A(x) · deg_B(x)` over the shared
/// attribute values `x`, so an update to one relation changes the count by
/// the degree of its shared-attribute value in the other relation.
#[derive(Debug, Default)]
pub struct BinaryJoinCountView {
    /// Tuples of A grouped by the shared attribute (L2 value).
    a_by_l2: HashMap<Value, HashMap<Value, ()>>,
    /// Tuples of B grouped by the shared attribute (L2 value).
    b_by_l2: HashMap<Value, HashMap<Value, ()>>,
    count: i64,
}

impl BinaryJoinCountView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current join size.
    pub fn count(&self) -> i64 {
        self.count
    }

    fn group_len(map: &HashMap<Value, HashMap<Value, ()>>, key: Value) -> i64 {
        map.get(&key).map_or(0, |g| g.len() as i64)
    }

    /// Inserts the tuple `(l1, l2)` into relation `A`; returns the new count,
    /// or `None` if the tuple already exists.
    pub fn insert_a(&mut self, l1: Value, l2: Value) -> Option<i64> {
        let group = self.a_by_l2.entry(l2).or_default();
        if group.insert(l1, ()).is_some() {
            return None;
        }
        self.count += Self::group_len(&self.b_by_l2, l2);
        Some(self.count)
    }

    /// Inserts the tuple `(l2, l3)` into relation `B`.
    pub fn insert_b(&mut self, l2: Value, l3: Value) -> Option<i64> {
        let group = self.b_by_l2.entry(l2).or_default();
        if group.insert(l3, ()).is_some() {
            return None;
        }
        self.count += Self::group_len(&self.a_by_l2, l2);
        Some(self.count)
    }

    /// Deletes the tuple `(l1, l2)` from relation `A`.
    pub fn delete_a(&mut self, l1: Value, l2: Value) -> Option<i64> {
        let group = self.a_by_l2.get_mut(&l2)?;
        group.remove(&l1)?;
        self.count -= Self::group_len(&self.b_by_l2, l2);
        Some(self.count)
    }

    /// Deletes the tuple `(l2, l3)` from relation `B`.
    pub fn delete_b(&mut self, l2: Value, l3: Value) -> Option<i64> {
        let group = self.b_by_l2.get_mut(&l2)?;
        group.remove(&l3)?;
        self.count -= Self::group_len(&self.a_by_l2, l2);
        Some(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1 example: A = {(1,1),(1,2),(1,3),(2,2),(3,2)},
    /// B = {(1,1),(2,1),(3,1),(3,3)}; |A ⋈ B| = 6.
    #[test]
    fn figure_1_binary_join() {
        let mut view = BinaryJoinCountView::new();
        for (l1, l2) in [(1, 1), (1, 2), (1, 3), (2, 2), (3, 2)] {
            view.insert_a(l1, l2);
        }
        for (l2, l3) in [(1, 1), (2, 1), (3, 1), (3, 3)] {
            view.insert_b(l2, l3);
        }
        assert_eq!(view.count(), 6);
        // Deleting B(3,·) tuples removes the two joins through l2 = 3.
        view.delete_b(3, 3);
        view.delete_b(3, 1);
        assert_eq!(view.count(), 4);
        // Duplicate operations are rejected.
        assert!(view.insert_a(1, 1).is_none());
        assert!(view.delete_b(3, 3).is_none());
    }

    #[test]
    fn cyclic_join_count_matches_recomputation() {
        let mut view = CyclicJoinCountView::new(EngineKind::Simple);
        // Two attribute values per layer, fully connected: every combination
        // is a join result ⇒ 2^4 = 16 tuples in the cyclic join.
        for rel in [Rel::A, Rel::B, Rel::C, Rel::D] {
            for a in 0..2u32 {
                for b in 0..2u32 {
                    view.insert(rel, a, b).expect("fresh tuple");
                }
            }
        }
        assert_eq!(view.count(), 16);
        assert_eq!(view.count(), view.recompute_from_scratch());
        assert_eq!(view.total_tuples(), 16);

        // Removing one D tuple removes the 4 join results through it.
        view.delete(Rel::D, 0, 0).expect("tuple exists");
        assert_eq!(view.count(), 12);
        assert_eq!(view.count(), view.recompute_from_scratch());
        assert!(view.work() > 0);
    }

    #[test]
    fn cyclic_join_with_main_algorithm_engine() {
        let mut view = CyclicJoinCountView::with_main_algorithm();
        for i in 0..6u32 {
            view.insert(Rel::A, i % 3, i);
            view.insert(Rel::B, i, i % 2);
            view.insert(Rel::C, i % 2, i);
            view.insert(Rel::D, i, i % 3);
        }
        assert_eq!(view.count(), view.recompute_from_scratch());
        for i in 0..3u32 {
            view.delete(Rel::B, i, i % 2);
            assert_eq!(view.count(), view.recompute_from_scratch());
        }
    }
}
