//! Incremental view maintenance (IVM) of join-size views.
//!
//! §1–§2 of the paper frame dynamic 4-cycle counting as a database problem:
//! given four binary relations `A(L1,L2)`, `B(L2,L3)`, `C(L3,L4)`, `D(L4,L1)`
//! under tuple insertions and deletions, maintain `|A ⋈ B ⋈ C ⋈ D|`, the
//! number of tuples in the cyclic join. Each tuple is an edge of a 4-layered
//! graph and each join result is a layered 4-cycle (Fig. 1), so the view is
//! exactly the count maintained by
//! [`fourcycle_core::LayeredCycleCounter`].
//!
//! This crate provides that database-facing API:
//!
//! * [`CyclicJoinCountView`] — the 4-relation cyclic join count
//!   (`COUNT(*) FROM A,B,C,D WHERE A.l2=B.l2 AND B.l3=C.l3 AND C.l4=D.l4 AND
//!   D.l1=A.l1`), maintained by any of the workspace engines.
//! * [`BinaryJoinCountView`] — the two-relation warm-up of Fig. 1
//!   (`|A ⋈ B|`, i.e. the number of 2-paths), maintained directly.

// Unit tests keep their unwrap/cast freedoms; the workspace clippy
// lints target only compiled production code (ADR-010).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

use fourcycle_core::{
    BatchError, EngineConfig, EngineKind, LayeredCycleCounter, Snapshot, UpdateError,
};
use fourcycle_graph::{LayeredUpdate, Rel, UpdateOp, VertexId};

/// The four relations of the cyclic join, named as in the paper.
pub type Relation = Rel;

/// An attribute value (vertex id in the layered-graph reading).
pub type Value = VertexId;

/// Incrementally maintained count of the cyclic join
/// `A(L1,L2) ⋈ B(L2,L3) ⋈ C(L3,L4) ⋈ D(L4,L1)`.
pub struct CyclicJoinCountView {
    counter: LayeredCycleCounter,
}

impl CyclicJoinCountView {
    /// Creates an empty view maintained by the given engine.
    pub fn new(kind: EngineKind) -> Self {
        Self {
            counter: LayeredCycleCounter::new(kind),
        }
    }

    /// Creates an empty view with a shared engine configuration (capacity
    /// hints for the expected relation sizes, `FmmConfig`).
    pub fn with_config(kind: EngineKind, config: &EngineConfig) -> Self {
        Self {
            counter: LayeredCycleCounter::with_config(kind, config),
        }
    }

    /// Creates a view maintained by the paper's main algorithm.
    pub fn with_main_algorithm() -> Self {
        Self::new(EngineKind::Fmm)
    }

    /// Current number of tuples in the cyclic join.
    pub fn count(&self) -> i64 {
        self.counter.count()
    }

    /// Total number of tuples across the four relations.
    pub fn total_tuples(&self) -> usize {
        self.counter.total_edges()
    }

    /// Inserts the tuple `(left, right)` into `rel`. Returns the new join
    /// count, or [`UpdateError::DuplicateEdge`] if the tuple already exists
    /// (nothing changes on rejection).
    pub fn try_insert(
        &mut self,
        rel: Relation,
        left: Value,
        right: Value,
    ) -> Result<i64, UpdateError> {
        self.counter.try_apply(LayeredUpdate {
            op: UpdateOp::Insert,
            rel,
            left,
            right,
        })
    }

    /// Deletes the tuple `(left, right)` from `rel`. Returns the new join
    /// count, or [`UpdateError::MissingEdge`] if the tuple does not exist.
    pub fn try_delete(
        &mut self,
        rel: Relation,
        left: Value,
        right: Value,
    ) -> Result<i64, UpdateError> {
        self.counter.try_apply(LayeredUpdate {
            op: UpdateOp::Delete,
            rel,
            left,
            right,
        })
    }

    /// Applies a pre-built layered update; returns the new join count or the
    /// rejection reason with nothing changed.
    pub fn try_apply(&mut self, update: LayeredUpdate) -> Result<i64, UpdateError> {
        self.counter.try_apply(update)
    }

    /// Infallible wrapper over [`try_insert`](Self::try_insert): returns
    /// `None` if the tuple already exists.
    pub fn insert(&mut self, rel: Relation, left: Value, right: Value) -> Option<i64> {
        self.try_insert(rel, left, right).ok()
    }

    /// Infallible wrapper over [`try_delete`](Self::try_delete): returns
    /// `None` if the tuple does not exist.
    pub fn delete(&mut self, rel: Relation, left: Value, right: Value) -> Option<i64> {
        self.try_delete(rel, left, right).ok()
    }

    /// Applies a pre-built layered update (used when replaying workload
    /// traces).
    pub fn apply(&mut self, update: LayeredUpdate) -> Option<i64> {
        self.counter.apply(update)
    }

    /// Applies a whole batch of tuple updates through the engines' batch
    /// entry points, returning the new join count. The result is identical
    /// to applying the updates one at a time (ill-formed updates are
    /// skipped; use [`try_apply_batch`](Self::try_apply_batch) for atomic
    /// all-or-nothing semantics); the batch path coalesces same-tuple churn
    /// and amortizes engine bookkeeping, which is the natural shape for
    /// transactional ingestion (one batch per transaction / micro-batch).
    ///
    /// This is the canonical batch entry point; it takes the update slice
    /// directly, matching `LayeredCycleCounter::apply_batch`. Pass a
    /// [`UpdateBatch`](fourcycle_graph::UpdateBatch) via its `updates()` slice.
    pub fn apply_batch(&mut self, updates: &[LayeredUpdate]) -> i64 {
        self.counter.apply_batch(updates)
    }

    /// Atomic batch application: validates the whole batch first (against
    /// the current relations plus the batch's own earlier updates) and
    /// applies nothing unless every update is valid; the [`BatchError`]
    /// attributes a rejection to the first offending batch index.
    pub fn try_apply_batch(&mut self, updates: &[LayeredUpdate]) -> Result<i64, BatchError> {
        self.counter.try_apply_batch(updates)
    }

    /// Deprecated alias of [`apply_batch`](Self::apply_batch) from the time
    /// when `apply_batch` took an `UpdateBatch` and this was the
    /// slice-based variant.
    #[deprecated(since = "0.2.0", note = "use `apply_batch` (same signature)")]
    pub fn apply_batch_slice(&mut self, updates: &[LayeredUpdate]) -> i64 {
        self.apply_batch(updates)
    }

    /// Recomputes the join count from scratch (for validation / tests).
    pub fn recompute_from_scratch(&self) -> i64 {
        self.counter.graph().count_layered_4cycles_brute_force()
    }

    /// Total work performed by the underlying engines.
    pub fn work(&self) -> u64 {
        self.counter.work()
    }

    /// Aggregated slow-path counters (era rebuilds, phase rollovers, class
    /// transitions) of the underlying engines — the view-level mirror of
    /// [`fourcycle_core::LayeredCycleCounter::slow_path_stats`].
    pub fn slow_path_stats(&self) -> fourcycle_core::SlowPathStats {
        self.counter.slow_path_stats()
    }

    /// Number of tuple updates successfully applied so far.
    pub fn epoch(&self) -> u64 {
        self.counter.epoch()
    }

    /// Overwrites the applied-update count (crash-recovery hook; see
    /// [`LayeredCycleCounter::restore_epoch`]).
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.counter.restore_epoch(epoch);
    }

    /// The maintained layered graph holding the four relations (read-only
    /// mirror; one tuple per edge). Crash recovery dumps the current
    /// relation contents through this accessor.
    pub fn graph(&self) -> &fourcycle_graph::LayeredGraph {
        self.counter.graph()
    }

    /// A consistent point-in-time view of the join count, tuple total, cost
    /// counters and the epoch they were taken at.
    pub fn snapshot(&self) -> Snapshot {
        self.counter.snapshot()
    }
}

/// Which relation of the binary join a tuple update targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinarySide {
    /// Relation `A(L1, L2)`.
    A,
    /// Relation `B(L2, L3)`.
    B,
}

/// One tuple update of the binary join view. `shared` is the L2 (join
/// attribute) value; `other` the relation's private attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryJoinUpdate {
    /// Which relation changes.
    pub side: BinarySide,
    /// Insert or delete.
    pub op: UpdateOp,
    /// The shared (L2) attribute value.
    pub shared: Value,
    /// The private attribute value (L1 for `A`, L3 for `B`).
    pub other: Value,
}

/// Incrementally maintained count of a binary join `A(L1,L2) ⋈ B(L2,L3)`
/// (Fig. 1: the join size equals the number of 2-paths of the layered graph).
///
/// Maintained directly: `|A ⋈ B| = Σ_x deg_A(x) · deg_B(x)` over the shared
/// attribute values `x`, so an update to one relation changes the count by
/// the degree of its shared-attribute value in the other relation. Tuples
/// are stored in the same indexed adjacency rows as the engines (shared
/// attribute interned, flat sorted rows).
#[derive(Debug, Default)]
pub struct BinaryJoinCountView {
    /// Tuples of A keyed by the shared attribute (L2 value).
    a_by_l2: fourcycle_graph::SignedAdjacency,
    /// Tuples of B keyed by the shared attribute (L2 value).
    b_by_l2: fourcycle_graph::SignedAdjacency,
    count: i64,
    /// Elementary operations performed (one per applied tuple update — the
    /// view is maintained in `O(log)` per update with no inner loops).
    work: u64,
    /// Number of successfully applied tuple updates.
    epoch: u64,
}

impl BinaryJoinCountView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty view from a shared engine configuration — the same
    /// constructor every other entry point (counters, cyclic view) offers.
    /// Only the capacity hint applies: the binary join is maintained
    /// directly, without an engine, so the `FmmConfig` part is unused.
    pub fn with_config(config: &EngineConfig) -> Self {
        Self {
            a_by_l2: fourcycle_graph::SignedAdjacency::with_capacity(config.capacity_hint),
            b_by_l2: fourcycle_graph::SignedAdjacency::with_capacity(config.capacity_hint),
            ..Self::default()
        }
    }

    /// Current join size.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// Total tuples across both relations.
    pub fn total_tuples(&self) -> usize {
        self.a_by_l2.len() + self.b_by_l2.len()
    }

    /// Elementary operations performed so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Number of tuple updates successfully applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Amortized slow-path counters — always zero: the binary join view is
    /// maintained directly (no eras, phases or degree classes). Exposed for
    /// API parity with every other entry point, so generic harness code can
    /// treat all views uniformly.
    pub fn slow_path_stats(&self) -> fourcycle_core::SlowPathStats {
        fourcycle_core::SlowPathStats::default()
    }

    /// A consistent point-in-time view of the join size, tuple total, cost
    /// counters and the epoch they were taken at.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            count: self.count,
            total_edges: self.total_tuples(),
            work: self.work,
            slow_path: self.slow_path_stats(),
            epoch: self.epoch,
        }
    }

    /// Inserts the tuple `(l1, l2)` into relation `A`; returns the new
    /// count, or [`UpdateError::DuplicateEdge`] if the tuple already exists.
    pub fn try_insert_a(&mut self, l1: Value, l2: Value) -> Result<i64, UpdateError> {
        if self.a_by_l2.contains(l2, l1) {
            return Err(UpdateError::DuplicateEdge);
        }
        self.a_by_l2.add(l2, l1, 1);
        self.count += i64::try_from(self.b_by_l2.degree(l2)).unwrap_or(i64::MAX);
        self.settle();
        Ok(self.count)
    }

    /// Inserts the tuple `(l2, l3)` into relation `B`.
    pub fn try_insert_b(&mut self, l2: Value, l3: Value) -> Result<i64, UpdateError> {
        if self.b_by_l2.contains(l2, l3) {
            return Err(UpdateError::DuplicateEdge);
        }
        self.b_by_l2.add(l2, l3, 1);
        self.count += i64::try_from(self.a_by_l2.degree(l2)).unwrap_or(i64::MAX);
        self.settle();
        Ok(self.count)
    }

    /// Deletes the tuple `(l1, l2)` from relation `A`; returns the new
    /// count, or [`UpdateError::MissingEdge`] if the tuple is absent.
    pub fn try_delete_a(&mut self, l1: Value, l2: Value) -> Result<i64, UpdateError> {
        if !self.a_by_l2.contains(l2, l1) {
            return Err(UpdateError::MissingEdge);
        }
        self.a_by_l2.add(l2, l1, -1);
        self.count -= i64::try_from(self.b_by_l2.degree(l2)).unwrap_or(i64::MAX);
        self.settle();
        Ok(self.count)
    }

    /// Deletes the tuple `(l2, l3)` from relation `B`.
    pub fn try_delete_b(&mut self, l2: Value, l3: Value) -> Result<i64, UpdateError> {
        if !self.b_by_l2.contains(l2, l3) {
            return Err(UpdateError::MissingEdge);
        }
        self.b_by_l2.add(l2, l3, -1);
        self.count -= i64::try_from(self.a_by_l2.degree(l2)).unwrap_or(i64::MAX);
        self.settle();
        Ok(self.count)
    }

    /// Applies one tuple update; returns the new count or the rejection
    /// reason with nothing changed.
    pub fn try_apply(&mut self, update: BinaryJoinUpdate) -> Result<i64, UpdateError> {
        match (update.side, update.op) {
            (BinarySide::A, UpdateOp::Insert) => self.try_insert_a(update.other, update.shared),
            (BinarySide::A, UpdateOp::Delete) => self.try_delete_a(update.other, update.shared),
            (BinarySide::B, UpdateOp::Insert) => self.try_insert_b(update.shared, update.other),
            (BinarySide::B, UpdateOp::Delete) => self.try_delete_b(update.shared, update.other),
        }
    }

    /// Bumps the per-update cost/epoch counters after a successful update.
    fn settle(&mut self) {
        self.work += 1;
        self.epoch += 1;
    }

    /// Infallible wrapper over [`try_insert_a`](Self::try_insert_a).
    pub fn insert_a(&mut self, l1: Value, l2: Value) -> Option<i64> {
        self.try_insert_a(l1, l2).ok()
    }

    /// Infallible wrapper over [`try_insert_b`](Self::try_insert_b).
    pub fn insert_b(&mut self, l2: Value, l3: Value) -> Option<i64> {
        self.try_insert_b(l2, l3).ok()
    }

    /// Infallible wrapper over [`try_delete_a`](Self::try_delete_a).
    pub fn delete_a(&mut self, l1: Value, l2: Value) -> Option<i64> {
        self.try_delete_a(l1, l2).ok()
    }

    /// Infallible wrapper over [`try_delete_b`](Self::try_delete_b).
    pub fn delete_b(&mut self, l2: Value, l3: Value) -> Option<i64> {
        self.try_delete_b(l2, l3).ok()
    }

    /// Applies a batch of tuple updates, returning the final count.
    /// Ill-formed updates (duplicate inserts, deletes of absent tuples) are
    /// skipped; the result equals sequential application. Use
    /// [`try_apply_batch`](Self::try_apply_batch) for atomic all-or-nothing
    /// semantics.
    pub fn apply_batch(&mut self, updates: &[BinaryJoinUpdate]) -> i64 {
        for u in updates {
            let _ = self.try_apply(*u);
        }
        self.count
    }

    /// Atomic batch application: validates the whole batch first (against
    /// the current relations plus the batch's own earlier updates) and
    /// applies nothing unless every update is valid; the [`BatchError`]
    /// attributes a rejection to the first offending batch index.
    pub fn try_apply_batch(&mut self, updates: &[BinaryJoinUpdate]) -> Result<i64, BatchError> {
        fourcycle_core::error::validate_batch(
            updates,
            |u| Ok(((u.side, u.shared, u.other), u.op)),
            |u| match u.side {
                BinarySide::A => self.a_by_l2.contains(u.shared, u.other),
                BinarySide::B => self.b_by_l2.contains(u.shared, u.other),
            },
        )?;
        Ok(self.apply_batch(updates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fourcycle_graph::UpdateBatch;

    /// The Fig. 1 example: A = {(1,1),(1,2),(1,3),(2,2),(3,2)},
    /// B = {(1,1),(2,1),(3,1),(3,3)}; |A ⋈ B| = 6.
    #[test]
    fn figure_1_binary_join() {
        let mut view = BinaryJoinCountView::new();
        for (l1, l2) in [(1, 1), (1, 2), (1, 3), (2, 2), (3, 2)] {
            view.insert_a(l1, l2);
        }
        for (l2, l3) in [(1, 1), (2, 1), (3, 1), (3, 3)] {
            view.insert_b(l2, l3);
        }
        assert_eq!(view.count(), 6);
        // Deleting B(3,·) tuples removes the two joins through l2 = 3.
        view.delete_b(3, 3);
        view.delete_b(3, 1);
        assert_eq!(view.count(), 4);
        // Duplicate operations are rejected.
        assert!(view.insert_a(1, 1).is_none());
        assert!(view.delete_b(3, 3).is_none());
    }

    #[test]
    fn cyclic_join_count_matches_recomputation() {
        let mut view = CyclicJoinCountView::new(EngineKind::Simple);
        // Two attribute values per layer, fully connected: every combination
        // is a join result ⇒ 2^4 = 16 tuples in the cyclic join.
        for rel in [Rel::A, Rel::B, Rel::C, Rel::D] {
            for a in 0..2u32 {
                for b in 0..2u32 {
                    view.insert(rel, a, b).expect("fresh tuple");
                }
            }
        }
        assert_eq!(view.count(), 16);
        assert_eq!(view.count(), view.recompute_from_scratch());
        assert_eq!(view.total_tuples(), 16);

        // Removing one D tuple removes the 4 join results through it.
        view.delete(Rel::D, 0, 0).expect("tuple exists");
        assert_eq!(view.count(), 12);
        assert_eq!(view.count(), view.recompute_from_scratch());
        assert!(view.work() > 0);
    }

    #[test]
    fn batched_tuple_ingestion_matches_sequential() {
        let stream: Vec<LayeredUpdate> = (0..40u32)
            .flat_map(|i| {
                [
                    LayeredUpdate::insert(Rel::A, i % 4, i % 5),
                    LayeredUpdate::insert(Rel::B, i % 5, i % 3),
                    LayeredUpdate::insert(Rel::C, i % 3, i % 4),
                    LayeredUpdate::insert(Rel::D, i % 4, i % 4),
                ]
            })
            .collect();
        let mut sequential = CyclicJoinCountView::new(EngineKind::Simple);
        for u in &stream {
            sequential.apply(*u);
        }
        let mut batched = CyclicJoinCountView::with_config(EngineKind::Simple, &Default::default());
        let batch: UpdateBatch = stream.iter().copied().collect();
        let count = batched.apply_batch(batch.updates());
        assert_eq!(count, sequential.count());
        assert_eq!(batched.recompute_from_scratch(), count);
        assert_eq!(batched.epoch(), sequential.epoch());
        // The deprecated slice alias forwards to the canonical entry point.
        #[allow(deprecated)]
        {
            assert_eq!(batched.apply_batch_slice(&[]), count);
        }
    }

    #[test]
    fn binary_join_batch_matches_sequential() {
        use UpdateOp::{Delete, Insert};
        let updates = [
            BinaryJoinUpdate {
                side: BinarySide::A,
                op: Insert,
                shared: 1,
                other: 10,
            },
            BinaryJoinUpdate {
                side: BinarySide::B,
                op: Insert,
                shared: 1,
                other: 20,
            },
            BinaryJoinUpdate {
                side: BinarySide::B,
                op: Insert,
                shared: 1,
                other: 21,
            },
            BinaryJoinUpdate {
                side: BinarySide::A,
                op: Insert,
                shared: 1,
                other: 11,
            },
            BinaryJoinUpdate {
                side: BinarySide::B,
                op: Delete,
                shared: 1,
                other: 20,
            },
            // Ill-formed (duplicate insert / absent delete): skipped.
            BinaryJoinUpdate {
                side: BinarySide::A,
                op: Insert,
                shared: 1,
                other: 10,
            },
            BinaryJoinUpdate {
                side: BinarySide::B,
                op: Delete,
                shared: 9,
                other: 9,
            },
        ];
        let mut batched = BinaryJoinCountView::new();
        let count = batched.apply_batch(&updates);
        let mut sequential = BinaryJoinCountView::new();
        sequential.insert_a(10, 1);
        sequential.insert_b(1, 20);
        sequential.insert_b(1, 21);
        sequential.insert_a(11, 1);
        sequential.delete_b(1, 20);
        assert_eq!(count, sequential.count());
        assert_eq!(count, 2);
    }

    #[test]
    fn cyclic_join_with_main_algorithm_engine() {
        let mut view = CyclicJoinCountView::with_main_algorithm();
        for i in 0..6u32 {
            view.insert(Rel::A, i % 3, i);
            view.insert(Rel::B, i, i % 2);
            view.insert(Rel::C, i % 2, i);
            view.insert(Rel::D, i, i % 3);
        }
        assert_eq!(view.count(), view.recompute_from_scratch());
        for i in 0..3u32 {
            view.delete(Rel::B, i, i % 2);
            assert_eq!(view.count(), view.recompute_from_scratch());
        }
    }
}
