//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! the workload generators and tests link against this vendored shim
//! instead of the real `rand`. It implements exactly the API surface the
//! workspace uses — [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`] — with a
//! deterministic xoshiro256++ generator, so seeded streams remain
//! reproducible (though not bit-identical to upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`). The `T` parameter lets
/// type inference flow backwards from the use site (e.g. slice indexing)
/// into an unsuffixed range literal, as with upstream `rand`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Core entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Random-value convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, as in upstream `rand`.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Integer types `gen_range` can produce (maps to/from `u128` with
/// wrapping semantics so signed spans compute correctly).
pub trait UniformInt: Copy + PartialOrd {
    /// Widens (sign-extending for signed types) to `u128`.
    fn to_u128(self) -> u128;
    /// Truncates back from `u128`.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.to_u128().wrapping_sub(self.start.to_u128());
        let draw = (rng.next_u64() as u128) % span;
        T::from_u128(self.start.to_u128().wrapping_add(draw))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = end.to_u128().wrapping_sub(start.to_u128()) + 1;
        let draw = (rng.next_u64() as u128) % span;
        T::from_u128(start.to_u128().wrapping_add(draw))
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small deterministic PRNG (xoshiro256++), standing in for
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors (and used by upstream rand for seed_from_u64).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..32).all(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2i64..=2i64);
            assert!((-2..=2).contains(&y));
            let z = rng.gen_range(0usize..5);
            assert!(z < 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "~25% expected, got {hits}");
    }
}
