//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the property tests
//! in this workspace link against this vendored shim. It supports the
//! subset the workspace uses: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), range and tuple strategies,
//! [`collection::vec`], [`Strategy::prop_map`], and the `prop_assert*`
//! macros. Cases are generated from a fixed seed so failures are
//! reproducible; shrinking is not implemented — a failing case panics with
//! the standard assertion message instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "cannot sample an empty range");
        (self.next_u64() as u128) % bound
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u128).wrapping_sub(*self.start() as u128) + 1;
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: either an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that generates and checks `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // Distinct seed per property so sibling tests explore
                // different inputs; stable across runs for reproducibility.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                    });
                let mut rng = $crate::TestRng::seed_from_u64(seed);
                for case in 0..cfg.cases {
                    let _ = case;
                    $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2i64..=2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec((0u8..4, 0u32..5), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 5);
            }
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }
}
