//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the benches in
//! `crates/bench/benches/` link against this vendored shim. It implements
//! the subset of the Criterion API the workspace uses — benchmark groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `sample_size`, `measurement_time`, `BenchmarkId`, `BatchSize` — with a
//! simple mean-of-samples timer and plain-text reporting. It produces no
//! HTML reports and does no statistical outlier analysis, but the measured
//! numbers are honest wall-clock means and the bench binaries run under
//! `cargo bench` exactly as with upstream Criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (subset of upstream enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per setup.
    SmallInput,
    /// Large inputs: one routine call per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    /// Mean nanoseconds per iteration of the measured routine.
    mean_ns: f64,
}

impl Bencher {
    fn new(samples: usize, measurement_time: Duration) -> Self {
        Self {
            samples,
            measurement_time,
            mean_ns: f64::NAN,
        }
    }

    /// Measures `routine` repeatedly and records the mean time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration round.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let budget = self.measurement_time;
        let iters = if once.is_zero() {
            self.samples as u64 * 100
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Measures `routine` on fresh inputs built by `setup`, excluding the
    /// setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let budget = self.measurement_time;
        while iters < self.samples as u64 || (total < budget && iters < 1_000_000) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
            if total >= budget && iters >= self.samples as u64 {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        self.criterion
            .report(&format!("{}/{}", self.name, id), b.mean_ns);
    }

    /// Runs one benchmark with a shared input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id), b.mean_ns);
    }

    /// Finishes the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(10, Duration::from_secs(2));
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
    }

    fn report(&mut self, id: &str, mean_ns: f64) {
        println!("{id:<48} time: [{}]", human(mean_ns));
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![n; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn human_formats_scales() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(2_000_000_000.0).ends_with('s'));
    }
}
