//! The workspace-specific rule configuration: which crates are
//! production, where the blocking-call deny regions sit, and which
//! crate-docs invariants hold.
//!
//! This is deliberately data, not discovery: the production-crate list is
//! a *policy* (bench harnesses and vendored shims may panic; shard
//! workers may not), and policies belong in one reviewable table. Tests
//! build their own [`LintConfig`]s against fixture files, so every rule
//! is exercised without a real workspace around it.

/// A file/function region in which blocking calls are denied (rule L3).
#[derive(Debug, Clone)]
pub struct DenyRegion {
    /// Workspace-relative file path the region lives in.
    pub file: &'static str,
    /// Function names whose bodies are deny regions within that file.
    pub functions: &'static [&'static str],
    /// Why these regions may not block (surfaced in findings).
    pub why: &'static str,
}

/// A post-seed crate's documentation contract (rule L5): its `lib.rs`
/// must reference its ADR, and the README crate map must row it.
#[derive(Debug, Clone)]
pub struct CrateDoc {
    /// Directory name under `crates/`.
    pub name: &'static str,
    /// The ADR tag (`ADR-005`) its `lib.rs` must mention.
    pub adr: &'static str,
}

/// Everything the rules need to know about the workspace being linted.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates whose non-test `src/` code is held to L1 (no panics) and
    /// L2 (no numeric `as` casts). Directory names under `crates/`.
    pub production_crates: Vec<&'static str>,
    /// Regions denied blocking calls (L3).
    pub deny_regions: Vec<DenyRegion>,
    /// The wire-contract file checked by L4 (enum + grammar + matches).
    pub wire_file: &'static str,
    /// The exhaustive runtime-twin test that must mention every
    /// `WireError` variant (L4 cross-file leg).
    pub wire_test_file: &'static str,
    /// Crate-docs contracts (L5).
    pub crate_docs: Vec<CrateDoc>,
    /// README path for the L5 crate-map check.
    pub readme: &'static str,
}

impl LintConfig {
    /// The fourcycle workspace policy — the table ADR-010 documents.
    pub fn workspace() -> LintConfig {
        LintConfig {
            production_crates: vec![
                "core",
                "graph",
                "matrix",
                "ivm",
                "service",
                "runtime",
                "store",
                "server",
                "telemetry",
            ],
            deny_regions: vec![
                DenyRegion {
                    file: "crates/runtime/src/dispatch.rs",
                    functions: &[
                        "shard_worker",
                        "process_group",
                        "execute_slot",
                        "deliver_timed",
                        "run_segment",
                        "deliver",
                    ],
                    why: "the shard dispatch loop serves every session on its shard; \
                          one blocked iteration stalls them all (ADR-006)",
                },
                DenyRegion {
                    file: "crates/telemetry/src/ring.rs",
                    functions: &["emit"],
                    why: "event emission runs inside shard workers and must try-lock, \
                          never block (ADR-009)",
                },
                DenyRegion {
                    file: "crates/telemetry/src/lib.rs",
                    functions: &["note_request_done"],
                    why: "called once per delivered request on the dispatch path (ADR-009)",
                },
                DenyRegion {
                    file: "crates/telemetry/src/hist.rs",
                    functions: &["record", "record_each"],
                    why: "histogram recording is on the per-command hot path and is \
                          lock-free by contract (ADR-009)",
                },
            ],
            wire_file: "crates/server/src/wire.rs",
            wire_test_file: "crates/server/tests/wire_contract.rs",
            crate_docs: vec![
                CrateDoc {
                    name: "service",
                    adr: "ADR-003",
                },
                CrateDoc {
                    name: "runtime",
                    adr: "ADR-004",
                },
                CrateDoc {
                    name: "store",
                    adr: "ADR-005",
                },
                CrateDoc {
                    name: "server",
                    adr: "ADR-008",
                },
                CrateDoc {
                    name: "telemetry",
                    adr: "ADR-009",
                },
                CrateDoc {
                    name: "lint",
                    adr: "ADR-010",
                },
            ],
            readme: "README.md",
        }
    }
}
