//! The rule catalog: each rule is a small token-pattern matcher over a
//! classified [`SourceFile`]. See `docs/adr/ADR-010-workspace-lint.md`
//! for the catalog rationale and the waiver grammar.
//!
//! | id               | invariant                                                    |
//! |------------------|--------------------------------------------------------------|
//! | `no-panic`       | L1: no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/ |
//! |                  | `unimplemented!` in non-test production code                  |
//! | `no-as-cast`     | L2: no numeric `as` casts (use `try_from`/`saturating_*`)     |
//! | `no-blocking`    | L3: no `.lock()`, `sleep`, `sync_all/sync_data`, `read_line`  |
//! |                  | inside the configured dispatch/telemetry deny regions         |
//! | `wire-contract`  | L4: every `WireError` variant appears in the grammar table,   |
//! |                  | the `retryable()` match, the `command_applied()` match, and   |
//! |                  | the exhaustive wire-contract test                             |
//! | `crate-docs`     | L5: post-seed `lib.rs` references its ADR; README maps it     |
//! | `allow-justified`| L6: `#[allow(...)]` needs an adjacent `// lint:` comment      |
//! | `waiver`         | waiver hygiene: reasons are mandatory, waivers must fire      |

use crate::config::DenyRegion;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::fmt;
use std::ops::Range;

/// One rule violation, printed as `file:line rule message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id (`no-panic`, ...), the waiver key.
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

fn finding(file: &SourceFile, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.path.clone(),
        line,
        rule,
        message,
    }
}

/// Non-comment, non-test token at `i`?
fn live(file: &SourceFile, i: usize) -> bool {
    file.tokens[i].kind != TokenKind::Comment && !file.in_test[i]
}

/// Index of the previous non-comment token before `i`.
fn prev_code(file: &SourceFile, i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| file.tokens[j].kind != TokenKind::Comment)
}

/// Index of the next non-comment token after `i`.
fn next_code(file: &SourceFile, i: usize) -> Option<usize> {
    (i + 1..file.tokens.len()).find(|&j| file.tokens[j].kind != TokenKind::Comment)
}

/// L1: panicking constructs in non-test production code.
pub fn no_panic(file: &SourceFile) -> Vec<Finding> {
    const METHODS: [&str; 2] = ["unwrap", "expect"];
    const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !live(file, i) {
            continue;
        }
        let next_is = |b: u8| next_code(file, i).is_some_and(|j| file.tokens[j].is_punct(b));
        if METHODS.contains(&t.text.as_str())
            && next_is(b'(')
            && prev_code(file, i).is_some_and(|j| file.tokens[j].is_punct(b'.'))
        {
            out.push(finding(
                file,
                t.line,
                "no-panic",
                format!(
                    ".{}() can panic a shard worker; propagate a typed error \
                     (StoreError/WireError/ServiceError) or waive with a reason",
                    t.text
                ),
            ));
        } else if MACROS.contains(&t.text.as_str()) && next_is(b'!') {
            out.push(finding(
                file,
                t.line,
                "no-panic",
                format!(
                    "{}! in production code; return an error or waive with a reason",
                    t.text
                ),
            ));
        }
    }
    out
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// L2: numeric `as` casts in non-test production code.
pub fn no_as_cast(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("as") || !live(file, i) {
            continue;
        }
        let Some(j) = next_code(file, i) else {
            continue;
        };
        let target = &file.tokens[j];
        if target.kind == TokenKind::Ident && NUMERIC_TYPES.contains(&target.text.as_str()) {
            // `use x as u8` cannot occur (reserved names), so every
            // `as <numeric>` here is a cast.
            out.push(finding(
                file,
                t.line,
                "no-as-cast",
                format!(
                    "`as {}` can truncate or wrap silently; use `{}::try_from(..)` \
                     (or a saturating/widening conversion) so overflow is a decision, not an accident",
                    target.text, target.text
                ),
            ));
        }
    }
    out
}

/// The body token ranges of every non-test `fn <name>` in `file`.
fn fn_bodies(file: &SourceFile, name: &str) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") || file.in_test[i] {
            continue;
        }
        let Some(j) = next_code(file, i) else {
            continue;
        };
        if !(toks[j].kind == TokenKind::Ident && toks[j].text == name) {
            continue;
        }
        // Scan to the body's opening brace, then to its matching close.
        let Some(open) = (j..toks.len()).find(|&k| toks[k].is_punct(b'{')) else {
            continue;
        };
        let mut depth = 0usize;
        for (k, tok) in toks.iter().enumerate().skip(open) {
            match tok.kind {
                TokenKind::Punct(b'{') => depth += 1,
                TokenKind::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        out.push(open..k + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// L3: blocking calls inside a configured deny region.
pub fn no_blocking(file: &SourceFile, region: &DenyRegion) -> Vec<Finding> {
    const DOT_METHODS: [&str; 4] = ["lock", "sync_all", "sync_data", "read_line"];
    let mut out = Vec::new();
    for name in region.functions {
        for body in fn_bodies(file, name) {
            for i in body {
                let t = &file.tokens[i];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let next_is_call =
                    next_code(file, i).is_some_and(|j| file.tokens[j].is_punct(b'('));
                if !next_is_call {
                    continue;
                }
                let after_dot = prev_code(file, i).is_some_and(|j| file.tokens[j].is_punct(b'.'));
                let blocking =
                    (after_dot && DOT_METHODS.contains(&t.text.as_str())) || t.text == "sleep";
                if blocking {
                    out.push(finding(
                        file,
                        t.line,
                        "no-blocking",
                        format!("`{}` blocks inside fn {name}: {}", t.text, region.why),
                    ));
                }
            }
        }
    }
    out
}

/// L6: `#[allow(...)]` / `#![allow(...)]` without an adjacent `// lint:`
/// justification in non-test production code.
pub fn allow_justified(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_punct(b'#') || file.in_test[i] {
            continue;
        }
        let Some(mut j) = next_code(file, i) else {
            continue;
        };
        if file.tokens[j].is_punct(b'!') {
            let Some(k) = next_code(file, j) else {
                continue;
            };
            j = k;
        }
        if !file.tokens[j].is_punct(b'[') {
            continue;
        }
        let Some(k) = next_code(file, j) else {
            continue;
        };
        if file.tokens[k].is_ident("allow") && !file.lint_comment_near(t.line) {
            out.push(finding(
                file,
                t.line,
                "allow-justified",
                "#[allow(...)] without an adjacent `// lint: <reason>` comment — \
                 every suppression must say why"
                    .to_string(),
            ));
        }
    }
    out
}

/// Waiver hygiene: `// lint: allow(rule)` without a reason.
pub fn malformed_waivers(file: &SourceFile) -> Vec<Finding> {
    file.bad_waivers
        .iter()
        .map(|&line| {
            finding(
                file,
                line,
                "waiver",
                "waiver is missing its reason: `// lint: allow(<rule>) <reason>`".to_string(),
            )
        })
        .collect()
}

/// The parsed shape of `crates/server/src/wire.rs` that L4 cross-checks.
#[derive(Debug, Default)]
pub struct WireContract {
    /// `WireError` variant identifiers, in declaration order.
    pub variants: Vec<(String, u32)>,
    /// String literals returned by `fn code` (unquoted).
    pub codes: Vec<String>,
    /// Codes documented in the module's `err <code>` grammar table.
    pub grammar_codes: Vec<String>,
    /// Variant idents appearing in the `fn retryable` body.
    pub retryable_mentions: Vec<String>,
    /// Variant idents appearing in the `fn command_applied` body.
    pub applied_mentions: Vec<String>,
}

/// Extracts the wire contract surfaces from the wire source file.
pub fn parse_wire_contract(file: &SourceFile) -> WireContract {
    let mut contract = WireContract::default();
    let toks = &file.tokens;
    // Variants: idents at enum-brace depth 1 whose previous code token is
    // `{` or `,` (fields live deeper; tuple payloads sit behind `(`).
    for i in 0..toks.len() {
        if !toks[i].is_ident("enum") || file.in_test[i] {
            continue;
        }
        let Some(j) = next_code(file, i) else {
            continue;
        };
        if !toks[j].is_ident("WireError") {
            continue;
        }
        let Some(open) = (j..toks.len()).find(|&k| toks[k].is_punct(b'{')) else {
            continue;
        };
        let mut depth = 0i32;
        for k in open..toks.len() {
            match toks[k].kind {
                TokenKind::Punct(b'{') => depth += 1,
                TokenKind::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident if depth == 1 => {
                    let starts_variant = prev_code(file, k)
                        .is_some_and(|p| toks[p].is_punct(b'{') || toks[p].is_punct(b','))
                        // Attributes end with `]`; doc comments are skipped
                        // by prev_code, but an attribute between variants
                        // leaves `]` as the previous code token.
                        || prev_code(file, k).is_some_and(|p| toks[p].is_punct(b']'));
                    if starts_variant {
                        contract.variants.push((toks[k].text.clone(), toks[k].line));
                    }
                }
                _ => {}
            }
        }
        break;
    }
    let idents_in = |range: Range<usize>| -> Vec<String> {
        range
            .filter(|&k| toks[k].kind == TokenKind::Ident)
            .map(|k| toks[k].text.clone())
            .collect()
    };
    for body in fn_bodies(file, "code") {
        for k in body {
            if toks[k].kind == TokenKind::Str {
                contract
                    .codes
                    .push(toks[k].text.trim_matches('"').to_string());
            }
        }
    }
    for body in fn_bodies(file, "retryable") {
        contract.retryable_mentions = idents_in(body);
    }
    for body in fn_bodies(file, "command_applied") {
        contract.applied_mentions = idents_in(body);
    }
    // Grammar table: doc-comment lines of the form `//! err <code> ...`.
    for t in &file.tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        if let Some(rest) = body.strip_prefix("err ") {
            if let Some(code) = rest.split_whitespace().next() {
                contract.grammar_codes.push(code.to_string());
            }
        }
    }
    contract
}

/// L4: every `WireError` variant must appear in the `err <code>` grammar
/// table, the `retryable()` match, the `command_applied()` match, and
/// the exhaustive wire-contract test (`test_idents`).
pub fn wire_contract(
    file: &SourceFile,
    contract: &WireContract,
    test_idents: &[String],
    test_path: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if contract.variants.is_empty() {
        out.push(finding(
            file,
            1,
            "wire-contract",
            "could not find `enum WireError` — the wire contract is unchecked".to_string(),
        ));
        return out;
    }
    for (variant, line) in &contract.variants {
        if !contract.retryable_mentions.iter().any(|m| m == variant) {
            out.push(finding(
                file,
                *line,
                "wire-contract",
                format!(
                    "WireError::{variant} does not appear in the retryable() match — \
                     classify it explicitly (the match must stay exhaustive)"
                ),
            ));
        }
        if !contract.applied_mentions.iter().any(|m| m == variant) {
            out.push(finding(
                file,
                *line,
                "wire-contract",
                format!(
                    "WireError::{variant} does not appear in the command_applied() match — \
                     classify it explicitly (the match must stay exhaustive)"
                ),
            ));
        }
        if !test_idents.iter().any(|m| m == variant) {
            out.push(finding(
                file,
                *line,
                "wire-contract",
                format!("WireError::{variant} is not pinned by the exhaustive test in {test_path}"),
            ));
        }
    }
    for code in &contract.codes {
        if !contract.grammar_codes.iter().any(|g| g == code) {
            out.push(finding(
                file,
                1,
                "wire-contract",
                format!(
                    "wire code \"{code}\" is not documented in the module's \
                     `err <code>` grammar table"
                ),
            ));
        }
    }
    out
}

/// L5: a post-seed crate's `lib.rs` must reference its ADR, and the
/// README crate map must carry a row for the crate.
pub fn crate_docs(
    crate_name: &str,
    adr: &str,
    lib_path: &str,
    lib_text: Option<&str>,
    readme_text: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    match lib_text {
        None => out.push(Finding {
            file: lib_path.to_string(),
            line: 1,
            rule: "crate-docs",
            message: format!("crates/{crate_name}/src/lib.rs is missing"),
        }),
        Some(text) if !text.contains(adr) => out.push(Finding {
            file: lib_path.to_string(),
            line: 1,
            rule: "crate-docs",
            message: format!(
                "lib.rs never references {adr}; the crate docs must link the decision record"
            ),
        }),
        Some(_) => {}
    }
    if !readme_text.contains(&format!("crates/{crate_name}")) {
        out.push(Finding {
            file: "README.md".to_string(),
            line: 1,
            rule: "crate-docs",
            message: format!("README crate map has no row for crates/{crate_name}"),
        });
    }
    out
}
