//! The per-file source model the rules run against: tokens, test-region
//! classification, and waiver comments.
//!
//! Rules never see raw text. They see a [`SourceFile`]: the token stream
//! from [`crate::lexer`], a parallel `in_test` mask marking every token
//! inside `#[cfg(test)]` / `#[test]` items, and the parsed
//! `// lint: ...` waivers. Keeping classification here means each rule is
//! a small token-pattern matcher with no opinions about comments, test
//! modules, or suppression.
//!
//! # Waiver grammar
//!
//! ```text
//! // lint: allow(<rule>) <reason...>
//! ```
//!
//! A waiver suppresses findings of `<rule>` on its own line and on the
//! line directly below it (so it can trail the offending expression or
//! sit on its own line above). The reason is mandatory: a reasonless
//! waiver is itself a finding (rule `waiver`), because an unexplained
//! suppression is exactly the prose-invariant rot this tool exists to
//! stop. `// lint: <reason>` without `allow(...)` is not a waiver; it is
//! the justification comment rule L6 looks for next to `#[allow(...)]`.

use crate::lexer::{tokenize, Token, TokenKind};

/// One parsed `// lint: allow(<rule>) <reason>` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The rule id it suppresses (`no-panic`, `no-as-cast`, ...).
    pub rule: String,
    /// The mandatory free-text justification.
    pub reason: String,
}

/// A lexed, classified source file ready for rule matching.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used verbatim in findings.
    pub path: String,
    /// The token stream (comments included).
    pub tokens: Vec<Token>,
    /// `in_test[i]` — token `i` is inside a `#[cfg(test)]` or `#[test]`
    /// item and exempt from the production-code rules.
    pub in_test: Vec<bool>,
    /// Parsed waivers, in file order.
    pub waivers: Vec<Waiver>,
    /// Malformed waivers (`allow(...)` with no reason), as finding seeds.
    pub bad_waivers: Vec<u32>,
    /// Lines that carry a `// lint:` comment of any form (for rule L6).
    pub lint_comment_lines: Vec<u32>,
}

impl SourceFile {
    /// Lexes and classifies `source`.
    pub fn parse(path: impl Into<String>, source: &str) -> SourceFile {
        let tokens = tokenize(source);
        let in_test = mark_test_regions(&tokens);
        let mut waivers = Vec::new();
        let mut bad_waivers = Vec::new();
        let mut lint_comment_lines = Vec::new();
        for token in &tokens {
            if token.kind != TokenKind::Comment {
                continue;
            }
            let Some(body) = lint_comment_body(&token.text) else {
                continue;
            };
            lint_comment_lines.push(token.line);
            let Some(rest) = body.strip_prefix("allow(") else {
                continue;
            };
            match rest.split_once(')') {
                Some((rule, reason)) if !reason.trim().is_empty() => waivers.push(Waiver {
                    line: token.line,
                    rule: rule.trim().to_string(),
                    reason: reason.trim().to_string(),
                }),
                _ => bad_waivers.push(token.line),
            }
        }
        SourceFile {
            path: path.into(),
            tokens,
            in_test,
            waivers,
            bad_waivers,
            lint_comment_lines,
        }
    }

    /// True when a waiver for `rule` covers `line` (same line, or the
    /// waiver sits on the line directly above).
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
    }

    /// True when some `// lint:` comment sits on `line` or an adjacent
    /// line (the L6 justification test).
    pub fn lint_comment_near(&self, line: u32) -> bool {
        self.lint_comment_lines
            .iter()
            .any(|&l| l + 1 >= line && l <= line + 1)
    }
}

/// Extracts the text after `lint:` in a `// lint: ...` comment, if this
/// is one (leading `//`, `///`, `//!` all accepted).
fn lint_comment_body(comment: &str) -> Option<&str> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    body.strip_prefix("lint:").map(str::trim)
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item.
///
/// Attribute targets are tracked structurally, not textually: after such
/// an attribute, the *next item* — everything up to and including its
/// matching `}` (or terminating `;` for brace-less items) at the depth
/// where the attribute appeared — is test code. Nested `mod tests { ... }`
/// bodies therefore mask correctly, as do `#[test]` functions sitting in
/// otherwise-production modules. Attributes stack (`#[test] #[ignore]`),
/// so pending state survives consecutive attributes.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    // Brace depth below which each active test region ends.
    let mut regions: Vec<i32> = Vec::new();
    // A test attribute was seen; the next item at `pending_depth` is test.
    let mut pending: Option<i32> = None;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Comment {
            mask[i] = !regions.is_empty();
            i += 1;
            continue;
        }
        // Attribute: `#[ ... ]` (or `#![ ... ]`), possibly spanning lines.
        if t.is_punct(b'#') {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct(b'!') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct(b'[') {
                // Scan the bracketed attribute body.
                let mut k = j + 1;
                let mut bracket = 1;
                let mut is_test_attr = false;
                let mut prev_cfg_or_open = false;
                while k < tokens.len() && bracket > 0 {
                    let a = &tokens[k];
                    match a.kind {
                        TokenKind::Punct(b'[') => bracket += 1,
                        TokenKind::Punct(b']') => bracket -= 1,
                        TokenKind::Ident => {
                            // `#[test]` itself, or `test` inside `#[cfg(...)]`
                            // (covers cfg(test) and cfg(any(test, ...))).
                            if a.text == "test" && (k == j + 1 || prev_cfg_or_open) {
                                is_test_attr = true;
                            }
                            prev_cfg_or_open = false;
                        }
                        _ => {}
                    }
                    if a.is_ident("cfg") || a.is_punct(b'(') || a.is_punct(b',') {
                        prev_cfg_or_open = true;
                    }
                    k += 1;
                }
                if is_test_attr && pending.is_none() && regions.is_empty() {
                    pending = Some(depth);
                }
                // The attribute tokens themselves inherit the current mask.
                let in_region = !regions.is_empty() || pending.is_some();
                for slot in &mut mask[i..k] {
                    *slot = in_region;
                }
                i = k;
                continue;
            }
        }
        match t.kind {
            TokenKind::Punct(b'{') => {
                if let Some(p) = pending.take() {
                    regions.push(p);
                }
                depth += 1;
            }
            TokenKind::Punct(b'}') => {
                depth -= 1;
                mask[i] = !regions.is_empty();
                if regions.last() == Some(&depth) {
                    regions.pop();
                }
                i += 1;
                continue;
            }
            // A brace-less item (`#[cfg(test)] use x;`) ends here.
            TokenKind::Punct(b';') if pending == Some(depth) => {
                mask[i] = true;
                pending = None;
                i += 1;
                continue;
            }
            _ => {}
        }
        mask[i] = !regions.is_empty() || pending.is_some();
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked_idents(src: &str) -> Vec<(String, bool)> {
        let file = SourceFile::parse("t.rs", src);
        file.tokens
            .iter()
            .zip(&file.in_test)
            .filter(|(t, _)| t.kind == TokenKind::Ident)
            .map(|(t, m)| (t.text.clone(), *m))
            .collect()
    }

    #[test]
    fn cfg_test_mod_masks_its_body_only() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn prod2() {}";
        let idents = masked_idents(src);
        let get = |n: &str| idents.iter().find(|(t, _)| t == n).map(|(_, m)| *m);
        assert_eq!(get("prod"), Some(false));
        assert_eq!(get("unwrap"), Some(true));
        assert_eq!(get("prod2"), Some(false));
    }

    #[test]
    fn test_attr_fn_masks_through_stacked_attributes() {
        let src = "#[test]\n#[ignore]\nfn t() { panic!() }\nfn prod() {}";
        let idents = masked_idents(src);
        let get = |n: &str| idents.iter().find(|(t, _)| t == n).map(|(_, m)| *m);
        assert_eq!(get("panic"), Some(true));
        assert_eq!(get("prod"), Some(false));
    }

    #[test]
    fn cfg_any_test_and_braceless_items_mask() {
        let src = "#[cfg(any(test, feature_x))]\nuse helper::thing;\nfn prod() {}";
        let idents = masked_idents(src);
        let get = |n: &str| idents.iter().find(|(t, _)| t == n).map(|(_, m)| *m);
        assert_eq!(get("helper"), Some(true));
        assert_eq!(get("prod"), Some(false));
    }

    #[test]
    fn non_test_cfg_does_not_mask() {
        let src = "#[cfg(target_os = \"linux\")]\nfn prod() { x.unwrap(); }";
        let idents = masked_idents(src);
        assert!(idents.iter().all(|(_, m)| !m), "{idents:?}");
    }

    #[test]
    fn waivers_parse_and_cover_adjacent_line() {
        let src = "// lint: allow(no-panic) poisoning is unrecoverable here\nx.unwrap();\n// lint: allow(no-as-cast)\ny as u64;\n// lint: plain justification\n#[allow(dead_code)]\nfn f() {}";
        let file = SourceFile::parse("t.rs", src);
        assert_eq!(file.waivers.len(), 1);
        assert_eq!(file.waivers[0].rule, "no-panic");
        assert!(file.waived("no-panic", 2));
        assert!(!file.waived("no-panic", 4));
        // Reasonless allow() is malformed.
        assert_eq!(file.bad_waivers, vec![3]);
        // The plain justification satisfies L6 adjacency but waives nothing.
        assert!(file.lint_comment_near(6));
        assert!(!file.waived("no-panic", 6));
    }
}
