//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The workspace is offline (no `syn`, no `proc-macro2`, no clippy plugin
//! ecosystem), so `fourcycle-lint` tokenizes Rust source itself — the same
//! way `fourcycle_store::json` hand-rolled a JSON reader. The lexer's one
//! job is to classify every byte of a source file correctly enough that
//! the rules never mistake prose for code:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`) become [`Comment`](TokenKind::Comment) tokens, so an
//!   `unwrap()` in a doc example is never a finding — and waiver comments
//!   (`// lint: ...`) stay addressable by line;
//! * string literals in every flavor — `"..."` with escapes, raw strings
//!   `r"..."` / `r#"..."#` with any hash depth, byte strings `b"..."` /
//!   `br#"..."#` — become single [`Str`](TokenKind::Str) tokens, so
//!   `" as u64"` inside a test fixture string is not a cast;
//! * char literals are distinguished from lifetimes (`'a'` vs `'a`), the
//!   classic hand-lexer trap;
//! * everything else becomes identifiers, numbers, or single-character
//!   punctuation — the granularity the rules actually match on.
//!
//! Keywords are *not* separated from identifiers: the rules match on
//! token text (`as`, `fn`, `mod`, ...), which keeps the lexer free of a
//! keyword table that would have to chase the language.

/// What a token is, at the granularity the lint rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `fn`, ...).
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` never reads as a char.
    Lifetime,
    /// Any string literal flavor (plain, raw, byte, raw byte).
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (integers and floats, suffixes attached).
    Num,
    /// One line or block comment, full text preserved.
    Comment,
    /// A single punctuation byte (`.`, `(`, `{`, `#`, `!`, ...).
    Punct(u8),
}

/// One lexed token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for this punctuation byte.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokenKind::Punct(b)
    }
}

/// Tokenizes `source`. Unterminated strings/comments are tolerated (the
/// remainder of the file becomes one token): the linter must never panic
/// on the code it judges, and rustc will reject such a file anyway.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment();
                    self.push(TokenKind::Comment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::Comment, start, line);
                }
                b'"' => {
                    self.string_body();
                    self.push(TokenKind::Str, start, line);
                }
                b'r' | b'b' if self.raw_or_byte_literal(start, line) => {}
                b'\'' => self.char_or_lifetime(start, line),
                _ if b == b'_' || b.is_ascii_alphabetic() => {
                    self.ident_body();
                    self.push(TokenKind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.number_body();
                    self.push(TokenKind::Num, start, line);
                }
                _ => {
                    self.pos += 1;
                    self.push(TokenKind::Punct(b), start, line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.tokens.push(Token { kind, text, line });
    }

    /// `//` to end of line (newline not consumed, so line counting stays
    /// in one place).
    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    /// `/* ... */`, nesting-aware (Rust block comments nest).
    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if b == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
    }

    /// A `"`-delimited string with `\` escapes; cursor starts on the `"`.
    fn string_body(&mut self) {
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => {
                    if b == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
            }
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`.
    /// Returns false when the `r`/`b` is just an identifier head (the
    /// caller then lexes it as an ident).
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let mut at = self.pos + 1;
        if self.bytes.get(self.pos) == Some(&b'b') && self.bytes.get(at) == Some(&b'r') {
            at += 1; // br-prefix raw byte string
        }
        // Count raw-string hashes.
        let mut hashes = 0usize;
        while self.bytes.get(at + hashes) == Some(&b'#') {
            hashes += 1;
        }
        match self.bytes.get(at + hashes) {
            Some(b'"') if at > self.pos + 1 || hashes > 0 || self.is_raw_prefix() => {
                self.pos = at + hashes + 1;
                self.raw_string_tail(hashes);
                self.push(TokenKind::Str, start, line);
                true
            }
            Some(b'"') => {
                // b"..." — an escaped (non-raw) byte string.
                self.pos = at;
                self.string_body();
                self.push(TokenKind::Str, start, line);
                true
            }
            Some(b'\'') if hashes == 0 && at == self.pos + 1 && self.bytes[self.pos] == b'b' => {
                // b'x' byte char.
                self.pos = at;
                let consumed = self.char_literal_tail();
                debug_assert!(consumed, "b' always starts a byte char");
                self.push(TokenKind::Char, start, line);
                true
            }
            _ => {
                self.ident_body();
                self.push(TokenKind::Ident, start, line);
                true
            }
        }
    }

    /// True when the cursor sits on `r` directly followed by `"` or `#`
    /// (i.e. a raw-string head rather than an identifier named `r...`).
    fn is_raw_prefix(&self) -> bool {
        self.bytes.get(self.pos) == Some(&b'r')
            && matches!(self.bytes.get(self.pos + 1), Some(b'"' | b'#'))
    }

    /// Consumes up to and including `"` followed by `hashes` `#`s.
    fn raw_string_tail(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(1 + seen) == Some(b'#') {
                    seen += 1;
                }
                if seen == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            if b == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) and `'\n'`; the
    /// cursor sits on the opening quote.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        if self.char_literal_tail() {
            self.push(TokenKind::Char, start, line);
        } else {
            // Lifetime: consume the quote plus identifier characters.
            self.pos += 1;
            self.ident_body();
            self.push(TokenKind::Lifetime, start, line);
        }
    }

    /// Tries to consume a char literal from the opening `'`; returns false
    /// (cursor unmoved) when this is a lifetime instead.
    fn char_literal_tail(&mut self) -> bool {
        match self.peek(1) {
            Some(b'\\') => {
                // Escape: scan to the closing quote.
                let mut at = self.pos + 2;
                while let Some(&b) = self.bytes.get(at) {
                    if b == b'\'' {
                        self.pos = at + 1;
                        return true;
                    }
                    if b == b'\n' {
                        break;
                    }
                    at += 1;
                }
                // Unterminated escape: consume the quote, keep going.
                self.pos += 1;
                true
            }
            Some(_) => {
                // `'X'` is a char only if a quote closes it immediately
                // after one character (multi-byte UTF-8 handled by
                // scanning to the next quote within a few bytes).
                let mut at = self.pos + 2;
                while at <= self.pos + 5 {
                    match self.bytes.get(at) {
                        Some(b'\'') => {
                            // `''` is never a char; `'a'` .. `'é'` are.
                            if at > self.pos + 1 {
                                self.pos = at + 1;
                                return true;
                            }
                            return false;
                        }
                        Some(b) if b.is_ascii_alphanumeric() || *b == b'_' => {
                            if at > self.pos + 2 {
                                // Two+ word chars: lifetime (`'abc`).
                                return false;
                            }
                            at += 1;
                        }
                        _ => return at > self.pos + 2 && self.bytes.get(at) == Some(&b'\''),
                    }
                }
                false
            }
            None => {
                self.pos += 1;
                true
            }
        }
    }

    fn ident_body(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Numbers: digits, `_`, type suffixes, one decimal point when
    /// followed by a digit (so `0..10` lexes as `0`, `.`, `.`, `10`).
    fn number_body(&mut self) {
        let mut seen_dot = false;
        while let Some(b) = self.peek(0) {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'a'..=b'z' | b'A'..=b'Z' => self.pos += 1,
                b'.' if !seen_dot && matches!(self.peek(1), Some(b'0'..=b'9')) => {
                    seen_dot = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_classify() {
        let toks = kinds("let s = \"x.unwrap()\"; // y.unwrap()\n'a: loop {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Comment && t.contains("unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Char));
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let toks = kinds("/* a /* b */ still comment */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1].1, "ident");
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r###"let s = r#"x " as u64 "#; after"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("as u64")));
        assert!(toks.iter().any(|(_, t)| t == "after"));
        // No `as` identifier escapes the raw string.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "as"));
    }

    #[test]
    fn byte_and_char_literals() {
        let toks = kinds(r####"(b'{', '\n', 'x', b"s", br##"raw"##)"####);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 3, "{toks:?}");
        let strs = toks.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        assert_eq!(strs, 2, "{toks:?}");
    }

    #[test]
    fn line_numbers_advance_through_multiline_tokens() {
        let toks = tokenize("a\n/* x\ny */\nb\n\"s\ntr\"\nc");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }
}
