//! The `fourcycle-lint` binary: runs the workspace invariant pass and
//! exits nonzero on any unwaived finding (see ADR-010).
//!
//! ```text
//! cargo run -p fourcycle-lint                # lint the whole workspace
//! cargo run -p fourcycle-lint -- --root DIR  # lint another checkout
//! ```

use fourcycle_lint::config::LintConfig;
use fourcycle_lint::run_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match parse_root() {
        Ok(root) => root,
        Err(message) => {
            eprintln!("fourcycle-lint: {message}");
            return ExitCode::from(2);
        }
    };
    let config = LintConfig::workspace();
    match run_workspace(&root, &config) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            eprintln!(
                "fourcycle-lint: {} file(s) scanned, {} finding(s), {} waiver(s) honored",
                report.files_scanned,
                report.findings.len(),
                report.waivers_used
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fourcycle-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--root DIR` wins; otherwise the workspace root is derived from this
/// crate's manifest directory (`crates/lint` → two levels up), so the
/// binary works from any cwd under `cargo run`.
fn parse_root() -> Result<PathBuf, String> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--root") => {
            return args
                .next()
                .map(PathBuf::from)
                .ok_or_else(|| "--root needs a directory argument".to_string());
        }
        Some("--help" | "-h") => {
            return Err("usage: fourcycle-lint [--root WORKSPACE_DIR]".to_string());
        }
        Some(other) => return Err(format!("unknown argument {other:?}")),
        None => {}
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|crates| crates.parent())
        .map(PathBuf::from)
        .ok_or_else(|| "cannot derive the workspace root; pass --root".to_string())
}
