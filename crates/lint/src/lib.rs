//! `fourcycle-lint` — the workspace invariant checker (ADR-010).
//!
//! Nine PRs of growth accumulated invariants that existed only as prose:
//! no panics or silent `as` truncation on accounting paths (ADR-005/6),
//! no blocking calls inside shard dispatch or telemetry emit (ADR-006/9),
//! a stable `err <code>` wire grammar with an exhaustive retry
//! classification (ADR-008), and a documentation contract for every
//! post-seed crate. This crate turns those into *checked* rules: a
//! std-only static-analysis pass with a hand-rolled, string/char/comment-
//! aware Rust lexer ([`lexer`]) — the workspace is offline, so no `syn`,
//! no clippy plugins, the same reasoning that hand-rolled
//! `fourcycle_store::json`.
//!
//! Run it with `cargo run -p fourcycle-lint` (CI runs `--release`). Every
//! finding prints as `file:line rule message`; the process exits nonzero
//! if any finding is unwaived. A single line can be waived with
//!
//! ```text
//! // lint: allow(<rule>) <reason>
//! ```
//!
//! on the same or the preceding line — the reason is mandatory, and a
//! waiver that stops matching anything is itself reported, so dead
//! suppressions cannot accumulate. The rule catalog lives in [`rules`],
//! the workspace policy (which crates are production, where the blocking
//! deny regions sit) in [`config`].

pub mod config;
pub mod lexer;
pub mod rules;
pub mod source;

use config::LintConfig;
use rules::Finding;
use source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of one workspace pass.
#[derive(Debug)]
pub struct Report {
    /// Unwaived findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Files lexed and rule-checked.
    pub files_scanned: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_used: usize,
}

/// Runs every rule on one in-memory file (the fixture-test entry point):
/// L1/L2/L6 plus waiver hygiene, and L3 for any matching deny region.
/// Returns the *unwaived* findings.
pub fn lint_source(file: &SourceFile, config: &LintConfig) -> Vec<Finding> {
    let mut raw = collect_file_findings(file, config);
    let mut used = vec![false; file.waivers.len()];
    raw.retain(|f| !suppress(file, f, &mut used));
    raw.extend(unused_waiver_findings(file, &used));
    raw.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    raw
}

/// The per-file rules (everything except the cross-file L4/L5).
fn collect_file_findings(file: &SourceFile, config: &LintConfig) -> Vec<Finding> {
    let mut raw = Vec::new();
    raw.extend(rules::no_panic(file));
    raw.extend(rules::no_as_cast(file));
    raw.extend(rules::allow_justified(file));
    raw.extend(rules::malformed_waivers(file));
    for region in &config.deny_regions {
        if file.path.ends_with(region.file) {
            raw.extend(rules::no_blocking(file, region));
        }
    }
    raw
}

/// Marks the waiver (if any) covering `f` as used; true when suppressed.
fn suppress(file: &SourceFile, f: &Finding, used: &mut [bool]) -> bool {
    let mut hit = false;
    for (i, w) in file.waivers.iter().enumerate() {
        if w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line) {
            used[i] = true;
            hit = true;
        }
    }
    hit
}

/// Findings for waivers that suppressed nothing — a stale waiver is a
/// prose invariant all over again.
fn unused_waiver_findings(file: &SourceFile, used: &[bool]) -> Vec<Finding> {
    file.waivers
        .iter()
        .zip(used)
        .filter(|(_, &u)| !u)
        .map(|(w, _)| Finding {
            file: file.path.clone(),
            line: w.line,
            rule: "waiver",
            message: format!(
                "waiver for `{}` matched no finding — remove it or fix the line it points at",
                w.rule
            ),
        })
        .collect()
}

/// Runs the full workspace pass rooted at `root`.
pub fn run_workspace(root: &Path, config: &LintConfig) -> io::Result<Report> {
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    let mut waivers_used = 0usize;

    for krate in &config.production_crates {
        let src_dir = root.join("crates").join(krate).join("src");
        for path in rust_files(&src_dir)? {
            let text = fs::read_to_string(&path)?;
            let rel = relative(root, &path);
            let file = SourceFile::parse(rel, &text);
            files_scanned += 1;

            let mut raw = collect_file_findings(&file, config);
            let mut used = vec![false; file.waivers.len()];
            raw.retain(|f| !suppress(&file, f, &mut used));
            waivers_used += used.iter().filter(|&&u| u).count();
            raw.extend(unused_waiver_findings(&file, &used));
            findings.extend(raw);
        }
    }

    // L4: the wire contract, cross-checked against the exhaustive test.
    let wire_path = root.join(config.wire_file);
    match fs::read_to_string(&wire_path) {
        Ok(text) => {
            let file = SourceFile::parse(config.wire_file, &text);
            files_scanned += 1;
            let contract = rules::parse_wire_contract(&file);
            let test_idents = match fs::read_to_string(root.join(config.wire_test_file)) {
                Ok(test_text) => SourceFile::parse(config.wire_test_file, &test_text)
                    .tokens
                    .iter()
                    .filter(|t| t.kind == lexer::TokenKind::Ident)
                    .map(|t| t.text.clone())
                    .collect(),
                Err(_) => Vec::new(),
            };
            findings.extend(rules::wire_contract(
                &file,
                &contract,
                &test_idents,
                config.wire_test_file,
            ));
        }
        Err(e) => {
            findings.push(Finding {
                file: config.wire_file.to_string(),
                line: 1,
                rule: "wire-contract",
                message: format!("cannot read the wire contract file: {e}"),
            });
        }
    }

    // L5: crate docs.
    let readme = fs::read_to_string(root.join(config.readme)).unwrap_or_default();
    for doc in &config.crate_docs {
        let lib_rel = format!("crates/{}/src/lib.rs", doc.name);
        let lib_text = fs::read_to_string(root.join(&lib_rel)).ok();
        findings.extend(rules::crate_docs(
            doc.name,
            doc.adr,
            &lib_rel,
            lib_text.as_deref(),
            &readme,
        ));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        findings,
        files_scanned,
        waivers_used,
    })
}

/// All `.rs` files under `dir`, recursively, in sorted order (stable
/// output across filesystems).
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match fs::read_dir(&d) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
