//! Fixture: one deliberate violation per per-file rule, plus the tricky
//! lexer shapes (raw strings, nested block comments, char literals) that
//! must NOT trip rules. `tests/lint_rules.rs` pins the exact findings.

/* outer /* nested */ block comment: the "unwrap()" and `3 as u64` in
   here must be invisible to every rule */

fn strings_do_not_count() -> &'static str {
    // The rule patterns below appear only inside string/char/raw-string
    // literals; a text-level grep would flag every one of them.
    let _c = 'a';
    let _lifetime: &'static str = "x";
    let _raw = r##"x.unwrap() and panic!("no") and 1usize as u64 "quoted""##;
    let _byte = b"as usize";
    "call .unwrap() or cast 3 as u32"
}

fn real_violations(v: Option<u32>, n: usize) -> u64 {
    let x = v.unwrap(); // no-panic
    if n > 9000 {
        panic!("too big"); // no-panic
    }
    u64::from(x) + n as u64 // no-as-cast
}

#[allow(dead_code)] // allow-justified: no adjacent lint comment
fn unjustified() {}

// lint: dead-code fixture shows a justified allow is accepted
#[allow(dead_code)]
fn justified() {}

fn waived(n: usize) -> u64 {
    // lint: allow(no-as-cast) fixture waiver with a reason
    n as u64
}

// lint: allow(no-panic) this waiver is stale and must be reported
fn stale_waiver() -> u64 {
    7
}

// lint: allow(no-as-cast)
fn reasonless_waiver() {}

#[cfg(test)]
mod tests {
    // Test code may unwrap, cast, and panic freely.
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        let x = v.unwrap();
        assert_eq!(x as u64, super::waived(1));
        if x == 0 {
            unreachable!("fixture");
        }
    }
}
