//! Fixture for the no-blocking rule: `hot_loop` and `emit` are inside
//! the configured deny region; `cold_setup` is not and may block freely.

use std::sync::Mutex;

fn hot_loop(m: &Mutex<u64>) -> u64 {
    std::thread::sleep(std::time::Duration::from_millis(1)); // no-blocking
    let v = *m.lock().unwrap_or_else(|e| e.into_inner()); // no-blocking (.lock())
    v + 1
}

fn emit(m: &Mutex<u64>) -> u64 {
    // lint: allow(no-blocking) fixture waiver: bounded critical section
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

fn cold_setup(m: &Mutex<u64>) -> u64 {
    // Outside the deny region: locking here is fine.
    *m.lock().unwrap_or_else(|e| e.into_inner())
}
