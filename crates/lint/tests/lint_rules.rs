//! Rule behavior, pinned against the fixtures in `tests/fixtures/`.
//!
//! The fixtures exercise exactly the shapes that would fool a text-level
//! grep — rule patterns inside raw strings, byte strings, and nested
//! block comments; `#[cfg(test)]` regions; same-line and line-above
//! waivers; stale and reasonless waivers — and the tests pin the exact
//! `(line, rule)` set the pass must report for them.

use fourcycle_lint::config::{DenyRegion, LintConfig};
use fourcycle_lint::source::SourceFile;
use fourcycle_lint::{lint_source, rules};

const VIOLATIONS: &str = include_str!("fixtures/violations.rs");
const BLOCKING: &str = include_str!("fixtures/blocking.rs");

fn fixture_config(deny_regions: Vec<DenyRegion>) -> LintConfig {
    LintConfig {
        production_crates: Vec::new(),
        deny_regions,
        wire_file: "unused.rs",
        wire_test_file: "unused_test.rs",
        crate_docs: Vec::new(),
        readme: "README.md",
    }
}

fn line_rule_pairs(file: &SourceFile, config: &LintConfig) -> Vec<(u32, &'static str)> {
    lint_source(file, config)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn violations_fixture_reports_exactly_the_planted_findings() {
    let file = SourceFile::parse("fixtures/violations.rs", VIOLATIONS);
    let got = line_rule_pairs(&file, &fixture_config(Vec::new()));
    assert_eq!(
        got,
        vec![
            (19, "no-panic"),        // v.unwrap()
            (21, "no-panic"),        // panic!("too big")
            (23, "no-as-cast"),      // n as u64
            (26, "allow-justified"), // #[allow(dead_code)] without a reason
            (38, "waiver"),          // stale waiver suppressing nothing
            (43, "waiver"),          // reasonless waiver
        ],
        "fixture drifted; re-pin lines or fix the rules"
    );
}

#[test]
fn strings_comments_and_test_code_are_invisible_to_rules() {
    let file = SourceFile::parse("fixtures/violations.rs", VIOLATIONS);
    let got = line_rule_pairs(&file, &fixture_config(Vec::new()));
    // The raw-string/byte-string/nested-comment region (lines 5-16) and
    // the #[cfg(test)] module (line 46 on) must produce nothing, even
    // though they spell out unwrap(), panic!, and `as` casts.
    assert!(
        got.iter().all(|&(line, _)| (17..=45).contains(&line)),
        "a rule fired outside the deliberate-violation region: {got:?}"
    );
}

#[test]
fn waiver_on_the_line_above_suppresses_and_counts_as_used() {
    let file = SourceFile::parse("fixtures/violations.rs", VIOLATIONS);
    let got = line_rule_pairs(&file, &fixture_config(Vec::new()));
    // Line 35 (`n as u64`) is covered by the waiver on line 34 and must
    // be absent; that waiver must not be reported stale.
    assert!(!got.contains(&(35, "no-as-cast")));
    assert!(!got.contains(&(34, "waiver")));
}

#[test]
fn blocking_rule_is_scoped_to_the_configured_functions() {
    let file = SourceFile::parse("fixtures/blocking.rs", BLOCKING);
    let config = fixture_config(vec![DenyRegion {
        file: "fixtures/blocking.rs",
        functions: &["hot_loop", "emit"],
        why: "fixture hot path",
    }]);
    let got = line_rule_pairs(&file, &config);
    assert_eq!(
        got,
        vec![
            (7, "no-blocking"), // thread::sleep in hot_loop
            (8, "no-blocking"), // .lock() in hot_loop
        ],
        "emit's waived .lock() and cold_setup's .lock() must not appear"
    );
    // Same file, deny list absent: the blocking calls stop being findings,
    // which in turn makes emit's waiver stale — and stale is reported.
    let unscoped = line_rule_pairs(&file, &fixture_config(Vec::new()));
    assert_eq!(unscoped, vec![(13, "waiver")]);
}

#[test]
fn wire_contract_flags_missing_classifications_and_grammar_rows() {
    let wire_src = r#"//! err alpha
//! err beta <detail>

pub enum WireError {
    Alpha,
    Beta(String),
    Gamma,
}

impl WireError {
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Alpha => "alpha",
            WireError::Beta(_) => "beta",
            WireError::Gamma => "gamma",
        }
    }
    pub fn retryable(&self) -> bool {
        match self {
            WireError::Alpha => true,
            WireError::Beta(_) => false,
            WireError::Gamma => false,
        }
    }
    pub fn command_applied(&self) -> bool {
        match self {
            WireError::Alpha => false,
            WireError::Beta(_) => false,
        }
    }
}
"#;
    let file = SourceFile::parse("wire_fixture.rs", wire_src);
    let contract = rules::parse_wire_contract(&file);
    assert_eq!(
        contract
            .variants
            .iter()
            .map(|(v, _)| v.as_str())
            .collect::<Vec<_>>(),
        ["Alpha", "Beta", "Gamma"]
    );
    // The test file pins Alpha and Beta but forgot Gamma.
    let test_idents = vec!["Alpha".to_string(), "Beta".to_string()];
    let findings = rules::wire_contract(&file, &contract, &test_idents, "twin.rs");
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(findings.len(), 3, "{messages:?}");
    assert!(messages
        .iter()
        .any(|m| m.contains("Gamma") && m.contains("command_applied()")));
    assert!(messages
        .iter()
        .any(|m| m.contains("Gamma") && m.contains("not pinned") && m.contains("twin.rs")));
    assert!(messages
        .iter()
        .any(|m| m.contains("\"gamma\"") && m.contains("grammar")));
    // Everything classified, pinned, and documented: no findings.
    let complete = wire_src
        .replace("//! err beta <detail>", "//! err beta <detail>\n//! err gamma")
        .replace(
            "            WireError::Beta(_) => false,\n        }\n    }\n}",
            "            WireError::Beta(_) => false,\n            WireError::Gamma => false,\n        }\n    }\n}",
        );
    let file = SourceFile::parse("wire_fixture.rs", &complete);
    let contract = rules::parse_wire_contract(&file);
    let test_idents = vec!["Alpha".to_string(), "Beta".to_string(), "Gamma".to_string()];
    assert_eq!(
        rules::wire_contract(&file, &contract, &test_idents, "twin.rs"),
        Vec::new()
    );
}

#[test]
fn crate_docs_requires_adr_reference_and_readme_row() {
    let readme = "| `crates/store` | journal |\n";
    // Happy path: lib.rs mentions the ADR, README has the row.
    assert!(rules::crate_docs(
        "store",
        "ADR-005",
        "crates/store/src/lib.rs",
        Some("//! The journal store (ADR-005).\n"),
        readme
    )
    .is_empty());
    // Missing ADR reference.
    let findings = rules::crate_docs(
        "store",
        "ADR-005",
        "crates/store/src/lib.rs",
        Some("//! The journal store.\n"),
        readme,
    );
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("ADR-005"));
    // Missing README row.
    let findings = rules::crate_docs(
        "telemetry",
        "ADR-009",
        "crates/telemetry/src/lib.rs",
        Some("//! Telemetry (ADR-009).\n"),
        readme,
    );
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("README"));
}

#[test]
fn finding_display_is_file_line_rule_message() {
    let file = SourceFile::parse("fixtures/violations.rs", VIOLATIONS);
    let findings = lint_source(&file, &fixture_config(Vec::new()));
    let first = findings.first().expect("fixture has findings");
    let rendered = format!("{first}");
    assert!(
        rendered.starts_with("fixtures/violations.rs:19 no-panic "),
        "display format drifted: {rendered}"
    );
}
